"""Always-on flight recorder: bounded ring of recent events + postmortems.

Every observability surface in :mod:`repro.obs` is opt-in, so a run that
crashes with tracing off leaves zero evidence.  The flight recorder is
the opposite contract: it is **on by default**, costs one small-dict
append into a bounded :class:`collections.deque` per recorded event (a
few per global step), and only ever touches the filesystem when
something goes wrong — an unhandled exception, an injected fault's
cold-restart fallback, or an explicit :func:`dump`.

What the ring holds (most recent first out the other end):

- engine step / scale / checkpoint events,
- worker local-step completions,
- fault-injector detections and resilience replan/restore actions,
- intra-/inter-job scheduler decisions,
- the last K :class:`~repro.obs.audit.AuditRecord`\\ s (a separate,
  smaller tail — the forensic anchor :mod:`repro.obs.forensics` walks).

On :func:`dump` everything is written as ONE self-contained JSON bundle,
``postmortem-<step>.json``: ring contents, the last audit records, the
obs metrics snapshot and open spans (when obs is enabled), the active
context (determinism label, kernel dialects, workload, backend), the
environment/machine fingerprint, and the git SHA.  ``repro obs
postmortem <bundle>`` renders it; ``repro obs why`` feeds its events to
the divergence forensics.

Pool children flush their ring as per-pid ``shard-<pid>.flight.jsonl``
files (the same shard idiom as :func:`repro.obs.flush_shard`); the
parent attaches the shard directory so a dump — even one triggered by an
exception propagating out of a child task — merges every process's
recent history into the bundle.
"""

from __future__ import annotations

import glob as _glob
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: Bundle schema version.
BUNDLE_FORMAT_VERSION = 1

#: File suffix of per-pid flight shards written by pool children.
SHARD_FLIGHT_SUFFIX = ".flight.jsonl"

#: Default ring capacity (events) and audit-tail length (records).
DEFAULT_RING_SIZE = 512
DEFAULT_AUDIT_KEEP = 32

#: Environment variable overriding the postmortem output directory.
POSTMORTEM_DIR_ENV = "REPRO_POSTMORTEM_DIR"


def shard_flight_path(shard_dir: str, pid: int) -> str:
    return os.path.join(shard_dir, f"shard-{pid}{SHARD_FLIGHT_SUFFIX}")


class FlightRecorder:
    """Bounded, thread-safe event ring with postmortem-bundle dumping.

    One module-level instance (see :func:`recorder`) serves the whole
    process; call sites use the module-level :func:`record` /
    :func:`note_audit` helpers, which stay O(1) deque appends.
    """

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        audit_keep: int = DEFAULT_AUDIT_KEEP,
        directory: Optional[str] = None,
        enabled: bool = True,
    ) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if audit_keep <= 0:
            raise ValueError("audit_keep must be positive")
        self.ring_size = ring_size
        self.audit_keep = audit_keep
        self.enabled = enabled
        self._directory = directory
        self._events: deque = deque(maxlen=ring_size)
        self._audits: deque = deque(maxlen=audit_keep)
        self._context: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._shard_dirs: List[str] = []
        #: watermark of events already written to this process's shard
        self._shard_flushed = 0
        #: total events ever recorded (>= len(ring) once it wraps)
        self.seq = 0
        #: path of the most recent bundle written by :meth:`dump`
        self.last_dump: Optional[str] = None
        #: pid this recorder was created in (fork-inheritance detector)
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    # recording (the hot path — keep it to one lock + one append)
    # ------------------------------------------------------------------
    def record(self, kind: str, /, **fields: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.seq += 1
            # reserved keys win over same-named payload fields
            self._events.append({**fields, "seq": self.seq, "t": time.time(), "kind": kind})

    def note_audit(self, record: Any) -> None:
        """Keep the last K audit records (accepts AuditRecord or dict)."""
        if not self.enabled:
            return
        payload = record if isinstance(record, dict) else json.loads(record.to_json())
        with self._lock:
            self._audits.append(payload)

    def set_context(self, **fields: Any) -> None:
        """Merge ambient run context (policy label, dialects, workload...)."""
        with self._lock:
            self._context.update(fields)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    @property
    def audits(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._audits)

    @property
    def context(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._context)

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # cross-process shards (the PR-6 idiom, flight-event flavored)
    # ------------------------------------------------------------------
    def attach_shard_dir(self, shard_dir: str) -> None:
        """Register a directory where children flush flight shards.

        :meth:`dump` and :func:`collect_shards` consume shards from every
        attached directory, so a parent-side postmortem covers the pool
        children's recent history too.
        """
        with self._lock:
            if shard_dir not in self._shard_dirs:
                self._shard_dirs.append(shard_dir)

    def detach_shard_dir(self, shard_dir: str) -> None:
        with self._lock:
            if shard_dir in self._shard_dirs:
                self._shard_dirs.remove(shard_dir)

    def flush_shard(self, shard_dir: str) -> Optional[str]:
        """Append this process's unflushed events to its per-pid shard.

        Called by pool children after each task (mirroring
        :func:`repro.obs.flush_shard`).  Returns the shard path, or
        ``None`` when there was nothing new to write.
        """
        with self._lock:
            pending = min(self.seq - self._shard_flushed, len(self._events))
            if pending <= 0:
                return None
            tail = list(self._events)[-pending:]
            self._shard_flushed = self.seq
        pid = os.getpid()
        path = shard_flight_path(shard_dir, pid)
        with open(path, "a", encoding="utf-8") as fh:
            for event in tail:
                fh.write(json.dumps(dict(event, pid=pid), sort_keys=True, default=str) + "\n")
        return path

    def collect_shards(self, shard_dir: Optional[str] = None) -> int:
        """Merge (and consume) child flight shards into this ring.

        With no argument, drains every attached directory.  A shard line
        truncated by a dying child is skipped, like every other JSONL
        loader in :mod:`repro.obs`.
        """
        dirs = [shard_dir] if shard_dir is not None else list(self._shard_dirs)
        merged = 0
        for directory in dirs:
            pattern = os.path.join(directory, f"shard-*{SHARD_FLIGHT_SUFFIX}")
            for path in sorted(_glob.glob(pattern)):
                events = _load_shard(path)
                with self._lock:
                    for event in events:
                        self.seq += 1
                        self._events.append(dict(event, seq=self.seq))
                merged += len(events)
                os.unlink(path)
        return merged

    # ------------------------------------------------------------------
    # postmortem bundles
    # ------------------------------------------------------------------
    def _resolve_directory(self) -> str:
        if self._directory is not None:
            return self._directory
        return os.environ.get(POSTMORTEM_DIR_ENV, ".")

    def dump(
        self,
        reason: str,
        exc: Optional[BaseException] = None,
        crash: Optional[Dict[str, Any]] = None,
        path: Optional[str] = None,
    ) -> str:
        """Write one self-contained postmortem bundle; returns its path.

        ``crash`` carries structured blame — ``{"step", "worker",
        "vrank", "dialect", "kind"}`` — filled in by whoever observed the
        failure (the engine resolves the dialect from its assignment, so
        the bundle names the failing hardware even with tracing off).
        Child flight shards from attached directories are merged first.
        """
        try:
            self.collect_shards()
        except OSError:  # a shard dir may already be gone at teardown
            pass
        from repro.obs.bench import git_sha, machine_fingerprint

        metrics_snapshot = None
        open_spans: List[Dict[str, Any]] = []
        from repro import obs as _obs

        if _obs.is_enabled():
            metrics_snapshot = _obs.metrics().snapshot()
            open_spans = _obs.tracer().open_spans()
        bundle = {
            "version": BUNDLE_FORMAT_VERSION,
            "reason": reason,
            "created": time.time(),
            "step": (crash or {}).get("step", self._last_step()),
            "exception": (
                {"type": type(exc).__name__, "message": str(exc)} if exc is not None else None
            ),
            "crash": crash,
            "context": self.context,
            "events": self.events,
            "audits": self.audits,
            "metrics": metrics_snapshot,
            "open_spans": open_spans,
            "env": {
                "python": sys.version.split()[0],
                "pid": os.getpid(),
                "argv": list(sys.argv),
                "cwd": os.getcwd(),
                "repro_env": {
                    k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
                },
            },
            "machine": machine_fingerprint(),
            "git_sha": git_sha(),
        }
        if path is None:
            path = self._bundle_path(bundle["step"])
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, sort_keys=True, default=str)
        self.last_dump = path
        return path

    def _last_step(self) -> Optional[int]:
        with self._lock:
            for event in reversed(self._events):
                if "step" in event:
                    try:
                        return int(event["step"])
                    except (TypeError, ValueError):
                        continue
        return None

    def _bundle_path(self, step: Optional[int]) -> str:
        directory = self._resolve_directory()
        stem = f"postmortem-{step if step is not None else 'unknown'}"
        path = os.path.join(directory, f"{stem}.json")
        suffix = 1
        while os.path.exists(path):
            path = os.path.join(directory, f"{stem}-{suffix}.json")
            suffix += 1
        return path


def _load_shard(path: str) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    last_content = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as err:
            if lineno == last_content:
                continue  # child died mid-write; everything before is good
            raise ValueError(f"{path}:{lineno + 1}: malformed flight shard: {err}") from err
        if isinstance(payload, dict):
            events.append(payload)
    return events


# ---------------------------------------------------------------------------
# module-level singleton + convenience API (the instrumented-site surface)
# ---------------------------------------------------------------------------

_recorder = FlightRecorder()


def recorder() -> FlightRecorder:
    """The process-wide flight recorder (always exists, always cheap)."""
    return _recorder


def configure(
    ring_size: Optional[int] = None,
    audit_keep: Optional[int] = None,
    directory: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> FlightRecorder:
    """Replace the global recorder; unspecified knobs keep their defaults.

    Unlike :func:`repro.obs.configure`, this never needs to be called for
    the recorder to work — it exists to redirect postmortem output
    (tests point ``directory`` at a tmpdir) or resize the ring.
    """
    global _recorder
    _recorder = FlightRecorder(
        ring_size=ring_size if ring_size is not None else DEFAULT_RING_SIZE,
        audit_keep=audit_keep if audit_keep is not None else DEFAULT_AUDIT_KEEP,
        directory=directory,
        enabled=enabled if enabled is not None else True,
    )
    return _recorder


def reset() -> None:
    """Fresh default recorder (ring, context, and shard watermark cleared)."""
    configure()


def ensure_child() -> FlightRecorder:
    """Give a pool child its own recorder, dropping fork-inherited state.

    A ``fork``-started child inherits the parent's ring with a zero
    shard watermark, so its first :func:`flush_shard` would re-ship the
    parent's events and the merge would double-count them.  Called at
    the top of every pool task; a no-op in the process that created the
    current recorder (including ``spawn`` children, whose module state
    is fresh).
    """
    global _recorder
    if _recorder._pid != os.getpid():
        _recorder = FlightRecorder(
            ring_size=_recorder.ring_size,
            audit_keep=_recorder.audit_keep,
            directory=_recorder._directory,
            enabled=_recorder.enabled,
        )
    return _recorder


def record(kind: str, /, **fields: Any) -> None:
    _recorder.record(kind, **fields)


def note_audit(record_: Any) -> None:
    _recorder.note_audit(record_)


def set_context(**fields: Any) -> None:
    _recorder.set_context(**fields)


def dump(
    reason: str,
    exc: Optional[BaseException] = None,
    crash: Optional[Dict[str, Any]] = None,
    path: Optional[str] = None,
) -> str:
    return _recorder.dump(reason, exc=exc, crash=crash, path=path)


def flush_shard(shard_dir: str) -> Optional[str]:
    return _recorder.flush_shard(shard_dir)


def collect_shards(shard_dir: Optional[str] = None) -> int:
    return _recorder.collect_shards(shard_dir)


def attach_shard_dir(shard_dir: str) -> None:
    _recorder.attach_shard_dir(shard_dir)


def detach_shard_dir(shard_dir: str) -> None:
    _recorder.detach_shard_dir(shard_dir)


# ---------------------------------------------------------------------------
# bundle loading / rendering (the ``repro obs postmortem`` surface)
# ---------------------------------------------------------------------------


def load_bundle(path: str) -> Dict[str, Any]:
    """Read a postmortem bundle, validating just enough to render it."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            bundle = json.load(fh)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}: not a postmortem bundle: {err}") from err
    if not isinstance(bundle, dict) or "version" not in bundle or "events" not in bundle:
        raise ValueError(f"{path}: not a postmortem bundle (missing version/events)")
    return bundle


def is_bundle_file(path: str) -> bool:
    """Cheap sniff: does this file look like a postmortem bundle?

    Bundles are a single JSON object starting with ``{``; audit trails
    are JSONL whose records also start with ``{`` but never parse as one
    document with a ``version``+``events`` pair.
    """
    try:
        load_bundle(path)
        return True
    except (ValueError, OSError):
        return False


def render_bundle(bundle: Dict[str, Any], tail: int = 20) -> str:
    """Human-readable postmortem: blame line first, then the event tail."""
    lines: List[str] = []
    step = bundle.get("step")
    reason = bundle.get("reason", "?")
    lines.append(f"postmortem: reason={reason} step={step if step is not None else '?'}")
    exc = bundle.get("exception")
    if exc:
        lines.append(f"exception: {exc.get('type', '?')}: {exc.get('message', '')}")
    crash = bundle.get("crash")
    if crash:
        parts = [f"{k}={crash[k]}" for k in ("kind", "step", "worker", "vrank", "dialect")
                 if crash.get(k) is not None]
        lines.append("crash: " + " ".join(parts))
    context = bundle.get("context") or {}
    if context:
        lines.append(
            "context: " + " ".join(f"{k}={context[k]}" for k in sorted(context))
        )
    machine = bundle.get("machine") or {}
    lines.append(
        f"machine: {machine.get('platform', '?')} python {machine.get('python', '?')} "
        f"@ {bundle.get('git_sha', '?')}"
    )
    audits = bundle.get("audits") or []
    if audits:
        last = audits[-1]
        lines.append(
            f"last audit: step {last.get('step')} policy {last.get('policy') or '?'} "
            f"dialects {'/'.join(last.get('dialects', [])) or '?'}"
        )
    open_spans = bundle.get("open_spans") or []
    if open_spans:
        lines.append(f"open spans at dump ({len(open_spans)}):")
        for span in open_spans:
            lines.append(f"  {span.get('path', span.get('name', '?'))}")
    events = bundle.get("events") or []
    lines.append(f"events: {len(events)} in ring; last {min(tail, len(events))}:")
    for event in events[-tail:]:
        extra = " ".join(
            f"{k}={event[k]}" for k in sorted(event) if k not in ("seq", "t", "kind")
        )
        lines.append(f"  #{event.get('seq', '?'):>6} {event.get('kind', '?'):<24} {extra}")
    return "\n".join(lines)
