"""Unified observability layer: tracing, metrics, determinism audit.

One module-level switch governs everything the stack reports:

    from repro import obs

    obs.configure(enabled=True)          # wall-clock tracing + metrics
    obs.configure(enabled=True, clock="sim")      # simulated-clock mode
    obs.configure(enabled=True, audit=True)       # + per-step audit trail
    obs.configure(enabled=False)                  # back to (cheap) no-ops

Instrumented call sites — the engine's global step, the worker's per-EST
local steps, ElasticDDP's bucket reduces, the cluster simulator's event
stream — all go through this module, so a disabled build pays only a
module-attribute check and a shared null context manager per site.

The three sinks:

- :func:`span` / :func:`tracer` — nested timing spans (``obs.trace``),
  exportable to Chrome ``trace_event`` JSON or a flame-style summary;
- :func:`metrics` — counters/gauges/histograms (``obs.metrics``) with a
  Prometheus text exposition;
- :func:`audit_trail` — per-step determinism fingerprints (``obs.audit``)
  with :func:`diff_audits` to localize the first divergence between runs.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.obs.audit import (
    AuditDiff,
    AuditRecord,
    AuditTrail,
    diff_audits,
    fingerprint_rng_states,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    time_into,
)
from repro.obs.trace import (
    SimClock,
    SpanTracer,
    flame_summary,
    records_to_chrome_trace,
)
from repro.obs.profiler import (
    OnlineProfiler,
    ProfilerConfig,
    StragglerEvent,
    profile_from_trace,
)
from repro.obs.report import (
    ClusterUtilizationReport,
    events_from_trace,
    load_events_jsonl,
    save_events_jsonl,
)

__all__ = [
    "configure",
    "reset",
    "is_enabled",
    "tracer",
    "metrics",
    "audit_trail",
    "span",
    "instant",
    "sim_clock",
    "SpanTracer",
    "SimClock",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "time_into",
    "AuditTrail",
    "AuditRecord",
    "AuditDiff",
    "diff_audits",
    "fingerprint_rng_states",
    "flame_summary",
    "records_to_chrome_trace",
    "OnlineProfiler",
    "ProfilerConfig",
    "StragglerEvent",
    "profile_from_trace",
    "ClusterUtilizationReport",
    "events_from_trace",
    "load_events_jsonl",
    "save_events_jsonl",
]


class _NullSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

_enabled: bool = False
_tracer: SpanTracer = SpanTracer()
_metrics: MetricsRegistry = MetricsRegistry()
_audit: Optional[AuditTrail] = None


def configure(
    enabled: bool = True,
    *,
    clock: Union[str, SimClock] = "wall",
    ring_size: int = 65536,
    audit: bool = False,
    audit_path: Optional[str] = None,
    audit_rewind: bool = False,
) -> None:
    """(Re)configure the global observability state.

    Always installs fresh tracer/metrics/audit objects, so successive
    ``configure`` calls never mix records from different runs.  ``audit``
    (or a non-None ``audit_path``) turns on the per-step determinism
    trail; everything else costs nothing until a span/metric fires.
    ``audit_rewind`` permits non-increasing steps on the trail — required
    for fault-recovery runs, which restore to an earlier step and
    re-record the steps they re-execute.
    """
    global _enabled, _tracer, _metrics, _audit
    if _audit is not None:
        _audit.close()
    _enabled = bool(enabled)
    _tracer = SpanTracer(clock=clock, ring_size=ring_size)
    _metrics = MetricsRegistry()
    _audit = (
        AuditTrail(audit_path, allow_rewind=audit_rewind)
        if (audit or audit_path is not None) and enabled
        else None
    )


def reset() -> None:
    """Return to the pristine disabled state (used by tests and the CLI)."""
    configure(enabled=False)


def is_enabled() -> bool:
    return _enabled


def tracer() -> SpanTracer:
    """The active tracer (always exists; records only while enabled)."""
    return _tracer


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active metrics registry, or the shared no-op one when disabled."""
    return _metrics if _enabled else NULL_REGISTRY


def audit_trail() -> Optional[AuditTrail]:
    """The active audit trail, or None when auditing is off."""
    return _audit if _enabled else None


def span(name: str, cat: Optional[str] = None, est: Optional[float] = None, **attrs: Any):
    """Open a span on the global tracer; a shared no-op when disabled."""
    if not _enabled:
        return _NULL_SPAN
    return _tracer.span(name, cat=cat, est=est, **attrs)


def instant(name: str, ts: Optional[float] = None, cat: Optional[str] = None, **attrs: Any) -> None:
    """Record an instant marker on the global tracer (no-op when disabled)."""
    if _enabled:
        _tracer.instant(name, ts=ts, cat=cat, **attrs)


def sim_clock() -> Optional[SimClock]:
    """The tracer's simulated clock, when configured with ``clock="sim"``."""
    return _tracer.sim_clock if _enabled else None
