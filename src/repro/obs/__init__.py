"""Unified observability layer: tracing, metrics, determinism audit.

One module-level switch governs everything the stack reports:

    from repro import obs

    obs.configure(enabled=True)          # wall-clock tracing + metrics
    obs.configure(enabled=True, clock="sim")      # simulated-clock mode
    obs.configure(enabled=True, audit=True)       # + per-step audit trail
    obs.configure(enabled=False)                  # back to (cheap) no-ops

Instrumented call sites — the engine's global step, the worker's per-EST
local steps, ElasticDDP's bucket reduces, the cluster simulator's event
stream — all go through this module, so a disabled build pays only a
module-attribute check and a shared null context manager per site.

The three sinks:

- :func:`span` / :func:`tracer` — nested timing spans (``obs.trace``),
  exportable to Chrome ``trace_event`` JSON or a flame-style summary;
- :func:`metrics` — counters/gauges/histograms (``obs.metrics``) with a
  Prometheus text exposition;
- :func:`audit_trail` — per-step determinism fingerprints (``obs.audit``)
  with :func:`diff_audits` to localize the first divergence between runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.obs.audit import (
    AuditDiff,
    AuditRecord,
    AuditTrail,
    diff_audits,
    fingerprint_rng_states,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    time_into,
)
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSpec,
    ComparisonRow,
    Trajectory,
    compare_trajectory,
    gate_trajectories,
    make_record,
    run_benches,
)
from repro.obs.trace import (
    SHARD_SPAN_SUFFIX,
    SimClock,
    SpanTracer,
    flame_summary,
    load_shard_records,
    records_to_chrome_trace,
)
from repro.obs.flightrec import (
    BUNDLE_FORMAT_VERSION,
    FlightRecorder,
    is_bundle_file,
    load_bundle,
    render_bundle,
)
from repro.obs.forensics import (
    Cause,
    ForensicsReport,
    analyze_divergence,
    trail_from_bundle,
)
from repro.obs.profiler import (
    OnlineProfiler,
    ProfilerConfig,
    StragglerEvent,
    profile_from_trace,
)
from repro.obs.report import (
    ClusterUtilizationReport,
    events_from_trace,
    load_events_jsonl,
    save_events_jsonl,
)

__all__ = [
    "configure",
    "reset",
    "is_enabled",
    "ObsConfig",
    "config_snapshot",
    "configure_from",
    "flush_shard",
    "collect_shards",
    "BENCH_SCHEMA_VERSION",
    "BenchSpec",
    "ComparisonRow",
    "Trajectory",
    "compare_trajectory",
    "gate_trajectories",
    "make_record",
    "run_benches",
    "SHARD_SPAN_SUFFIX",
    "load_shard_records",
    "tracer",
    "metrics",
    "audit_trail",
    "span",
    "instant",
    "sim_clock",
    "SpanTracer",
    "SimClock",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "time_into",
    "AuditTrail",
    "AuditRecord",
    "AuditDiff",
    "diff_audits",
    "fingerprint_rng_states",
    "BUNDLE_FORMAT_VERSION",
    "FlightRecorder",
    "is_bundle_file",
    "load_bundle",
    "render_bundle",
    "Cause",
    "ForensicsReport",
    "analyze_divergence",
    "trail_from_bundle",
    "flame_summary",
    "records_to_chrome_trace",
    "OnlineProfiler",
    "ProfilerConfig",
    "StragglerEvent",
    "profile_from_trace",
    "ClusterUtilizationReport",
    "events_from_trace",
    "load_events_jsonl",
    "save_events_jsonl",
]


class _NullSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

_enabled: bool = False
_tracer: SpanTracer = SpanTracer()
_metrics: MetricsRegistry = MetricsRegistry()
_audit: Optional[AuditTrail] = None
#: bumped by every configure(); lets child processes skip re-applying a
#: snapshot they already hold (see :func:`configure_from`)
_generation: int = 0
#: the parent generation a child last applied via configure_from
_applied_generation: Optional[int] = None
_shard_dir: Optional[str] = None
#: tracer.emitted watermark of records already written to this process's shard
_shard_flushed: int = 0


@dataclass(frozen=True)
class ObsConfig:
    """A picklable snapshot of the global observability configuration.

    Built by :func:`config_snapshot` in the parent and applied by
    :func:`configure_from` inside spawned/forked pool workers, so child
    processes become first-class obs citizens instead of silently running
    with the module's per-process default (disabled) state.  ``shard_dir``
    is where the child's :func:`flush_shard` writes its per-pid span and
    metric shards for the parent to merge via :func:`collect_shards`.
    """

    enabled: bool = True
    clock: str = "wall"
    ring_size: int = 65536
    shard_dir: Optional[str] = None
    generation: int = 0


def configure(
    enabled: bool = True,
    *,
    clock: Union[str, SimClock] = "wall",
    ring_size: int = 65536,
    audit: bool = False,
    audit_path: Optional[str] = None,
    audit_rewind: bool = False,
    shard_dir: Optional[str] = None,
) -> None:
    """(Re)configure the global observability state.

    Always installs fresh tracer/metrics/audit objects, so successive
    ``configure`` calls never mix records from different runs.  ``audit``
    (or a non-None ``audit_path``) turns on the per-step determinism
    trail; everything else costs nothing until a span/metric fires.
    ``audit_rewind`` permits non-increasing steps on the trail — required
    for fault-recovery runs, which restore to an earlier step and
    re-record the steps they re-execute.  ``shard_dir`` makes this
    process write its spans/metrics as per-pid shards on
    :func:`flush_shard` (used inside pool children).
    """
    global _enabled, _tracer, _metrics, _audit, _generation, _shard_dir, _shard_flushed
    if _audit is not None:
        _audit.close()
    _enabled = bool(enabled)
    _tracer = SpanTracer(clock=clock, ring_size=ring_size)
    _metrics = MetricsRegistry()
    _audit = (
        AuditTrail(audit_path, allow_rewind=audit_rewind)
        if (audit or audit_path is not None) and enabled
        else None
    )
    _generation += 1
    _shard_dir = shard_dir
    _shard_flushed = 0


def config_snapshot(shard_dir: Optional[str] = None) -> ObsConfig:
    """Snapshot the current global configuration for shipping to children.

    ``shard_dir`` overrides (or sets) where the receiving process should
    write its shards; the parent itself usually has none.
    """
    return ObsConfig(
        enabled=_enabled,
        clock="sim" if _tracer.sim_clock is not None else "wall",
        ring_size=_tracer.ring_size,
        shard_dir=shard_dir if shard_dir is not None else _shard_dir,
        generation=_generation,
    )


def configure_from(config: Optional[ObsConfig]) -> None:
    """Apply a parent's :class:`ObsConfig` inside a child process.

    Idempotent per parent generation: a persistent pool worker receiving
    the same snapshot with every task only reconfigures (and drops its
    span ring) when the parent actually reconfigured.  ``None`` (parent
    had observability off) disables the child's obs state if it was
    previously bootstrapped.
    """
    global _applied_generation
    if config is None:
        if _applied_generation is not None:
            _applied_generation = None
            reset()
        return
    if _applied_generation == config.generation:
        return
    configure(
        enabled=config.enabled,
        clock=config.clock,
        ring_size=config.ring_size,
        shard_dir=config.shard_dir,
    )
    _applied_generation = config.generation


def flush_shard() -> Optional[str]:
    """Write this process's new span records and metrics to its shards.

    Appends records emitted since the previous flush to
    ``<shard_dir>/shard-<pid>.spans.jsonl`` (each stamped with this
    process's pid) and rewrites ``shard-<pid>.metrics.json`` with the
    full metrics state.  Returns the span-shard path, or ``None`` when
    disabled or no shard directory is configured.
    """
    global _shard_flushed
    if not _enabled or _shard_dir is None:
        return None
    from repro.obs.trace import append_shard_records, shard_span_path

    pid = os.getpid()
    records = _tracer.records
    # the ring may have dropped early records; flush whatever of the
    # unflushed tail is still held
    pending = min(_tracer.emitted - _shard_flushed, len(records))
    path = shard_span_path(_shard_dir, pid)
    if pending > 0:
        append_shard_records(path, records[-pending:], pid=pid)
        _shard_flushed = _tracer.emitted
    metrics_path = os.path.join(_shard_dir, f"shard-{pid}.metrics.json")
    import json

    with open(metrics_path, "w", encoding="utf-8") as fh:
        json.dump({"pid": pid, "state": _metrics.to_state()}, fh, sort_keys=True)
    return path


def collect_shards(shard_dir: str, label: str = "pid") -> int:
    """Merge child shards into this process's tracer and metrics.

    Every span record is ingested carrying its child ``pid`` (rendered as
    its own process lane by the Chrome exporter); every child metric
    series is folded into the parent registry with an extra
    ``{label}="<pid>"`` label so per-worker counts stay distinguishable.
    Consumed shard files are deleted — collecting twice never
    double-counts.  Returns the number of span records merged.
    """
    import glob
    import json

    from repro.obs.trace import SHARD_SPAN_SUFFIX, load_shard_records

    merged = 0
    for path in sorted(glob.glob(os.path.join(shard_dir, f"shard-*{SHARD_SPAN_SUFFIX}"))):
        records = load_shard_records(path)
        _tracer.ingest(records)
        merged += len(records)
        os.unlink(path)
    for path in sorted(glob.glob(os.path.join(shard_dir, "shard-*.metrics.json"))):
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        _metrics.merge_state(
            payload.get("state", []), extra_labels={label: str(payload.get("pid", "?"))}
        )
        os.unlink(path)
    return merged


def reset() -> None:
    """Return to the pristine disabled state (used by tests and the CLI)."""
    configure(enabled=False)


def is_enabled() -> bool:
    return _enabled


def tracer() -> SpanTracer:
    """The active tracer (always exists; records only while enabled)."""
    return _tracer


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active metrics registry, or the shared no-op one when disabled."""
    return _metrics if _enabled else NULL_REGISTRY


def audit_trail() -> Optional[AuditTrail]:
    """The active audit trail, or None when auditing is off."""
    return _audit if _enabled else None


def span(name: str, cat: Optional[str] = None, est: Optional[float] = None, **attrs: Any):
    """Open a span on the global tracer; a shared no-op when disabled."""
    if not _enabled:
        return _NULL_SPAN
    return _tracer.span(name, cat=cat, est=est, **attrs)


def instant(name: str, ts: Optional[float] = None, cat: Optional[str] = None, **attrs: Any) -> None:
    """Record an instant marker on the global tracer (no-op when disabled)."""
    if _enabled:
        _tracer.instant(name, ts=ts, cat=cat, **attrs)


def sim_clock() -> Optional[SimClock]:
    """The tracer's simulated clock, when configured with ``clock="sim"``."""
    return _tracer.sim_clock if _enabled else None
