"""Determinism audit trail: per-step fingerprints and divergence diffing.

The bitwise-consistency claim (§3) is all-or-nothing: a single flipped
mantissa bit anywhere voids it.  When two runs that *should* match do not,
the end-of-training fingerprint only says "different" — this module says
**where**.  An :class:`AuditTrail` records, per global step:

- the model parameter fingerprint (after the optimizer step),
- one fingerprint per gradient bucket (the granularity at which D1's
  bucket-mapping bugs and D0's reconstruction fallback first bite),
- the combined EST RNG-state fingerprint,
- the loader cursor (epoch / step-in-epoch),
- the active determinism label and kernel dialects (context, not compared).

:func:`diff_audits` aligns two trails by step and reports the first
divergent step, which fields and which buckets diverged, and the kernel
policy/dialect active on each side at that point — turning "the bits
differ" into "bucket 3 diverged at step 17 while run B was on D0/t4".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Fields compared for divergence; policy/dialects are context only.
COMPARED_FIELDS = ("params", "buckets", "rng", "loader")

AUDIT_FORMAT_VERSION = 1


def fingerprint_rng_states(states: Sequence[Mapping[str, Any]]) -> str:
    """Stable digest of a sequence of RNG-state dicts (one per EST)."""
    h = hashlib.sha256()
    for state in states:
        h.update(json.dumps(state, sort_keys=True, default=repr).encode())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class AuditRecord:
    """One global step's determinism fingerprints."""

    step: int
    params: str
    buckets: Dict[str, str] = field(default_factory=dict)
    rng: str = ""
    loader: Dict[str, Any] = field(default_factory=dict)
    policy: str = ""
    dialects: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("audit step must be non-negative")

    def to_json(self) -> str:
        return json.dumps(
            {
                "step": self.step,
                "params": self.params,
                "buckets": self.buckets,
                "rng": self.rng,
                "loader": self.loader,
                "policy": self.policy,
                "dialects": list(self.dialects),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "AuditRecord":
        payload = json.loads(line)
        try:
            return cls(
                step=int(payload["step"]),
                params=str(payload["params"]),
                buckets=dict(payload.get("buckets", {})),
                rng=str(payload.get("rng", "")),
                loader=dict(payload.get("loader", {})),
                policy=str(payload.get("policy", "")),
                dialects=tuple(payload.get("dialects", ())),
            )
        except KeyError as err:
            raise ValueError(f"audit record missing required field {err}") from err


class AuditTrail:
    """Append-only per-step fingerprint stream, optionally mirrored to JSONL.

    By default steps must strictly increase — re-recording a step is a
    caller bug.  Fault-recovery runs are the sanctioned exception: a
    restore rewinds the engine to an earlier step and *re-executes* it, so
    a trail created with ``allow_rewind=True`` accepts a non-increasing
    step by truncating the stale tail (every in-memory record at or past
    the new step) first.  The JSONL mirror intentionally keeps the full
    history including rewound records — that is the forensic log — and
    :meth:`by_step` on a loaded trail takes the *last* occurrence of each
    step, so a replayed trail compares equal to a fault-free one exactly
    when the re-executed steps were bitwise identical.
    """

    def __init__(self, path: Optional[str] = None, allow_rewind: bool = False) -> None:
        self.records: List[AuditRecord] = []
        self.allow_rewind = allow_rewind
        self._path = os.fspath(path) if path is not None else None
        self._fh = open(self._path, "a", encoding="utf-8") if self._path else None

    def record(self, record: AuditRecord) -> None:
        if self.records and record.step <= self.records[-1].step:
            if not self.allow_rewind:
                raise ValueError(
                    f"audit steps must increase: {record.step} after {self.records[-1].step}"
                )
            while self.records and self.records[-1].step >= record.step:
                self.records.pop()
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(record.to_json() + "\n")
            self._fh.flush()

    def capture(
        self,
        step: int,
        params: str,
        buckets: Mapping[str, str],
        rng: str,
        loader: Mapping[str, Any],
        policy: str,
        dialects: Sequence[str],
    ) -> AuditRecord:
        record = AuditRecord(
            step=step,
            params=params,
            buckets=dict(buckets),
            rng=rng,
            loader=dict(loader),
            policy=policy,
            dialects=tuple(dialects),
        )
        self.record(record)
        return record

    def by_step(self) -> Dict[int, AuditRecord]:
        return {r.step: r for r in self.records}

    def __len__(self) -> int:
        return len(self.records)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "AuditTrail":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @classmethod
    def load(cls, path: str) -> "AuditTrail":
        """Load a trail; tolerant of a truncated trailing line (flagged via
        ``truncated``), strict elsewhere with path/line-number context."""
        trail = cls()
        trail.truncated = False  # type: ignore[attr-defined]
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        last_content = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                trail.records.append(AuditRecord.from_json(line))
            except (json.JSONDecodeError, ValueError) as err:
                if lineno - 1 == last_content and isinstance(err, json.JSONDecodeError):
                    trail.truncated = True  # type: ignore[attr-defined]
                    continue
                raise ValueError(f"{path}:{lineno}: malformed audit record: {err}") from err
        return trail


@dataclass(frozen=True)
class AuditDiff:
    """Outcome of comparing two audit trails."""

    #: first step present in both trails where any compared field differs
    first_divergent_step: Optional[int]
    #: which of :data:`COMPARED_FIELDS` differ at that step
    fields: Tuple[str, ...] = ()
    #: bucket ids whose gradient fingerprints differ at that step
    buckets: Tuple[str, ...] = ()
    #: determinism label / dialects active on each side at that step
    policy_a: str = ""
    policy_b: str = ""
    dialects_a: Tuple[str, ...] = ()
    dialects_b: Tuple[str, ...] = ()
    #: steps present in both trails
    common_steps: int = 0
    #: steps present in exactly one trail
    only_in_a: int = 0
    only_in_b: int = 0

    @property
    def identical(self) -> bool:
        return self.first_divergent_step is None and self.only_in_a == 0 and self.only_in_b == 0

    def describe(self) -> str:
        lines = [f"compared {self.common_steps} common steps"]
        if self.only_in_a or self.only_in_b:
            lines.append(
                f"step coverage differs: {self.only_in_a} only in A, {self.only_in_b} only in B"
            )
        if self.first_divergent_step is None:
            lines.append("no divergence on common steps")
        else:
            lines.append(
                f"first divergence at step {self.first_divergent_step} "
                f"in {', '.join(self.fields)}"
            )
            if self.buckets:
                lines.append(f"divergent gradient buckets: {', '.join(self.buckets)}")
            lines.append(
                f"active policy: A={self.policy_a or '?'} ({'/'.join(self.dialects_a) or '?'})"
                f" vs B={self.policy_b or '?'} ({'/'.join(self.dialects_b) or '?'})"
            )
        return "\n".join(lines)


def diff_audits(a: AuditTrail, b: AuditTrail) -> AuditDiff:
    """Find the first divergent step between two runs' audit trails."""
    by_a, by_b = a.by_step(), b.by_step()
    common = sorted(set(by_a) & set(by_b))
    only_a = len(set(by_a) - set(by_b))
    only_b = len(set(by_b) - set(by_a))
    for step in common:
        ra, rb = by_a[step], by_b[step]
        fields = []
        if ra.params != rb.params:
            fields.append("params")
        divergent_buckets = tuple(
            sorted(
                key
                for key in set(ra.buckets) | set(rb.buckets)
                if ra.buckets.get(key) != rb.buckets.get(key)
            )
        )
        if divergent_buckets:
            fields.append("buckets")
        if ra.rng != rb.rng:
            fields.append("rng")
        if ra.loader != rb.loader:
            fields.append("loader")
        if fields:
            return AuditDiff(
                first_divergent_step=step,
                fields=tuple(fields),
                buckets=divergent_buckets,
                policy_a=ra.policy,
                policy_b=rb.policy,
                dialects_a=ra.dialects,
                dialects_b=rb.dialects,
                common_steps=len(common),
                only_in_a=only_a,
                only_in_b=only_b,
            )
    return AuditDiff(
        first_divergent_step=None,
        common_steps=len(common),
        only_in_a=only_a,
        only_in_b=only_b,
    )
