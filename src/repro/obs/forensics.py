"""Divergence root-cause forensics: from "the bits differ" to "why".

:func:`repro.obs.audit.diff_audits` localizes the **first divergent
step** between two runs; this module explains it.  Starting from that
step, :func:`analyze_divergence` walks a window of preceding audit
records (and, when available, flight-recorder events from postmortem
bundles) and correlates the divergent field/bucket with every known
determinism hazard:

- **kernel-dialect switches** — a worker's dialect tuple changing within
  a trail (a reconfigure onto a different GPU type), or the two runs
  disagreeing on dialects at the divergence step: the paper's D2 story;
- **policy-label changes** — D0 vs D1 vs D1+D2 mismatches;
- **reconfigure boundaries** — the worker count changing (the D0
  bucket-rebuild hazard, paper Fig. 9);
- **fault recovery rewinds** — a trail re-recording earlier steps
  (restore + re-execute), visible as non-monotonic raw records;
- **RNG / loader drift** — the compared fields themselves, when they are
  the earliest thing that moved;
- **fault / resilience / scheduler events** — flight events near the
  divergence step, when a postmortem bundle supplies them.

Each correlation becomes a :class:`Cause`, scored by *hazard weight ×
temporal proximity* — a dialect switch at the divergence step outranks a
loader wobble five steps earlier — and the ranked list plus a causal
timeline form the :class:`ForensicsReport` rendered by ``repro obs
why``.  The contract asserted by the tests: a seeded kernel-variant swap
at step *k* is attributed to step *k* and the dialect switch, not merely
"params differ".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.audit import AuditDiff, AuditRecord, AuditTrail, diff_audits

#: How many steps before the divergence the walk-back inspects.
DEFAULT_WINDOW = 8

#: Hazard weights: how strongly each cause kind explains a bit flip.
CAUSE_WEIGHTS: Dict[str, float] = {
    "dialect_switch": 5.0,
    "dialect_mismatch": 5.0,
    "policy_switch": 4.0,
    "policy_mismatch": 4.0,
    "fault_event": 3.5,
    "reconfigure": 3.0,
    "recovery_rewind": 2.5,
    "rng_divergence": 2.0,
    "scheduler_decision": 1.5,
    "loader_divergence": 1.5,
}

#: Flight-event kinds treated as fault/resilience activity.
_FAULT_EVENT_KINDS = (
    "fault.detect",
    "fault.graceful",
    "resilience.detect",
    "resilience.replan",
    "resilience.restore",
    "engine.crash",
)

_SCHED_EVENT_KINDS = ("sched.decision", "sched.propose", "sched.grant")


@dataclass(frozen=True)
class Cause:
    """One candidate explanation for the divergence."""

    kind: str
    step: Optional[int]
    side: str  # "A", "B", or "both"
    detail: str
    score: float

    def describe(self) -> str:
        where = f"step {self.step}" if self.step is not None else "unknown step"
        return f"[{self.kind}] {where} ({self.side}): {self.detail}"


@dataclass
class ForensicsReport:
    """Ranked cause attribution for one audit-trail divergence."""

    diff: AuditDiff
    causes: List[Cause] = field(default_factory=list)
    timeline: List[str] = field(default_factory=list)
    window: int = DEFAULT_WINDOW

    @property
    def identical(self) -> bool:
        return self.diff.identical

    @property
    def attributed(self) -> bool:
        """True when a structural cause (not just field drift) was found."""
        return any(
            c.kind not in ("rng_divergence", "loader_divergence") for c in self.causes
        )

    @property
    def top_cause(self) -> Optional[Cause]:
        return self.causes[0] if self.causes else None

    def headline(self) -> str:
        if self.diff.identical:
            return "trails are bitwise identical"
        step = self.diff.first_divergent_step
        if step is None:
            return (
                f"no divergence on common steps, but step coverage differs "
                f"({self.diff.only_in_a} only in A, {self.diff.only_in_b} only in B)"
            )
        what = (
            f"bucket {', '.join(self.diff.buckets)}"
            if self.diff.buckets
            else "/".join(self.diff.fields) or "state"
        )
        head = f"{what} diverged at step {step}"
        top = self.top_cause
        if top is not None and top.kind not in ("rng_divergence", "loader_divergence"):
            gap = step - top.step if top.step is not None else None
            when = (
                "at the divergence step"
                if gap in (0, None)
                else f"{gap} step(s) after"
            )
            head += f", {when} {top.detail}"
        return head

    def describe(self) -> str:
        lines = [self.headline()]
        if self.diff.identical:
            return lines[0]
        if self.causes:
            lines.append("ranked causes:")
            for rank, cause in enumerate(self.causes, start=1):
                lines.append(f"  {rank}. {cause.describe()}  score={cause.score:.2f}")
        else:
            lines.append("no correlated cause found in the walk-back window")
        if self.timeline:
            lines.append(f"causal timeline (last {self.window} steps before divergence):")
            lines.extend(f"  {entry}" for entry in self.timeline)
        return "\n".join(lines)


def _proximity(divergent_step: int, step: Optional[int]) -> float:
    """1 at the divergence step, decaying with distance before it."""
    if step is None:
        return 0.5
    return 1.0 / (1.0 + max(0, divergent_step - step))


def _dialect_changes(
    records: Dict[int, AuditRecord], steps: Sequence[int], side: str, s: int
) -> List[Cause]:
    """Within-trail dialect/policy/worker-count changes inside the window."""
    causes: List[Cause] = []
    for prev_step, step in zip(steps, steps[1:]):
        prev, cur = records[prev_step], records[step]
        if tuple(prev.dialects) != tuple(cur.dialects):
            changed = [
                f"worker {i}: {a}->{b}"
                for i, (a, b) in enumerate(zip(prev.dialects, cur.dialects))
                if a != b
            ]
            if len(prev.dialects) != len(cur.dialects):
                causes.append(
                    Cause(
                        kind="reconfigure",
                        step=step,
                        side=side,
                        detail=(
                            f"worker count changed {len(prev.dialects)}->"
                            f"{len(cur.dialects)} "
                            f"({'/'.join(prev.dialects)} -> {'/'.join(cur.dialects)})"
                        ),
                        score=CAUSE_WEIGHTS["reconfigure"] * _proximity(s, step),
                    )
                )
            if changed or len(prev.dialects) != len(cur.dialects):
                detail = (
                    f"a {'/'.join(prev.dialects)} -> {'/'.join(cur.dialects)} "
                    f"dialect switch"
                )
                if changed:
                    detail += f" ({'; '.join(changed)})"
                causes.append(
                    Cause(
                        kind="dialect_switch",
                        step=step,
                        side=side,
                        detail=detail,
                        score=CAUSE_WEIGHTS["dialect_switch"] * _proximity(s, step),
                    )
                )
        if prev.policy != cur.policy and prev.policy and cur.policy:
            causes.append(
                Cause(
                    kind="policy_switch",
                    step=step,
                    side=side,
                    detail=f"a determinism-policy switch {prev.policy} -> {cur.policy}",
                    score=CAUSE_WEIGHTS["policy_switch"] * _proximity(s, step),
                )
            )
    return causes


def _rewinds(trail: AuditTrail, side: str, s: int, window: int) -> List[Cause]:
    """Fault-recovery rewinds visible in the raw (pre-last-wins) records."""
    causes: List[Cause] = []
    prev_step: Optional[int] = None
    for record in trail.records:
        if prev_step is not None and record.step <= prev_step:
            if s - window <= record.step <= s:
                causes.append(
                    Cause(
                        kind="recovery_rewind",
                        step=record.step,
                        side=side,
                        detail=(
                            f"a recovery rewind to step {record.step} "
                            f"(was at step {prev_step})"
                        ),
                        score=CAUSE_WEIGHTS["recovery_rewind"] * _proximity(s, record.step),
                    )
                )
        prev_step = record.step
    return causes


def _event_causes(
    events: Sequence[Dict[str, Any]], side: str, s: int, window: int
) -> List[Cause]:
    """Fault/resilience/scheduler flight events near the divergence step."""
    causes: List[Cause] = []
    for event in events:
        kind = str(event.get("kind", ""))
        step = event.get("step")
        try:
            step = int(step) if step is not None else None
        except (TypeError, ValueError):
            step = None
        if step is not None and not (s - window <= step <= s):
            continue
        extra = " ".join(
            f"{k}={event[k]}"
            for k in sorted(event)
            if k not in ("seq", "t", "kind", "pid")
        )
        if kind in _FAULT_EVENT_KINDS:
            causes.append(
                Cause(
                    kind="fault_event",
                    step=step,
                    side=side,
                    detail=f"a {kind} event ({extra})",
                    score=CAUSE_WEIGHTS["fault_event"] * _proximity(s, step),
                )
            )
        elif kind in _SCHED_EVENT_KINDS and step is not None:
            causes.append(
                Cause(
                    kind="scheduler_decision",
                    step=step,
                    side=side,
                    detail=f"a {kind} event ({extra})",
                    score=CAUSE_WEIGHTS["scheduler_decision"] * _proximity(s, step),
                )
            )
    return causes


def _dedupe(causes: List[Cause]) -> List[Cause]:
    """Keep the highest-scoring instance of each (kind, step, side)."""
    best: Dict[Tuple[str, Optional[int], str], Cause] = {}
    for cause in causes:
        key = (cause.kind, cause.step, cause.side)
        if key not in best or cause.score > best[key].score:
            best[key] = cause
    return sorted(best.values(), key=lambda c: (-c.score, c.kind, c.step or -1))


def analyze_divergence(
    trail_a: AuditTrail,
    trail_b: AuditTrail,
    events_a: Optional[Sequence[Dict[str, Any]]] = None,
    events_b: Optional[Sequence[Dict[str, Any]]] = None,
    window: int = DEFAULT_WINDOW,
) -> ForensicsReport:
    """Walk back from the first divergent step and rank candidate causes.

    ``events_a`` / ``events_b`` are optional flight-recorder event lists
    (from postmortem bundles) enriching the timeline with fault,
    resilience, and scheduler activity the audit records cannot see.
    """
    if window < 1:
        raise ValueError("window must be positive")
    diff = diff_audits(trail_a, trail_b)
    report = ForensicsReport(diff=diff, window=window)
    if diff.identical or diff.first_divergent_step is None:
        return report
    s = diff.first_divergent_step
    causes: List[Cause] = []

    for side, trail in (("A", trail_a), ("B", trail_b)):
        by_step = trail.by_step()
        steps = sorted(step for step in by_step if s - window <= step <= s)
        causes.extend(_dialect_changes(by_step, steps, side, s))
        causes.extend(_rewinds(trail, side, s, window))

    # cross-trail disagreement *at* the divergence step
    ra, rb = trail_a.by_step().get(s), trail_b.by_step().get(s)
    if ra is not None and rb is not None:
        if tuple(ra.dialects) != tuple(rb.dialects):
            causes.append(
                Cause(
                    kind="dialect_mismatch",
                    step=s,
                    side="both",
                    detail=(
                        f"the runs disagree on kernel dialects: "
                        f"A={'/'.join(ra.dialects) or '?'} vs "
                        f"B={'/'.join(rb.dialects) or '?'}"
                    ),
                    score=CAUSE_WEIGHTS["dialect_mismatch"],
                )
            )
        if ra.policy != rb.policy and (ra.policy or rb.policy):
            causes.append(
                Cause(
                    kind="policy_mismatch",
                    step=s,
                    side="both",
                    detail=(
                        f"the runs disagree on the determinism policy: "
                        f"A={ra.policy or '?'} vs B={rb.policy or '?'}"
                    ),
                    score=CAUSE_WEIGHTS["policy_mismatch"],
                )
            )
    if "rng" in diff.fields:
        causes.append(
            Cause(
                kind="rng_divergence",
                step=s,
                side="both",
                detail="the EST RNG-state fingerprints themselves diverged",
                score=CAUSE_WEIGHTS["rng_divergence"],
            )
        )
    if "loader" in diff.fields:
        causes.append(
            Cause(
                kind="loader_divergence",
                step=s,
                side="both",
                detail="the data-loader cursors diverged",
                score=CAUSE_WEIGHTS["loader_divergence"],
            )
        )
    for side, events in (("A", events_a), ("B", events_b)):
        if events:
            causes.extend(_event_causes(events, side, s, window))

    report.causes = _dedupe(causes)
    report.timeline = _build_timeline(trail_a, trail_b, events_a, events_b, s, window)
    return report


def _build_timeline(
    trail_a: AuditTrail,
    trail_b: AuditTrail,
    events_a: Optional[Sequence[Dict[str, Any]]],
    events_b: Optional[Sequence[Dict[str, Any]]],
    s: int,
    window: int,
) -> List[str]:
    """Merged per-step view of both trails (and events) before the divergence."""
    entries: List[Tuple[int, str]] = []
    by_a, by_b = trail_a.by_step(), trail_b.by_step()
    for step in sorted(set(by_a) | set(by_b)):
        if not (s - window <= step <= s):
            continue
        parts = []
        for side, record in (("A", by_a.get(step)), ("B", by_b.get(step))):
            if record is None:
                parts.append(f"{side}: absent")
            else:
                parts.append(
                    f"{side}: {record.policy or '?'} "
                    f"[{'/'.join(record.dialects) or '?'}]"
                )
        marker = "  <-- first divergence" if step == s else ""
        entries.append((step, f"step {step}: " + "   ".join(parts) + marker))
    for side, events in (("A", events_a), ("B", events_b)):
        for event in events or ():
            step = event.get("step")
            try:
                step = int(step)
            except (TypeError, ValueError):
                continue
            kind = str(event.get("kind", ""))
            if (s - window <= step <= s) and (
                kind in _FAULT_EVENT_KINDS or kind in _SCHED_EVENT_KINDS
            ):
                entries.append((step, f"step {step}: {side} event {kind}"))
    entries.sort(key=lambda e: e[0])
    return [text for _, text in entries]


def trail_from_bundle(bundle: Dict[str, Any]) -> AuditTrail:
    """Rebuild an :class:`AuditTrail` from a postmortem bundle's audit tail."""
    trail = AuditTrail(allow_rewind=True)
    for payload in bundle.get("audits", []):
        trail.record(
            AuditRecord(
                step=int(payload["step"]),
                params=str(payload.get("params", "")),
                buckets=dict(payload.get("buckets", {})),
                rng=str(payload.get("rng", "")),
                loader=dict(payload.get("loader", {})),
                policy=str(payload.get("policy", "")),
                dialects=tuple(payload.get("dialects", ())),
            )
        )
    return trail
