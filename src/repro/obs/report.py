"""Cluster utilization report built from simulator event logs.

The trace experiments answer "how busy was the cluster?" with three
numbers the paper cares about (§5.2): job completion time, allocated GPUs
over time, and how much capacity sat idle.  This module folds a
:class:`~repro.utils.events.EventLog` (or a saved JSONL trace of it) into
a :class:`ClusterUtilizationReport`:

- **per-job allocation timelines** — GPUs held by each job over time,
  split by GPU type, rendered as ASCII lanes and as an HTML gantt;
- **per-GPU-type utilization** — busy vs idle GPU-seconds against the
  cluster capacity (from the leading ``cluster_capacity`` event);
- **queueing delay** — submit-to-first-grant per job;
- **fragmentation** — the fraction of free GPU-seconds that accrued while
  at least one submitted job held zero GPUs: capacity that was free *and
  wanted* but not handed out.

Everything is computed from the event stream alone, so the report works
on a live ``EventLog``, on `trace-sim --events` output reloaded from
disk, or on the ``cat="sched"`` instants inside a span trace
(:func:`events_from_trace`).
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: event kinds the report understands; anything else is ignored
_ALLOC_KINDS = (
    "cluster_capacity",
    "job_submit",
    "scale_out",
    "scale_in",
    "preempt",
    "job_done",
)


def _normalize(event: Any) -> Optional[Tuple[float, str, Dict[str, Any]]]:
    """Accept Event objects, plain dicts, and JSON-loaded rows alike."""
    if hasattr(event, "kind") and hasattr(event, "time"):
        return float(event.time), str(event.kind), dict(event.payload)
    if isinstance(event, Mapping):
        kind = event.get("kind")
        if kind not in _ALLOC_KINDS:
            return None
        time = event.get("time", event.get("t0"))
        payload = event.get("payload", event.get("args", {}))
        if time is None:
            return None
        return float(time), str(kind), dict(payload)
    return None


def events_from_trace(records: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Recover simulator events from a span trace's ``cat="sched"`` instants.

    The :class:`~repro.utils.events.EventLog` mirrors every event into the
    tracer as an instant marker; this inverts that mapping so ``obs
    report`` can consume either representation.
    """
    events = []
    for r in records:
        if r.get("kind") != "instant" or r.get("cat") != "sched":
            continue
        if r.get("name") not in _ALLOC_KINDS:
            continue
        events.append(
            {"time": float(r["t0"]), "kind": r["name"], "payload": dict(r.get("args", {}))}
        )
    return events


@dataclass
class _JobLane:
    """One job's allocation history."""

    job_id: str
    submit_time: Optional[float] = None
    first_grant: Optional[float] = None
    done_time: Optional[float] = None
    #: currently-held GPUs by type (lower-case)
    held: Dict[str, int] = field(default_factory=dict)
    #: (time, total GPUs held) step series
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: accumulated GPU-seconds by type
    gpu_seconds: Dict[str, float] = field(default_factory=dict)
    #: times at which a fault preempted this job (recovery-gap markers)
    preempt_times: List[float] = field(default_factory=list)
    _last_time: float = 0.0

    @property
    def total_held(self) -> int:
        return sum(self.held.values())

    def _accrue(self, now: float) -> None:
        dt = now - self._last_time
        if dt > 0:
            for gtype, count in self.held.items():
                if count:
                    self.gpu_seconds[gtype] = self.gpu_seconds.get(gtype, 0.0) + count * dt
        self._last_time = now

    @property
    def queueing_delay(self) -> Optional[float]:
        if self.submit_time is None or self.first_grant is None:
            return None
        return self.first_grant - self.submit_time


@dataclass
class ClusterUtilizationReport:
    """Folded view of a simulated cluster run."""

    horizon: float
    capacity: Dict[str, int]
    jobs: Dict[str, _JobLane]
    #: GPU-seconds held across all jobs, by type
    busy_gpu_seconds: Dict[str, float]
    #: capacity · horizon − busy, by type (only types with known capacity)
    idle_gpu_seconds: Dict[str, float]
    #: free GPU-seconds accrued while ≥1 submitted job held zero GPUs
    contended_free_gpu_seconds: float
    #: (time, cluster-wide allocated GPUs) step series
    allocation_timeline: List[Tuple[float, int]]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[Any],
        capacity: Optional[Mapping[str, int]] = None,
        horizon: Optional[float] = None,
    ) -> "ClusterUtilizationReport":
        """Fold an event stream (Event objects or dict rows) into a report.

        ``capacity`` overrides the ``cluster_capacity`` event if both are
        present; with neither, peak concurrent allocation per type is used
        as a lower-bound stand-in (idle numbers then underestimate).
        """
        rows = [n for n in (_normalize(e) for e in events) if n is not None]
        rows.sort(key=lambda r: r[0])

        cap: Dict[str, int] = {
            k.lower(): int(v) for k, v in (capacity or {}).items()
        }
        jobs: Dict[str, _JobLane] = {}
        total_allocated = 0
        allocation_timeline: List[Tuple[float, int]] = []
        peak_by_type: Dict[str, int] = {}
        held_by_type: Dict[str, int] = {}
        contended_free = 0.0
        last_time = 0.0
        end_time = rows[-1][0] if rows else 0.0

        def lane(job_id: str) -> _JobLane:
            if job_id not in jobs:
                jobs[job_id] = _JobLane(job_id=job_id)
            return jobs[job_id]

        def free_capacity() -> int:
            if not cap:
                return 0
            return max(0, sum(cap.values()) - sum(held_by_type.values()))

        def any_starved(now: float) -> bool:
            return any(
                j.submit_time is not None
                and j.done_time is None
                and j.total_held == 0
                for j in jobs.values()
            )

        for time, kind, payload in rows:
            # accrue contended-free GPU-seconds over [last_time, time)
            if time > last_time and cap and any_starved(last_time):
                contended_free += free_capacity() * (time - last_time)
            for j in jobs.values():
                j._accrue(time)
            last_time = time

            if kind == "cluster_capacity" and not capacity:
                cap = {str(k).lower(): int(v) for k, v in payload.items()}
            elif kind == "job_submit":
                lane(str(payload.get("job", "?"))).submit_time = time
            elif kind == "scale_out":
                j = lane(str(payload.get("job", "?")))
                gtype = str(payload.get("gtype", "?")).lower()
                count = int(payload.get("gpus", 0))
                if j.first_grant is None and count > 0:
                    j.first_grant = time
                j.held[gtype] = j.held.get(gtype, 0) + count
                held_by_type[gtype] = held_by_type.get(gtype, 0) + count
                peak_by_type[gtype] = max(peak_by_type.get(gtype, 0), held_by_type[gtype])
                total_allocated += count
                j.timeline.append((time, j.total_held))
                allocation_timeline.append((time, total_allocated))
            elif kind in ("scale_in", "preempt"):
                j = lane(str(payload.get("job", "?")))
                gtype = str(payload.get("gtype", "?")).lower()
                count = int(payload.get("gpus", 0))
                if count:
                    j.held[gtype] = max(0, j.held.get(gtype, 0) - count)
                    held_by_type[gtype] = max(0, held_by_type.get(gtype, 0) - count)
                    total_allocated = max(0, total_allocated - count)
                    j.timeline.append((time, j.total_held))
                    allocation_timeline.append((time, total_allocated))
                if kind == "preempt":
                    j.preempt_times.append(time)
            elif kind == "job_done":
                j = lane(str(payload.get("job", "?")))
                j.done_time = time
                released = j.total_held
                for gtype, count in j.held.items():
                    held_by_type[gtype] = max(0, held_by_type.get(gtype, 0) - count)
                j.held = {}
                total_allocated = max(0, total_allocated - released)
                j.timeline.append((time, 0))
                allocation_timeline.append((time, total_allocated))

        span = horizon if horizon is not None else end_time
        # close the books at the horizon
        if span > last_time:
            if cap and any_starved(last_time):
                contended_free += free_capacity() * (span - last_time)
            for j in jobs.values():
                j._accrue(span)

        if not cap:
            cap = dict(peak_by_type)
        busy: Dict[str, float] = {}
        for j in jobs.values():
            for gtype, secs in j.gpu_seconds.items():
                busy[gtype] = busy.get(gtype, 0.0) + secs
        idle = {
            gtype: max(0.0, cap[gtype] * span - busy.get(gtype, 0.0)) for gtype in cap
        }
        return cls(
            horizon=span,
            capacity=cap,
            jobs=jobs,
            busy_gpu_seconds=busy,
            idle_gpu_seconds=idle,
            contended_free_gpu_seconds=contended_free,
            allocation_timeline=allocation_timeline,
        )

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def total_idle_gpu_seconds(self) -> float:
        return sum(self.idle_gpu_seconds.values())

    @property
    def total_busy_gpu_seconds(self) -> float:
        return sum(self.busy_gpu_seconds.values())

    @property
    def utilization(self) -> float:
        """Busy fraction of total capacity over the horizon."""
        total_capacity = sum(self.capacity.values()) * self.horizon
        if total_capacity <= 0:
            return 0.0
        return self.total_busy_gpu_seconds / total_capacity

    @property
    def preemptions(self) -> int:
        """Total fault-driven preemptions across all job lanes."""
        return sum(len(lane.preempt_times) for lane in self.jobs.values())

    @property
    def fragmentation(self) -> float:
        """Share of idle GPU-seconds that a pending job was starving for."""
        idle = self.total_idle_gpu_seconds
        if idle <= 0:
            return 0.0
        return min(1.0, self.contended_free_gpu_seconds / idle)

    def queueing_delays(self) -> Dict[str, float]:
        return {
            job_id: lane.queueing_delay
            for job_id, lane in sorted(self.jobs.items())
            if lane.queueing_delay is not None
        }

    @property
    def mean_queueing_delay(self) -> float:
        delays = list(self.queueing_delays().values())
        return sum(delays) / len(delays) if delays else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable rollup (the CLI's ``--json`` output)."""
        return {
            "horizon_s": self.horizon,
            "capacity": dict(self.capacity),
            "jobs": len(self.jobs),
            "completed": sum(1 for j in self.jobs.values() if j.done_time is not None),
            "busy_gpu_seconds": dict(self.busy_gpu_seconds),
            "idle_gpu_seconds": dict(self.idle_gpu_seconds),
            "total_idle_gpu_seconds": self.total_idle_gpu_seconds,
            "utilization": self.utilization,
            "fragmentation": self.fragmentation,
            "mean_queueing_delay_s": self.mean_queueing_delay,
            "queueing_delays": self.queueing_delays(),
            "preemptions": self.preemptions,
        }

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def _lane_cells(self, lane: _JobLane, width: int) -> str:
        """One job's life as ``width`` characters: . queued, # running,
        ! preempted (fault marker overlays the allocation segments)."""
        if self.horizon <= 0:
            return " " * width
        cells = [" "] * width
        scale = width / self.horizon

        def col(t: float) -> int:
            return min(width - 1, max(0, int(t * scale)))

        submit = lane.submit_time if lane.submit_time is not None else 0.0
        end = lane.done_time if lane.done_time is not None else self.horizon
        for i in range(col(submit), col(end) + 1):
            cells[i] = "."
        # overlay held-GPU segments from the step timeline
        prev_t, prev_held = submit, 0
        for t, held in lane.timeline + [(end, 0)]:
            if prev_held > 0:
                for i in range(col(prev_t), col(t) + 1):
                    cells[i] = "#"
            prev_t, prev_held = t, held
        for t in lane.preempt_times:
            cells[col(t)] = "!"
        return "".join(cells)

    def to_text(self, width: int = 60, max_jobs: int = 40) -> str:
        """Plain-text report: totals, per-type idle, ASCII allocation lanes."""
        lines = [
            f"cluster utilization over {self.horizon:.0f}s "
            f"({len(self.jobs)} jobs, "
            f"{sum(1 for j in self.jobs.values() if j.done_time is not None)} completed)",
            "",
            f"{'type':>8} {'capacity':>9} {'busy GPU-s':>12} {'idle GPU-s':>12} {'util':>7}",
        ]
        for gtype in sorted(self.capacity):
            cap = self.capacity[gtype]
            busy = self.busy_gpu_seconds.get(gtype, 0.0)
            idle = self.idle_gpu_seconds.get(gtype, 0.0)
            denom = cap * self.horizon
            util = busy / denom if denom > 0 else 0.0
            lines.append(
                f"{gtype:>8} {cap:>9} {busy:>12.0f} {idle:>12.0f} {util:>6.1%}"
            )
        lines += [
            "",
            f"idle GPU-seconds (total): {self.total_idle_gpu_seconds:.0f}",
            f"cluster utilization: {self.utilization:.1%}",
            f"fragmentation (starved-idle share): {self.fragmentation:.1%}",
            f"mean queueing delay: {self.mean_queueing_delay:.1f}s",
            f"preemptions: {self.preemptions}",
            "",
            f"per-job allocation timeline (.=queued/idle  #=holding GPUs  "
            f"!=preempted, {self.horizon:.0f}s wide):",
        ]
        shown = 0
        for job_id, lane in sorted(self.jobs.items()):
            if shown >= max_jobs:
                lines.append(f"  ... {len(self.jobs) - shown} more jobs elided")
                break
            peak = max((h for _, h in lane.timeline), default=0)
            lines.append(f"  {job_id:>10} |{self._lane_cells(lane, width)}| peak {peak}")
            shown += 1
        return "\n".join(lines)

    def to_html(self, title: str = "Cluster utilization report") -> str:
        """Self-contained HTML (inline CSS, no external assets)."""
        esc = _html.escape
        rows = []
        for gtype in sorted(self.capacity):
            cap = self.capacity[gtype]
            busy = self.busy_gpu_seconds.get(gtype, 0.0)
            idle = self.idle_gpu_seconds.get(gtype, 0.0)
            denom = cap * self.horizon
            util = busy / denom if denom > 0 else 0.0
            rows.append(
                f"<tr><td>{esc(gtype)}</td><td>{cap}</td>"
                f"<td>{busy:.0f}</td><td>{idle:.0f}</td><td>{util:.1%}</td></tr>"
            )
        lanes = []
        horizon = max(self.horizon, 1e-9)
        for job_id, lane in sorted(self.jobs.items()):
            segments = []
            submit = lane.submit_time if lane.submit_time is not None else 0.0
            end = lane.done_time if lane.done_time is not None else self.horizon
            segments.append(
                f'<div class="queued" style="left:{submit / horizon * 100:.2f}%;'
                f"width:{max(end - submit, 0) / horizon * 100:.2f}%\"></div>"
            )
            prev_t, prev_held = submit, 0
            for t, held in lane.timeline + [(end, 0)]:
                if prev_held > 0:
                    segments.append(
                        f'<div class="alloc" style="left:{prev_t / horizon * 100:.2f}%;'
                        f"width:{max(t - prev_t, 0) / horizon * 100:.2f}%\" "
                        f'title="{prev_held} GPUs"></div>'
                    )
                prev_t, prev_held = t, held
            for t in lane.preempt_times:
                segments.append(
                    f'<div class="preempt" style="left:{t / horizon * 100:.2f}%" '
                    f'title="preempted at {t:.0f}s"></div>'
                )
            delay = lane.queueing_delay
            delay_txt = f"{delay:.0f}s queued" if delay is not None else "never granted"
            lanes.append(
                f'<div class="lane"><span class="job">{esc(job_id)}</span>'
                f'<div class="track">{"".join(segments)}</div>'
                f'<span class="note">{esc(delay_txt)}</span></div>'
            )
        return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{esc(title)}</title>
<style>
body {{ font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em; color: #222; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
td, th {{ border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: right; }}
th {{ background: #f3f3f3; }}
.lane {{ display: flex; align-items: center; margin: 2px 0; }}
.job {{ width: 9em; font-family: monospace; font-size: 0.85em; text-align: right;
        padding-right: 0.6em; }}
.track {{ position: relative; flex: 1; height: 14px; background: #f7f7f7;
          border: 1px solid #ddd; }}
.queued {{ position: absolute; top: 5px; height: 4px; background: #cfd8dc; }}
.alloc {{ position: absolute; top: 1px; height: 12px; background: #4caf50; }}
.preempt {{ position: absolute; top: 0; height: 14px; width: 2px; background: #e53935; }}
.note {{ width: 9em; font-size: 0.8em; color: #777; padding-left: 0.6em; }}
.kpis span {{ display: inline-block; margin-right: 2em; }}
.kpis b {{ font-size: 1.3em; }}
</style></head><body>
<h1>{esc(title)}</h1>
<div class="kpis">
<span><b>{self.horizon:.0f}s</b> horizon</span>
<span><b>{len(self.jobs)}</b> jobs</span>
<span><b>{self.total_idle_gpu_seconds:.0f}</b> idle GPU-seconds</span>
<span><b>{self.utilization:.1%}</b> utilization</span>
<span><b>{self.fragmentation:.1%}</b> fragmentation</span>
<span><b>{self.mean_queueing_delay:.0f}s</b> mean queueing delay</span>
</div>
<h2>Per-GPU-type utilization</h2>
<table><tr><th>type</th><th>capacity</th><th>busy GPU-s</th><th>idle GPU-s</th>
<th>utilization</th></tr>
{''.join(rows)}
</table>
<h2>Per-job allocation timeline</h2>
{''.join(lanes)}
</body></html>
"""


def load_events_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read an event stream saved as JSON lines (tolerates a trailing
    truncated line, mirroring :meth:`SpanTracer.load`)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return events


def save_events_jsonl(events: Iterable[Any], path: str) -> int:
    """Write an event stream (Event objects or dicts) as JSON lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            if hasattr(event, "kind") and hasattr(event, "time"):
                row = {"time": event.time, "kind": event.kind, "payload": dict(event.payload)}
            else:
                row = dict(event)
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count
