"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Named instruments with label support, mirroring the Prometheus data model
the production dashboards consume.  Design constraints:

- **near-zero cost when disabled** — :data:`NULL_REGISTRY` hands out
  shared no-op instruments, so instrumented call sites never branch on an
  enabled flag themselves;
- **snapshot/delta queries** — benchmarks take a snapshot before a phase
  and diff after it, isolating that phase's counts;
- **text exposition** — :meth:`MetricsRegistry.to_prometheus_text` dumps
  the familiar ``name{label="v"} value`` format for scraping or diffing.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavored; +Inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition-format spec.

    Backslash must be escaped first, then double-quote and newline —
    otherwise the backslashes introduced by the later replacements would
    be doubled again.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs) + "}"


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for decrements")
        self.value += amount


class Gauge:
    """A value that can go up and down.

    NaN/inf inputs to :meth:`set` are rejected without corrupting the
    stored value; they are tallied in :attr:`nonfinite` instead, so a
    single bad sample (a 0/0 throughput, an uninitialized timer) never
    poisons a dashboard series.
    """

    def __init__(self) -> None:
        self.value = 0.0
        self.nonfinite = 0

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            self.nonfinite += 1
            return
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (<=) semantics.

    A value exactly on a bucket boundary counts into that bucket; values
    above the last bound land in the implicit +Inf overflow bucket.
    NaN/inf observations are counted in :attr:`nonfinite` rather than
    recorded — a NaN would otherwise bisect into an arbitrary bucket and
    make ``sum`` permanently NaN.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0
        self.nonfinite = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            self.nonfinite += 1
            return
        idx = bisect.bisect_left(self.bounds, value)
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, Prometheus-style (last entry == count)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile estimate from the bucket counts.

        Standard Prometheus ``histogram_quantile`` semantics: find the
        bucket holding the q-th observation and interpolate linearly
        within its bounds (the first bucket interpolates from 0, so the
        estimator assumes non-negative observations).  Values in the +Inf
        overflow bucket clamp to the last finite bound.  Returns NaN for
        an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for idx, count in enumerate(self.counts):
            if cumulative + count >= target and count > 0:
                if idx >= len(self.bounds):
                    return self.bounds[-1]
                lower = 0.0 if idx == 0 else self.bounds[idx - 1]
                upper = self.bounds[idx]
                return lower + (upper - lower) * ((target - cumulative) / count)
            cumulative += count
        return self.bounds[-1]


class _NullInstrument:
    """Shared no-op stand-in for every instrument type when disabled.

    Mirrors the full public surface (and signatures) of
    :class:`Counter`, :class:`Gauge`, and :class:`Histogram` — asserted
    by the API-parity test — so disabled-mode call sites can never drift
    from the enabled ones.
    """

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0
    nonfinite = 0
    bounds: List[float] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> List[int]:
        return []

    def quantile(self, q: float) -> float:
        return float("nan")


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry stand-in returned when observability is disabled."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def delta(self, previous: Mapping[str, Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
        return self.snapshot()

    def to_state(self) -> List[Dict[str, Any]]:
        return []

    def merge_state(
        self,
        state: Iterable[Mapping[str, Any]],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        pass

    def to_prometheus_text(self) -> str:
        return ""

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Get-or-create instrument registry keyed by (name, labels)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self._kinds: Dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        existing = self._kinds.get(name)
        if existing is not None and existing != kind:
            raise ValueError(f"metric {name!r} already registered as a {existing}")
        self._kinds[name] = kind

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            self._claim(name, "counter")
            if key not in self._counters:
                self._counters[key] = Counter()
            return self._counters[key]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            self._claim(name, "gauge")
            if key not in self._gauges:
                self._gauges[key] = Gauge()
            return self._gauges[key]

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            self._claim(name, "histogram")
            if key not in self._histograms:
                self._histograms[key] = Histogram(buckets or DEFAULT_BUCKETS)
            return self._histograms[key]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._kinds.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data view of every instrument, keyed by ``name{labels}``."""
        with self._lock:
            return {
                "counters": {
                    n + _format_labels(k): c.value for (n, k), c in self._counters.items()
                },
                "gauges": {
                    n + _format_labels(k): g.value for (n, k), g in self._gauges.items()
                },
                "histograms": {
                    n + _format_labels(k): {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                        "nonfinite": h.nonfinite,
                    }
                    for (n, k), h in self._histograms.items()
                },
            }

    def delta(self, previous: Mapping[str, Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
        """What changed since a prior :meth:`snapshot` (gauges stay absolute)."""
        current = self.snapshot()
        prev_counters = previous.get("counters", {})
        prev_hists = previous.get("histograms", {})
        counters = {
            key: value - prev_counters.get(key, 0.0)
            for key, value in current["counters"].items()
        }
        histograms = {}
        for key, h in current["histograms"].items():
            prior = prev_hists.get(key)
            if prior is None:
                histograms[key] = h
            else:
                histograms[key] = {
                    "bounds": h["bounds"],
                    "counts": [a - b for a, b in zip(h["counts"], prior["counts"])],
                    "sum": h["sum"] - prior["sum"],
                    "count": h["count"] - prior["count"],
                    "nonfinite": h.get("nonfinite", 0) - prior.get("nonfinite", 0),
                }
        return {"counters": counters, "gauges": current["gauges"], "histograms": histograms}

    def to_state(self) -> List[Dict[str, Any]]:
        """Structured dump of every instrument: kind, name, labels, values.

        Unlike :meth:`snapshot` (whose keys are pre-formatted
        ``name{labels}`` strings), this keeps labels as a mapping so a
        receiving registry can re-key them — the cross-process shard
        format consumed by :meth:`merge_state`.
        """
        with self._lock:
            state: List[Dict[str, Any]] = []
            for (name, key), counter in sorted(self._counters.items()):
                state.append({"kind": "counter", "name": name,
                              "labels": dict(key), "value": counter.value})
            for (name, key), gauge in sorted(self._gauges.items()):
                state.append({"kind": "gauge", "name": name,
                              "labels": dict(key), "value": gauge.value,
                              "nonfinite": gauge.nonfinite})
            for (name, key), hist in sorted(self._histograms.items()):
                state.append({"kind": "histogram", "name": name,
                              "labels": dict(key), "bounds": list(hist.bounds),
                              "counts": list(hist.counts), "sum": hist.sum,
                              "count": hist.count, "nonfinite": hist.nonfinite})
            return state

    def merge_state(
        self,
        state: Iterable[Mapping[str, Any]],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a :meth:`to_state` dump into this registry.

        ``extra_labels`` (e.g. ``{"pid": "12345"}``) are added to every
        merged series, keeping a child process's counts distinguishable
        from the parent's own — the "label-prefixed" half of the
        cross-process observability contract.  Counters and histograms
        accumulate; gauges overwrite (last write wins, like Prometheus).
        """
        extra = dict(extra_labels or {})
        for row in state:
            labels = {**{str(k): str(v) for k, v in row.get("labels", {}).items()},
                      **extra}
            kind = row.get("kind")
            if kind == "counter":
                self.counter(row["name"], **labels).inc(float(row["value"]))
            elif kind == "gauge":
                gauge = self.gauge(row["name"], **labels)
                gauge.set(float(row["value"]))
                gauge.nonfinite += int(row.get("nonfinite", 0))
            elif kind == "histogram":
                hist = self.histogram(row["name"], buckets=row["bounds"], **labels)
                if list(hist.bounds) != [float(b) for b in row["bounds"]]:
                    raise ValueError(
                        f"histogram {row['name']!r} bucket bounds differ between "
                        f"merge source and registry"
                    )
                hist.counts = [a + b for a, b in zip(hist.counts, row["counts"])]
                hist.sum += float(row["sum"])
                hist.count += int(row["count"])
                hist.nonfinite += int(row.get("nonfinite", 0))
            else:
                raise ValueError(f"unknown instrument kind {kind!r} in merge_state")

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition (counters, gauges, histograms)."""
        lines: List[str] = []
        with self._lock:
            for (name, key), counter in sorted(self._counters.items()):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{_format_labels(key)} {_fmt(counter.value)}")
            for (name, key), gauge in sorted(self._gauges.items()):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name}{_format_labels(key)} {_fmt(gauge.value)}")
            for (name, key), hist in sorted(self._histograms.items()):
                lines.append(f"# TYPE {name} histogram")
                cumulative = hist.cumulative()
                for bound, count in zip(hist.bounds, cumulative):
                    le = _format_labels(key, [("le", _fmt(bound))])
                    lines.append(f"{name}_bucket{le} {count}")
                inf = _format_labels(key, [("le", "+Inf")])
                lines.append(f"{name}_bucket{inf} {cumulative[-1]}")
                lines.append(f"{name}_sum{_format_labels(key)} {_fmt(hist.sum)}")
                lines.append(f"{name}_count{_format_labels(key)} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


@contextmanager
def time_into(instrument: Any) -> Iterator[None]:
    """Time a ``with`` block into any instrument exposing ``observe``.

    Works identically against a real :class:`Histogram` and the shared
    null instrument, so call sites never branch on the enabled flag:

        with time_into(obs.metrics().histogram("plan_search_seconds")):
            companion.best_plans(available)

    The elapsed ``time.perf_counter`` seconds are observed even when the
    block raises, so error paths stay visible in latency distributions.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        instrument.observe(time.perf_counter() - start)
