"""Online profiler: windowed step timings, stragglers, and calibration.

The Eq. (1) scheduler runs on per-GPU-type capability numbers ``C_i``.
The paper does not trust a static table: jobs are profiled *online* and
the measured throughput feeds back into the performance model.  This
module is that feedback loop:

- **sliding-window aggregation** — per-worker (and per-EST) step timings
  are grouped into fixed-size windows; each closed window contributes one
  robust (median) sample per worker;
- **straggler detection** — a worker whose windowed step time exceeds the
  peer median by ``straggler_factor`` for ``straggler_windows``
  *consecutive* windows is flagged with a structured
  :class:`StragglerEvent`.  Timings are normalized by the static
  ``hw.timing`` expectation first, so a T4 running at T4 speed is not a
  straggler — only a worker slower than its own hardware's model is;
- **prediction error** — given a reference :class:`~repro.sched.perfmodel.Plan`,
  every closed window compares observed ``f_overload``/waste against the
  Eq. (1b)/(1c) predictions and exports the relative errors through the
  metrics registry;
- **capability calibration** — an EWMA over observed mini-batches/s per
  GPU type, available via :meth:`OnlineProfiler.calibrated_capability`
  for the intra-job scheduler and the cluster simulator to consume
  *instead of* the static table.

The profiler only observes: it never touches model state, RNG streams, or
the data pipeline, so attaching it cannot perturb bitwise determinism.
Acting on its calibration (re-planning) is a separate, opt-in step that
exercises the same EST-reassignment path as any other elastic event.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.obs.metrics import Histogram

#: finer-grained bounds than DEFAULT_BUCKETS so p50/p99 interpolation on
#: sub-second step times stays tight (geometric, 100 µs .. ~100 s)
PROFILER_BUCKETS: Tuple[float, ...] = tuple(
    round(1e-4 * (1.4142135623730951 ** i), 10) for i in range(40)
)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty window")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class StragglerEvent:
    """A worker confirmed slow for ``consecutive`` windows in a row."""

    window: int
    step: int
    worker_id: int
    gpu: str
    window_time: float
    peer_median: float
    ratio: float
    consecutive: int


@dataclass
class ProfilerConfig:
    """Tunables for windowing, straggler thresholds, and calibration."""

    #: observed steps per window (per worker)
    window_size: int = 8
    #: windowed (normalized) step time must exceed peer median by this
    straggler_factor: float = 1.5
    #: ... for this many consecutive windows before an event fires
    straggler_windows: int = 3
    #: EWMA smoothing for observed capability (higher = faster tracking)
    ewma_alpha: float = 0.25
    #: minimum concurrent workers for a peer comparison to be meaningful
    min_peers: int = 2

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.straggler_factor <= 1.0:
            raise ValueError("straggler_factor must exceed 1.0")
        if self.straggler_windows <= 0:
            raise ValueError("straggler_windows must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass
class _WorkerStats:
    """Per-worker accumulation state."""

    worker_id: int
    gpu: str
    num_ests: int = 1
    #: local window index this worker's ``closed`` list starts at (a
    #: worker first observed after some windows already finalized joins
    #: late instead of stalling the finalization frontier)
    offset: int = 0
    #: step times of the currently-filling window
    pending: List[float] = field(default_factory=list)
    #: (median step time, last step id) per closed window, by window index
    closed: List[Tuple[float, int]] = field(default_factory=list)
    #: consecutive windows over the straggler threshold
    consecutive: int = 0
    hist: Histogram = field(default_factory=lambda: Histogram(PROFILER_BUCKETS))
    observed_steps: int = 0


class OnlineProfiler:
    """Aggregate step timings into scheduling-grade signals.

    Feed it one :meth:`observe_worker_step` per worker per global step
    (the engine does this automatically when a profiler is attached), or
    replay a recorded span trace through :func:`profile_from_trace`.
    """

    def __init__(
        self,
        config: Optional[ProfilerConfig] = None,
        static_capability: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.config = config or ProfilerConfig()
        #: analytical prior ``C_i`` (lower-case type -> mini-batches/s);
        #: used to normalize straggler comparisons across GPU types and as
        #: the base table :meth:`calibrated_capability` refines
        self.static_capability: Dict[str, float] = {
            k.lower(): float(v) for k, v in (static_capability or {}).items()
        }
        self._workers: Dict[int, _WorkerStats] = {}
        self._est_hist: Dict[int, Histogram] = {}
        self.straggler_events: List[StragglerEvent] = []
        self.windows_closed = 0
        #: windows_closed value at the last worker reset; per-worker
        #: ``closed`` lists restart at each scale event, so the local
        #: index of the next window is ``windows_closed - _base_windows``
        self._base_windows = 0
        #: EWMA of observed mini-batches/s per GPU type
        self._ewma: Dict[str, float] = {}
        self._plan = None
        self._plan_capability: Optional[Dict[str, float]] = None
        #: (window, observed f, predicted f, observed waste, predicted waste)
        self.prediction_log: List[Tuple[int, float, float, float, float]] = []

    # ------------------------------------------------------------------
    # reference model (for prediction-error tracking)
    # ------------------------------------------------------------------
    def set_reference(self, plan, capability: Mapping[str, float]) -> None:
        """Install the plan + capability table the scheduler is acting on.

        Closed windows will then compare observed ``f_overload``/waste
        against the Eq. (1b)/(1c) predictions for this plan.
        """
        self._plan = plan
        self._plan_capability = {k.lower(): float(v) for k, v in capability.items()}

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def on_scale_event(self, gpus: Iterable[str]) -> None:
        """Reset per-worker windows after a reconfiguration.

        Worker ids and EST placements change across an elastic event, so
        in-flight windows would compare apples to oranges.  Calibration
        state and the straggler-event history survive.
        """
        del gpus  # future: pre-seed worker slots
        self._finalize_ready_windows(force=True)
        self._workers.clear()
        self._base_windows = self.windows_closed

    def observe_worker_step(
        self, step: int, worker_id: int, gpu: str, num_ests: int, step_time: float
    ) -> None:
        """One worker's simulated/measured seconds for one global step."""
        if step_time <= 0 or num_ests <= 0:
            return
        gpu = gpu.lower()
        stats = self._workers.get(worker_id)
        if stats is None or stats.gpu != gpu:
            stats = self._workers[worker_id] = _WorkerStats(
                worker_id=worker_id,
                gpu=gpu,
                offset=self.windows_closed - self._base_windows,
            )
        stats.num_ests = num_ests
        stats.observed_steps += 1
        stats.hist.observe(step_time)
        stats.pending.append(step_time)
        if len(stats.pending) >= self.config.window_size:
            stats.closed.append((_median(stats.pending), step))
            stats.pending = []
        self._finalize_ready_windows()

    def observe_est_step(self, step: int, vrank: int, local_time: float) -> None:
        """One EST's local-step (mini-batch) time; powers per-EST p50/p99."""
        del step
        if local_time <= 0:
            return
        hist = self._est_hist.get(vrank)
        if hist is None:
            hist = self._est_hist[vrank] = Histogram(PROFILER_BUCKETS)
        hist.observe(local_time)

    def flush(self) -> None:
        """Close partially-filled windows (end of run / before a report)."""
        self._finalize_ready_windows(force=True)

    # ------------------------------------------------------------------
    # window finalization: straggler check, calibration, prediction error
    # ------------------------------------------------------------------
    def _finalize_ready_windows(self, force: bool = False) -> None:
        if not self._workers:
            return
        if force:
            for stats in self._workers.values():
                if stats.pending:
                    stats.closed.append((_median(stats.pending), -1))
                    stats.pending = []
        while True:
            local = self.windows_closed - self._base_windows
            ready = min(
                stats.offset + len(stats.closed) for stats in self._workers.values()
            )
            if ready <= local:
                return
            self._finalize_window(local)
            self.windows_closed += 1

    def _finalize_window(self, local_index: int) -> None:
        cfg = self.config
        medians = {
            wid: stats.closed[local_index - stats.offset]
            for wid, stats in self._workers.items()
            if local_index >= stats.offset
        }
        if not medians:
            return
        step = max(s for _, s in medians.values())

        # calibration: observed C_i = local mini-batches / bottleneck time
        for wid, (median_time, _) in medians.items():
            stats = self._workers[wid]
            observed_rate = stats.num_ests / median_time
            prior = self._ewma.get(stats.gpu)
            if prior is None:
                self._ewma[stats.gpu] = observed_rate
            else:
                self._ewma[stats.gpu] = (
                    cfg.ewma_alpha * observed_rate + (1.0 - cfg.ewma_alpha) * prior
                )
            obs.metrics().gauge("profiler_capability_mbps", gpu=stats.gpu).set(
                self._ewma[stats.gpu]
            )

        # straggler check on model-normalized window times
        if len(medians) >= cfg.min_peers:
            normalized: Dict[int, float] = {}
            for wid, (median_time, _) in medians.items():
                stats = self._workers[wid]
                expected = self._expected_step_time(stats)
                normalized[wid] = median_time / expected if expected else median_time
            peer_median = _median(list(normalized.values()))
            for wid, norm in normalized.items():
                stats = self._workers[wid]
                ratio = norm / peer_median if peer_median > 0 else 1.0
                if ratio > cfg.straggler_factor:
                    stats.consecutive += 1
                else:
                    stats.consecutive = 0
                if stats.consecutive >= cfg.straggler_windows:
                    event = StragglerEvent(
                        window=self.windows_closed,
                        step=step,
                        worker_id=wid,
                        gpu=stats.gpu,
                        window_time=medians[wid][0],
                        peer_median=peer_median,
                        ratio=ratio,
                        consecutive=stats.consecutive,
                    )
                    self.straggler_events.append(event)
                    obs.instant(
                        "profiler.straggler",
                        cat="profiler",
                        worker=wid,
                        gpu=stats.gpu,
                        ratio=round(ratio, 4),
                        consecutive=stats.consecutive,
                    )
                    obs.metrics().counter(
                        "profiler_straggler_events_total", gpu=stats.gpu
                    ).inc()

        # prediction error vs the Eq. (1) model, when a reference is set
        if self._plan is not None and self._plan_capability:
            from repro.sched.perfmodel import observed_waste, overload_factor, waste

            f_observed = max(t for t, _ in medians.values())
            try:
                f_predicted = overload_factor(self._plan, self._plan_capability)
                w_predicted = waste(self._plan, self._plan_capability)
                w_observed = observed_waste(
                    self._plan, self._plan_capability, f_observed
                )
            except (KeyError, ValueError):
                return
            self.prediction_log.append(
                (self.windows_closed, f_observed, f_predicted, w_observed, w_predicted)
            )
            registry = obs.metrics()
            if f_predicted > 0:
                registry.gauge("profiler_foverload_rel_error").set(
                    (f_observed - f_predicted) / f_predicted
                )
            registry.gauge("profiler_foverload_observed").set(f_observed)
            registry.gauge("profiler_waste_observed").set(w_observed)
            registry.histogram("profiler_foverload_abs_error_seconds").observe(
                abs(f_observed - f_predicted)
            )

    def _expected_step_time(self, stats: _WorkerStats) -> Optional[float]:
        capability = self.static_capability.get(stats.gpu)
        if capability is None or capability <= 0:
            return None
        return stats.num_ests / capability

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    @property
    def observed_capability(self) -> Dict[str, float]:
        """EWMA-calibrated mini-batches/s per GPU type observed so far."""
        return dict(self._ewma)

    def calibrated_capability(
        self, static: Optional[Mapping[str, float]] = None
    ) -> Dict[str, float]:
        """The static table with observed types replaced by EWMA values."""
        base = {
            k.lower(): float(v)
            for k, v in (static if static is not None else self.static_capability).items()
        }
        base.update(self._ewma)
        return base

    def stragglers(self) -> List[int]:
        """Worker ids currently over the K-consecutive-window threshold."""
        return sorted(
            wid
            for wid, stats in self._workers.items()
            if stats.consecutive >= self.config.straggler_windows
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable profile: per-worker p50/p99, stragglers, deltas."""
        workers = {}
        for wid, stats in sorted(self._workers.items()):
            workers[str(wid)] = {
                "gpu": stats.gpu,
                "num_ests": stats.num_ests,
                "steps": stats.observed_steps,
                "p50_s": stats.hist.quantile(0.5),
                "p99_s": stats.hist.quantile(0.99),
                "mean_s": stats.hist.sum / stats.hist.count if stats.hist.count else 0.0,
                "consecutive_slow_windows": stats.consecutive,
            }
        ests = {
            str(vrank): {
                "steps": hist.count,
                "p50_s": hist.quantile(0.5),
                "p99_s": hist.quantile(0.99),
            }
            for vrank, hist in sorted(self._est_hist.items())
        }
        calibration = {
            "static": dict(self.static_capability),
            "observed": dict(self._ewma),
            "delta": {
                gtype: self._ewma[gtype] - self.static_capability[gtype]
                for gtype in self._ewma
                if gtype in self.static_capability
            },
        }
        out: Dict[str, Any] = {
            "windows": self.windows_closed,
            "window_size": self.config.window_size,
            "workers": workers,
            "ests": ests,
            "stragglers": [asdict(e) for e in self.straggler_events],
            "calibration": calibration,
        }
        if self.prediction_log:
            window, f_obs, f_pred, w_obs, w_pred = self.prediction_log[-1]
            out["prediction"] = {
                "window": window,
                "f_overload_observed": f_obs,
                "f_overload_predicted": f_pred,
                "waste_observed": w_obs,
                "waste_predicted": w_pred,
                "f_overload_rel_error": (f_obs - f_pred) / f_pred if f_pred else 0.0,
            }
        return out

    def describe(self) -> str:
        """Human-readable rendering of :meth:`summary`."""
        s = self.summary()
        lines = [
            f"profile over {s['windows']} windows "
            f"(window_size={s['window_size']}, workers={len(s['workers'])})"
        ]
        if s["workers"]:
            lines.append(
                f"{'worker':>8} {'gpu':>6} {'ests':>5} {'steps':>6} "
                f"{'p50(s)':>10} {'p99(s)':>10}"
            )
            for wid, w in s["workers"].items():
                lines.append(
                    f"{wid:>8} {w['gpu']:>6} {w['num_ests']:>5} {w['steps']:>6} "
                    f"{w['p50_s']:>10.6f} {w['p99_s']:>10.6f}"
                )
        cal = s["calibration"]
        if cal["observed"]:
            lines.append("calibrated capability (mini-batches/s):")
            for gtype in sorted(cal["observed"]):
                static = cal["static"].get(gtype)
                obs_v = cal["observed"][gtype]
                if static:
                    lines.append(
                        f"  {gtype:>6}: observed {obs_v:.3f}  static {static:.3f}  "
                        f"({(obs_v / static - 1.0) * 100.0:+.1f}%)"
                    )
                else:
                    lines.append(f"  {gtype:>6}: observed {obs_v:.3f}")
        if s["stragglers"]:
            lines.append(f"straggler events: {len(s['stragglers'])}")
            for e in s["stragglers"][-5:]:
                lines.append(
                    f"  window {e['window']}: worker {e['worker_id']} ({e['gpu']}) "
                    f"x{e['ratio']:.2f} slower than peers "
                    f"({e['consecutive']} consecutive windows)"
                )
        else:
            lines.append("straggler events: none")
        if "prediction" in s:
            p = s["prediction"]
            lines.append(
                f"perf-model check: f_overload observed {p['f_overload_observed']:.4f}s "
                f"vs predicted {p['f_overload_predicted']:.4f}s "
                f"({p['f_overload_rel_error'] * 100.0:+.1f}%)"
            )
        return "\n".join(lines)


def profile_from_trace(
    records: Iterable[Mapping[str, Any]],
    config: Optional[ProfilerConfig] = None,
    static_capability: Optional[Mapping[str, float]] = None,
) -> OnlineProfiler:
    """Rebuild an :class:`OnlineProfiler` from recorded span records.

    Consumes ``worker.local_step`` spans (as produced by the instrumented
    :class:`~repro.core.worker.EasyScaleWorker`).  Each span carries the
    modeled per-mini-batch seconds in ``args["est"]``; wall-clock spans
    without an estimate fall back to their measured ``t1 - t0``.  Local
    steps are treated as single-EST worker observations, so observed
    capability is ``1 / per-batch-time`` — exactly ``C_i``.
    """
    profiler = OnlineProfiler(config=config, static_capability=static_capability)
    step = 0
    for record in records:
        if record.get("kind") != "span" or record.get("name") != "worker.local_step":
            continue
        args = record.get("args", {})
        worker = args.get("worker")
        if worker is None:
            continue
        duration = args.get("est")
        if duration is None:
            duration = float(record.get("t1", 0.0)) - float(record.get("t0", 0.0))
        duration = float(duration)
        if duration <= 0:
            continue
        profiler.observe_worker_step(step, int(worker), str(args.get("gpu", "?")), 1, duration)
        vrank = args.get("vrank")
        if vrank is not None:
            profiler.observe_est_step(step, int(vrank), duration)
        step += 1
    profiler.flush()
    return profiler
