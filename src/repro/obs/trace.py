"""Span tracer: nestable, thread-aware timing spans with bounded storage.

The production EasyScale runtime streams per-phase timings (forward,
backward, context switch, bucket reduce) to AIMaster dashboards; this is
the local equivalent.  A :class:`SpanTracer` records *spans* — named,
nested intervals opened with ``tracer.span("forward")`` — and *instants*
(zero-duration markers, e.g. scale events).  Two clock modes exist:

- **wall** (default): spans measure real elapsed time via
  ``time.perf_counter``;
- **simulated**: a :class:`SimClock` the caller advances; a span opened
  with ``span("forward", est=3.0)`` advances the clock by its estimated
  duration on exit, so purely-modeled phases still produce a timeline.

Storage is a ring buffer (``collections.deque`` with ``maxlen``), so a
long training run keeps the most recent spans under a fixed memory bound.
Finished records export to Chrome ``trace_event`` JSON (loadable in
``chrome://tracing`` / Perfetto) or to a plain-text flamegraph-style
summary aggregated by span path.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

#: JSONL schema version for saved traces.
TRACE_FORMAT_VERSION = 1

#: File suffix of per-pid span shards written by child processes
#: (see :func:`repro.obs.flush_shard` / :func:`repro.obs.collect_shards`).
SHARD_SPAN_SUFFIX = ".spans.jsonl"

#: Synthetic Chrome-trace thread-id bases for derived lanes.  Real thread
#: ids are masked to 16 bits and simulator tracks start at 0x10000, so
#: these ranges never collide with either.
EST_LANE_BASE = 0x20000
WORKER_LANE_BASE = 0x30000


def shard_span_path(shard_dir: str, pid: int) -> str:
    return f"{shard_dir}/shard-{pid}{SHARD_SPAN_SUFFIX}"


def append_shard_records(path: str, records: Iterable[Dict[str, Any]],
                         pid: Optional[int] = None) -> int:
    """Append span records to a per-process shard file (JSONL).

    Each record is stamped with ``pid`` so the merged trace keeps one
    process lane per pool worker.  Returns the number of lines written.
    """
    written = 0
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            if pid is not None:
                record = dict(record, pid=pid)
            fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            written += 1
    return written


def load_shard_records(path: str) -> List[Dict[str, Any]]:
    """Read a span-shard JSONL file, skipping a truncated trailing line.

    A pool child killed mid-write (terminate on ``close()``) may leave a
    partial last line; everything before it is still good data.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    last_content = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as err:
            if lineno == last_content:
                continue
            raise ValueError(f"{path}:{lineno + 1}: malformed shard line: {err}") from err
        if isinstance(payload, dict) and payload.get("kind") in ("span", "instant"):
            records.append(payload)
    return records


class SimClock:
    """A manually-advanced clock for simulated-time tracing."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt {dt}")
        self._now += dt
        return self._now

    def set(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"clock cannot move backwards ({t} < {self._now})")
        self._now = float(t)


class _SpanCtx:
    """One open span; records itself into the tracer on exit.

    Exception-safe: the span is recorded (flagged ``error=True``) and the
    per-thread stack unwound even when the body raises.
    """

    __slots__ = ("_tracer", "name", "cat", "est", "args", "_t0", "_path", "_tid")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        cat: Optional[str],
        est: Optional[float],
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.est = est
        self.args = args
        self._t0 = 0.0
        self._path = ""
        self._tid = 0

    def set(self, **attrs: Any) -> "_SpanCtx":
        """Attach extra attributes to the span while it is open."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_SpanCtx":
        stack = self._tracer._stack()
        stack.append(self.name)
        self._path = ";".join(stack)
        self._t0 = self._tracer.now()
        self._tid = self._tracer._tid()
        self._tracer._open_add(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if self.est is not None and tracer.sim_clock is not None:
            tracer.sim_clock.advance(self.est)
        t1 = tracer.now()
        if not tracer._open_remove(self):
            # already flushed by close() — don't record it twice
            return False
        stack = tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        args = self.args
        if self.est is not None:
            args = dict(args, est=self.est)
        if exc_type is not None:
            args = dict(args, error=exc_type.__name__)
        tracer._record(
            {
                "kind": "span",
                "name": self.name,
                "cat": self.cat or "default",
                "path": self._path,
                "t0": self._t0,
                "t1": t1,
                "tid": tracer._tid(),
                "depth": self._path.count(";"),
                "args": args,
            }
        )
        return False


class SpanTracer:
    """Thread-aware span recorder with a bounded ring buffer."""

    def __init__(
        self,
        clock: Union[str, SimClock] = "wall",
        ring_size: int = 65536,
    ) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if isinstance(clock, SimClock):
            self.sim_clock: Optional[SimClock] = clock
        elif clock == "sim":
            self.sim_clock = SimClock()
        elif clock == "wall":
            self.sim_clock = None
        else:
            raise ValueError(f"unknown clock mode {clock!r}; use 'wall', 'sim', or a SimClock")
        self.ring_size = ring_size
        self._records: deque = deque(maxlen=ring_size)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._tracks: Dict[str, int] = {}
        #: spans currently open (entered but not yet exited), keyed by
        #: context identity; flushed as complete events by :meth:`close`
        self._open: Dict[int, _SpanCtx] = {}
        #: total records ever emitted (>= len(records) once the ring wraps)
        self.emitted = 0

    # ------------------------------------------------------------------
    # clock and per-thread state
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.sim_clock.now() if self.sim_clock is not None else time.perf_counter()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        return threading.get_ident() & 0xFFFF

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            self.emitted += 1

    def _open_add(self, ctx: "_SpanCtx") -> None:
        with self._lock:
            self._open[id(ctx)] = ctx

    def _open_remove(self, ctx: "_SpanCtx") -> bool:
        with self._lock:
            return self._open.pop(id(ctx), None) is not None

    def open_spans(self) -> List[Dict[str, Any]]:
        """Snapshot of spans currently entered but not yet exited.

        Deepest-first per thread (the order :meth:`close` would flush
        them); used by the flight recorder to capture what the process
        was inside at dump time.
        """
        with self._lock:
            open_ctxs = list(self._open.values())
        return [
            {
                "name": ctx.name,
                "cat": ctx.cat or "default",
                "path": ctx._path,
                "t0": ctx._t0,
                "tid": ctx._tid,
                "args": dict(ctx.args),
            }
            for ctx in sorted(open_ctxs, key=lambda c: -c._path.count(";"))
        ]

    def close(self) -> None:
        """Flush still-open spans as complete events (``unclosed=True``).

        A crash (or an export taken mid-run) would otherwise silently
        drop every span on the open stack — the Chrome export only emits
        complete ``"X"`` events, so an unexited span simply vanished.
        Closing records each one with ``t1 = now`` and an ``unclosed``
        marker, deepest first so parent/child durations stay nested, and
        clears the per-thread stacks.  The tracer remains usable.
        """
        now = self.now()
        with self._lock:
            open_ctxs = sorted(self._open.values(), key=lambda c: -c._path.count(";"))
            self._open.clear()
        for ctx in open_ctxs:
            self._record(
                {
                    "kind": "span",
                    "name": ctx.name,
                    "cat": ctx.cat or "default",
                    "path": ctx._path,
                    "t0": ctx._t0,
                    "t1": now,
                    "tid": ctx._tid,
                    "depth": ctx._path.count(";"),
                    "args": dict(ctx.args, unclosed=True),
                }
            )
        stack = getattr(self._local, "stack", None)
        if stack:
            del stack[:]

    # ------------------------------------------------------------------
    # recording API
    # ------------------------------------------------------------------
    def span(
        self, name: str, cat: Optional[str] = None, est: Optional[float] = None, **attrs: Any
    ) -> _SpanCtx:
        """Open a nested span: ``with tracer.span("forward", est=3.0): ...``"""
        return _SpanCtx(self, name, cat, est, attrs)

    def instant(
        self, name: str, ts: Optional[float] = None, cat: Optional[str] = None, **attrs: Any
    ) -> None:
        """A zero-duration marker, at ``ts`` if given else the current clock."""
        t = self.now() if ts is None else float(ts)
        self._record(
            {
                "kind": "instant",
                "name": name,
                "cat": cat or "default",
                "path": name,
                "t0": t,
                "t1": t,
                "tid": self._tid(),
                "depth": 0,
                "args": attrs,
            }
        )

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        cat: Optional[str] = None,
        track: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Record a completed span with explicit timestamps.

        Used by the cluster simulator, where event times are simulation
        time, not this process's clock.  ``track`` names a logical lane
        (e.g. a job id) mapped to a stable synthetic thread id so each
        lane renders as its own row in Perfetto.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts ({end} < {start})")
        self._record(
            {
                "kind": "span",
                "name": name,
                "cat": cat or "default",
                "path": name,
                "t0": float(start),
                "t1": float(end),
                "tid": self.track_id(track) if track is not None else self._tid(),
                "depth": 0,
                "args": attrs,
            }
        )

    def track_id(self, label: str) -> int:
        """Stable synthetic thread id for a named timeline lane."""
        with self._lock:
            if label not in self._tracks:
                # offset away from real thread ids' masked range
                self._tracks[label] = 0x10000 + len(self._tracks)
            return self._tracks[label]

    def ingest(self, records: Iterable[Dict[str, Any]]) -> int:
        """Fold externally produced records (e.g. child shards) into the ring.

        Records pass through unmodified — in particular a ``pid`` field
        stamped by :func:`append_shard_records` survives, keeping each
        source process on its own lane in the Chrome export.
        """
        count = 0
        with self._lock:
            for record in records:
                self._records.append(record)
                self.emitted += 1
                count += 1
        return count

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._tracks.clear()
            self.emitted = 0

    @property
    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # persistence (JSONL; tolerant of a truncated trailing line)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "meta",
                        "version": TRACE_FORMAT_VERSION,
                        "clock": "sim" if self.sim_clock is not None else "wall",
                    }
                )
                + "\n"
            )
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    @classmethod
    def load(cls, path: str) -> "SpanTracer":
        """Rebuild a tracer (records only) from a saved JSONL trace.

        A truncated final line — the crash-mid-write case — is skipped and
        flagged via the ``truncated`` attribute; a malformed line anywhere
        else raises with the file path and line number.
        """
        tracer = cls()
        tracer.truncated = False  # type: ignore[attr-defined]
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as err:
                if lineno - 1 == last_content:
                    tracer.truncated = True  # type: ignore[attr-defined]
                    continue
                raise ValueError(f"{path}:{lineno}: malformed trace line: {err}") from err
            if payload.get("kind") == "meta":
                if payload.get("clock") == "sim":
                    tracer.sim_clock = SimClock()
                continue
            tracer._record(payload)
        return tracer

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` format (one complete/instant event per record)."""
        with self._lock:
            lane_names = {tid: label for label, tid in self._tracks.items()}
        return records_to_chrome_trace(self.records, lane_names=lane_names)

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, default=str)

    def flame_summary(self, limit: Optional[int] = None) -> str:
        """Flamegraph-style text: per-path total/self time and call counts."""
        return flame_summary(self.records, limit=limit)


def _lane_for(record: Dict[str, Any]) -> Optional[Union[int, str]]:
    """Derive a stable display lane from a record's worker/EST identity.

    Spans carrying a ``vrank`` (EST-level work) land on one lane per EST;
    worker-level spans (``worker`` but no ``vrank``) on one lane per
    physical worker.  Everything else keeps its raw thread/track id —
    which is exactly the pre-fix behaviour that collapsed a whole serial
    run into a single row.
    """
    args = record.get("args", {})
    try:
        if "vrank" in args:
            return EST_LANE_BASE + int(args["vrank"])
        if "worker" in args:
            return WORKER_LANE_BASE + int(args["worker"])
        if "from_vrank" in args:
            return EST_LANE_BASE + int(args["from_vrank"])
    except (TypeError, ValueError):
        return None
    return None


def records_to_chrome_trace(
    records: Iterable[Dict[str, Any]],
    lane_names: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """Convert span/instant records to the Chrome ``trace_event`` dict.

    Every record's ``pid`` (0 = the parent process; pool children stamp
    their real pid via shard collection) becomes a Chrome *process* lane,
    and worker/EST identity becomes a named *thread* lane within it, so a
    merged multi-process trace renders as separate tracks in
    ``chrome://tracing`` / Perfetto instead of one collapsed row.
    ``process_name`` / ``thread_name`` metadata events label the lanes.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[int, None] = {}
    threads: Dict[Tuple[int, int], str] = {}
    for r in records:
        pid = int(r.get("pid", 0))
        args = r.get("args", {})
        tid = int(r.get("tid", 0))
        lane = _lane_for(r)
        if lane is not None:
            tid = lane
            label = (
                f"EST {args.get('vrank', args.get('from_vrank'))}"
                if lane >= EST_LANE_BASE and lane < WORKER_LANE_BASE
                else f"worker {args.get('worker')}"
            )
            threads.setdefault((pid, tid), label)
        elif lane_names and tid in lane_names:
            threads.setdefault((pid, tid), lane_names[tid])
        pids.setdefault(pid, None)
        base = {
            "name": r["name"],
            "cat": r.get("cat", "default"),
            "pid": pid,
            "tid": tid,
            "ts": r["t0"] * 1e6,  # trace_event timestamps are microseconds
            "args": args,
        }
        if r["kind"] == "instant":
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({**base, "ph": "X", "dur": max(r["t1"] - r["t0"], 0.0) * 1e6})
    meta: List[Dict[str, Any]] = []
    for index, pid in enumerate(sorted(pids)):
        name = "parent" if pid == 0 else f"pool worker pid {pid}"
        meta.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                     "args": {"name": name}})
        meta.append({"ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
                     "args": {"sort_index": index}})
    for (pid, tid), label in sorted(threads.items()):
        meta.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                     "args": {"name": label}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def flame_summary(records: Iterable[Dict[str, Any]], limit: Optional[int] = None) -> str:
    """Aggregate records by nesting path into a flamegraph-style table.

    ``self`` time is total minus the total of direct children, so a hot
    leaf stands out even when its parents dominate wall clock.
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for r in records:
        if r["kind"] != "span":
            continue
        path = r.get("path") or r["name"]
        totals[path] = totals.get(path, 0.0) + (r["t1"] - r["t0"])
        counts[path] = counts.get(path, 0) + 1
    child_time: Dict[str, float] = {}
    for path, total in totals.items():
        if ";" in path:
            parent = path.rsplit(";", 1)[0]
            child_time[parent] = child_time.get(parent, 0.0) + total
    lines = [f"{'total_s':>12} {'self_s':>12} {'calls':>8}  span path"]
    # depth-first path order: each subtree prints under its parent
    ordered = sorted(totals, key=lambda p: p.split(";"))
    if limit is not None:
        ordered = ordered[:limit]
    for path in ordered:
        total = totals[path]
        self_time = total - child_time.get(path, 0.0)
        depth = path.count(";")
        label = "  " * depth + path.rsplit(";", 1)[-1]
        lines.append(f"{total:>12.6f} {self_time:>12.6f} {counts[path]:>8}  {label}")
    return "\n".join(lines)
