"""Benchmark telemetry and regression gating: the ``BENCH_*.json`` trajectory.

Every performance claim this repository makes — scheduling-round cost,
pool-backend speedup, determinism-kernel overhead — is only worth the
commit it rode in on if the *next* commit can prove it did not regress.
This module is that proof chain:

- a **record**: one benchmark run summarized as median + p10/p90 over
  repeats, stamped with the machine fingerprint, git SHA, and UTC time,
  schema-versioned so old trajectories stay readable;
- a **trajectory**: an append-only ``BENCH_<area>.json`` file at the repo
  root (``BENCH_sched.json``, ``BENCH_parallel.json``,
  ``BENCH_determinism.json``) holding those records in commit order;
- a **comparator**: noise-aware classification of each metric as
  improved / flat / regressed against the previous trajectory entry with
  the same bench name and parameters.  "Noise-aware" means the relative
  threshold widens to the larger of the two entries' own p10–p90 spread,
  and widens again when either side has too few repeats to trust its
  variance;
- a **gate**: ``repro bench gate`` exits non-zero (5) when any metric
  regressed — the CI hook that turns the trajectory into enforcement.

The built-in benches (:data:`BENCHES`) are deliberately small — seconds,
not minutes — because a per-PR gate that nobody runs gates nothing.  The
full-scale figure regenerators under ``benchmarks/`` append to the same
trajectories through :func:`record_samples` when ``REPRO_BENCH_RECORD=1``.

Environment hooks:

- ``REPRO_BENCH_SMOKE=1`` — reduced bench sizes (same as ``--smoke``);
- ``REPRO_BENCH_DIR`` — trajectory directory override (default: repo root);
- ``REPRO_BENCH_SCALE=<float>`` — multiply every recorded timing sample,
  a test-only hook for proving the gate fails on an injected slowdown.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Version stamped into every record; bump on incompatible layout changes.
BENCH_SCHEMA_VERSION = 1

#: Default relative threshold for the improved/flat/regressed split.
DEFAULT_THRESHOLD = 0.30

#: Below this many repeats a sample's variance is untrusted and the
#: comparison tolerance is doubled.
MIN_TRUSTED_REPEATS = 3

#: Trajectory areas and their repo-root file names.
AREAS: Tuple[str, ...] = ("sched", "parallel", "determinism", "dessim")

STATUSES = ("improved", "flat", "regressed", "baseline")


def trajectory_path(area: str, directory: Optional[str] = None) -> str:
    """``<directory>/BENCH_<area>.json`` (directory defaults per :func:`bench_dir`)."""
    return os.path.join(directory or bench_dir(), f"BENCH_{area}.json")


def bench_dir() -> str:
    """Trajectory directory: ``REPRO_BENCH_DIR`` or the repository root."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return override
    # src/repro/obs/bench.py -> repo root is three levels above repro/
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )


# ---------------------------------------------------------------------------
# record construction
# ---------------------------------------------------------------------------


def summarize_samples(samples: Sequence[float], unit: str = "s",
                      direction: str = "lower") -> Dict[str, Any]:
    """Median + p10/p90 stats for one metric's repeat samples."""
    if not samples:
        raise ValueError("cannot summarize zero samples")
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
    values = sorted(float(v) for v in samples)
    if any(v != v or v in (float("inf"), float("-inf")) for v in values):
        raise ValueError(f"non-finite benchmark sample in {values}")

    def pct(q: float) -> float:
        if len(values) == 1:
            return values[0]
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (pos - lo)

    return {
        "median": pct(0.5),
        "p10": pct(0.10),
        "p90": pct(0.90),
        "repeats": len(values),
        "unit": unit,
        "direction": direction,
    }


def machine_fingerprint() -> Dict[str, Any]:
    """Enough about this host to explain cross-machine timing deltas."""
    return {
        "host": platform.node() or "unknown",
        "platform": platform.platform(),
        "python": f"{sys.version_info.major}.{sys.version_info.minor}.{sys.version_info.micro}",
        "cpu_count": os.cpu_count() or 1,
    }


def git_sha(cwd: Optional[str] = None) -> str:
    """Short commit SHA of the working tree, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd or bench_dir(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_record(
    area: str,
    bench: str,
    params: Mapping[str, Any],
    metric_samples: Mapping[str, Sequence[float]],
    directions: Optional[Mapping[str, str]] = None,
    units: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Build one schema-valid trajectory record from raw repeat samples.

    ``REPRO_BENCH_SCALE`` (test hook) multiplies every *lower-is-better*
    sample, so a synthetic regression exercises the gate end to end.
    """
    if not metric_samples:
        raise ValueError(f"bench {bench!r} produced no metrics")
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1") or 1)
    metrics = {}
    for name, samples in sorted(metric_samples.items()):
        direction = (directions or {}).get(name, "lower")
        unit = (units or {}).get(name, "s")
        if direction == "lower" and scale != 1.0:
            samples = [s * scale for s in samples]
        metrics[name] = summarize_samples(samples, unit=unit, direction=direction)
    record = {
        "schema": BENCH_SCHEMA_VERSION,
        "area": str(area),
        "bench": str(bench),
        "params": dict(params),
        "metrics": metrics,
        "machine": machine_fingerprint(),
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    validate_record(record)
    return record


def validate_record(payload: Any) -> Dict[str, Any]:
    """Raise ``ValueError`` unless ``payload`` is a schema-valid record."""
    if not isinstance(payload, dict):
        raise ValueError(f"bench record must be an object, got {type(payload).__name__}")
    for key in ("schema", "area", "bench", "params", "metrics", "machine",
                "git_sha", "timestamp"):
        if key not in payload:
            raise ValueError(f"bench record missing field {key!r}")
    if payload["schema"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench schema {payload['schema']!r} "
            f"(this build reads version {BENCH_SCHEMA_VERSION})"
        )
    if not isinstance(payload["params"], dict):
        raise ValueError("bench record 'params' must be an object")
    metrics = payload["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("bench record 'metrics' must be a non-empty object")
    for name, stats in metrics.items():
        if not isinstance(stats, dict):
            raise ValueError(f"metric {name!r} must be an object")
        for key in ("median", "p10", "p90", "repeats", "unit", "direction"):
            if key not in stats:
                raise ValueError(f"metric {name!r} missing field {key!r}")
        if stats["direction"] not in ("lower", "higher"):
            raise ValueError(
                f"metric {name!r} direction must be 'lower' or 'higher', "
                f"got {stats['direction']!r}"
            )
        if stats["repeats"] < 1:
            raise ValueError(f"metric {name!r} has repeats < 1")
        if not (stats["p10"] <= stats["median"] <= stats["p90"]):
            raise ValueError(
                f"metric {name!r} quantiles out of order: "
                f"p10={stats['p10']} median={stats['median']} p90={stats['p90']}"
            )
    return payload


# ---------------------------------------------------------------------------
# trajectory file
# ---------------------------------------------------------------------------


class Trajectory:
    """One ``BENCH_<area>.json`` file: an append-only list of records."""

    def __init__(self, area: str, path: Optional[str] = None) -> None:
        self.area = area
        self.path = path or trajectory_path(area)
        self.entries: List[Dict[str, Any]] = []

    @classmethod
    def load(cls, area: str, path: Optional[str] = None) -> "Trajectory":
        """Read the trajectory; a missing file is an empty trajectory."""
        traj = cls(area, path)
        if not os.path.exists(traj.path):
            return traj
        with open(traj.path, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as err:
                raise ValueError(f"{traj.path}: malformed trajectory JSON: {err}") from err
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{traj.path}: expected an object with an 'entries' list")
        if payload.get("schema") != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"{traj.path}: unsupported trajectory schema {payload.get('schema')!r}"
            )
        for i, entry in enumerate(payload["entries"]):
            try:
                validate_record(entry)
            except ValueError as err:
                raise ValueError(f"{traj.path}: entry {i}: {err}") from err
            traj.entries.append(entry)
        return traj

    def append(self, record: Mapping[str, Any]) -> None:
        entry = validate_record(dict(record))
        if entry["area"] != self.area:
            raise ValueError(
                f"record area {entry['area']!r} does not match trajectory "
                f"{self.area!r}"
            )
        self.entries.append(entry)

    def save(self) -> None:
        payload = {
            "schema": BENCH_SCHEMA_VERSION,
            "area": self.area,
            "entries": self.entries,
        }
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.entries)


def record_samples(
    area: str,
    bench: str,
    params: Mapping[str, Any],
    metric_samples: Mapping[str, Sequence[float]],
    directions: Optional[Mapping[str, str]] = None,
    directory: Optional[str] = None,
) -> Dict[str, Any]:
    """Build a record and append it to the area's trajectory file."""
    record = make_record(area, bench, params, metric_samples, directions=directions)
    traj = Trajectory.load(area, trajectory_path(area, directory))
    traj.append(record)
    traj.save()
    return record


# ---------------------------------------------------------------------------
# comparator
# ---------------------------------------------------------------------------


@dataclass
class ComparisonRow:
    """One metric's verdict against the previous trajectory entry."""

    area: str
    bench: str
    metric: str
    status: str  # improved | flat | regressed | baseline
    current: float
    previous: Optional[float] = None
    ratio: Optional[float] = None
    tolerance: Optional[float] = None
    unit: str = "s"

    def describe(self) -> str:
        if self.status == "baseline":
            return (f"{self.area}/{self.bench}.{self.metric:<14} "
                    f"{self.current:>12.6f}{self.unit}  baseline (no prior entry)")
        sign = {"improved": "-", "regressed": "!", "flat": "="}[self.status]
        return (f"{self.area}/{self.bench}.{self.metric:<14} "
                f"{self.previous:>12.6f}{self.unit} -> {self.current:>12.6f}{self.unit}  "
                f"x{self.ratio:.3f} (tol ±{self.tolerance:.0%}) {sign} {self.status}")


def _relative_spread(stats: Mapping[str, Any]) -> float:
    median = float(stats["median"])
    if median <= 0:
        return 0.0
    return min(1.0, max(0.0, (float(stats["p90"]) - float(stats["p10"])) / median))


def classify(
    previous: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_repeats: int = MIN_TRUSTED_REPEATS,
) -> Tuple[str, float, float]:
    """Classify one metric: returns ``(status, ratio, tolerance)``.

    The tolerance is the relative ``threshold`` widened to the larger
    p10–p90 spread of the two entries (noise floor), and doubled when
    either side has fewer than ``min_repeats`` repeats (variance cannot
    be trusted from one or two samples).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    tolerance = max(threshold, _relative_spread(previous), _relative_spread(current))
    if previous["repeats"] < min_repeats or current["repeats"] < min_repeats:
        tolerance = max(tolerance, 2 * threshold)
    prev = float(previous["median"])
    cur = float(current["median"])
    if prev <= 0 or cur <= 0:
        return "flat", 1.0, tolerance  # degenerate timings carry no signal
    ratio = cur / prev
    worse = ratio > 1 + tolerance
    better = ratio < 1 / (1 + tolerance)
    if current.get("direction", "lower") == "higher":
        worse, better = better, worse
    if worse:
        return "regressed", ratio, tolerance
    if better:
        return "improved", ratio, tolerance
    return "flat", ratio, tolerance


def _entry_key(entry: Mapping[str, Any]) -> Tuple[str, str]:
    return (
        str(entry["bench"]),
        json.dumps(entry["params"], sort_keys=True, default=str),
    )


def compare_trajectory(
    traj: Trajectory,
    threshold: float = DEFAULT_THRESHOLD,
    min_repeats: int = MIN_TRUSTED_REPEATS,
) -> List[ComparisonRow]:
    """Latest-vs-previous verdict for every (bench, params) series.

    Only entries with identical parameters are comparable — a smoke run
    never gates against a full-scale one.  A series with a single entry
    yields ``baseline`` rows.
    """
    series: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for entry in traj.entries:
        series.setdefault(_entry_key(entry), []).append(entry)
    rows: List[ComparisonRow] = []
    for key in sorted(series):
        history = series[key]
        current = history[-1]
        previous = history[-2] if len(history) >= 2 else None
        for metric in sorted(current["metrics"]):
            cur_stats = current["metrics"][metric]
            prev_stats = previous["metrics"].get(metric) if previous else None
            if prev_stats is None:
                rows.append(ComparisonRow(
                    area=traj.area, bench=current["bench"], metric=metric,
                    status="baseline", current=float(cur_stats["median"]),
                    unit=cur_stats.get("unit", "s"),
                ))
                continue
            status, ratio, tolerance = classify(
                prev_stats, cur_stats, threshold=threshold, min_repeats=min_repeats
            )
            rows.append(ComparisonRow(
                area=traj.area, bench=current["bench"], metric=metric,
                status=status, current=float(cur_stats["median"]),
                previous=float(prev_stats["median"]), ratio=ratio,
                tolerance=tolerance, unit=cur_stats.get("unit", "s"),
            ))
    return rows


# ---------------------------------------------------------------------------
# built-in benches
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchSpec:
    """A runnable built-in bench: one callable per (area, name)."""

    area: str
    name: str
    #: fn(smoke) -> (params, {metric: one_sample}); called once per repeat
    fn: Callable[[bool], Tuple[Dict[str, Any], Dict[str, float]]]
    description: str = ""
    #: per-metric direction overrides (default "lower"); e.g. a speedup
    #: ratio is higher-is-better and must not be scaled or inverted by
    #: the regression comparator
    directions: Optional[Dict[str, str]] = None


def _bench_sched_plan_round(smoke: bool) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """Cold vs warm companion plan-search cost for one scheduling round."""
    from repro.sched.companion import CompanionModule

    max_p = 5 if smoke else 10
    per_type = 5 if smoke else 10
    chunks = (1, 2, 4)
    types = ("v100", "p100", "t4")
    jobs = 4
    caps = [
        {"v100": 9.0 * (1 + 0.07 * i), "p100": 4.0 * (1 + 0.07 * i),
         "t4": 3.0 * (1 + 0.07 * i)}
        for i in range(jobs)
    ]
    owned = [
        {t: n for t, n in
         {"v100": (i % 3) + 1, "p100": (2 * i) % 4, "t4": (3 * i) % 3}.items() if n}
        for i in range(jobs)
    ]
    companions = [
        CompanionModule(max_p=max_p, capability=caps[i], max_gpus_per_type=per_type)
        for i in range(jobs)
    ]

    def one_round() -> None:
        for i, comp in enumerate(companions):
            comp.best_plans(owned[i], top_k=3)
            for gtype in types:
                for chunk in chunks:
                    if chunk <= per_type:
                        comp.best_plan_delta(owned[i], gtype, chunk)

    t0 = time.perf_counter()
    one_round()
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    one_round()
    warm = time.perf_counter() - t0
    params = {"jobs": jobs, "max_p": max_p, "per_type": per_type,
              "chunks": list(chunks), "smoke": smoke}
    return params, {"cold_s": cold, "warm_s": warm}


def _bench_parallel_pool_step(smoke: bool) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """Per-step wall cost of the serial loop vs the process pool."""
    from repro.core import (
        EasyScaleEngine,
        EasyScaleJobConfig,
        WorkerAssignment,
        determinism_from_label,
    )
    from repro.exec import ProcessPoolBackend, SerialBackend
    from repro.hw import gpu_type
    from repro.models import get_workload
    from repro.optim import SGD

    steps = 2 if smoke else 4
    workers = 2
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=workers, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )

    def optimizer(model):
        return SGD(model.named_parameters(), lr=0.05, momentum=0.9)

    def run(backend) -> float:
        engine = EasyScaleEngine(
            spec, dataset, config, optimizer,
            WorkerAssignment.balanced([gpu_type("V100")] * workers, workers),
            backend=backend,
        )
        engine.train_steps(1)  # warm-up: pool creation + replica builds
        t0 = time.perf_counter()
        engine.train_steps(steps)
        return (time.perf_counter() - t0) / steps

    serial_s = run(SerialBackend())
    with ProcessPoolBackend(max_workers=workers) as pool:
        pool_s = run(pool)
    params = {"workload": "resnet18", "workers": workers, "steps": steps,
              "batch_size": 8, "smoke": smoke}
    return params, {"serial_step_s": serial_s, "pool_step_s": pool_s}


def _bench_determinism_kernel(smoke: bool) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """Vendor-dialect vs hardware-agnostic (D2) GEMM kernel cost."""
    import numpy as np

    from repro.tensor import kernels
    from repro.tensor.kernels import D0_POLICY, D2_POLICY

    size = 96 if smoke else 160
    iters = 10
    rng = np.random.default_rng(0)
    a = rng.normal(size=(size, size)).astype(np.float32)
    b = rng.normal(size=(size, size)).astype(np.float32)

    def clock(policy) -> float:
        t0 = time.perf_counter()
        for _ in range(iters):
            kernels.matmul(a, b, dialect="p100", policy=policy)
        return time.perf_counter() - t0

    clock(D0_POLICY)  # warm-up both paths once
    clock(D2_POLICY)
    vendor = clock(D0_POLICY)
    agnostic = clock(D2_POLICY)
    params = {"size": size, "iters": iters, "dialect": "p100", "smoke": smoke}
    return params, {"vendor_s": vendor, "agnostic_s": agnostic}


def _bench_dessim_replay(smoke: bool) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """Month-shaped trace replay: heap core vs batched core wall cost.

    A scaled-down cousin of ``benchmarks/bench_dessim.py`` (which replays
    the full 3,000-GPU month): a diurnal trace on a production-mix pool,
    replayed under EasyScale-heter by the heap core and the batched core.
    The two event logs must stay byte-identical — the speedup is only a
    speedup if it is the *same* simulation.
    """
    from repro.hw import microbench_cluster, production_cluster
    from repro.sched import ClusterSimulator, EasyScalePolicy, diurnal_trace

    if smoke:
        jobs = diurnal_trace(num_jobs=60, seed=11, days=0.5)
        build = microbench_cluster
        gpus = 64
    else:
        jobs = diurnal_trace(num_jobs=240, seed=11, days=2)
        build = lambda: production_cluster(256)
        gpus = 256

    def replay(core: str) -> Tuple[float, str]:
        sim = ClusterSimulator(build(), jobs, EasyScalePolicy(True))
        runner = sim.run if core == "heap" else sim.run_batched
        t0 = time.perf_counter()
        result = runner()
        return time.perf_counter() - t0, result.events.fingerprint()

    heap_s, heap_fp = replay("heap")
    batched_s, batched_fp = replay("batched")
    if heap_fp != batched_fp:
        raise RuntimeError(
            f"batched core diverged from heap core: {batched_fp} != {heap_fp}"
        )
    params = {"jobs": len(jobs), "gpus": gpus, "shape": "diurnal", "smoke": smoke}
    return params, {
        "heap_s": heap_s,
        "batched_s": batched_s,
        "speedup_x": heap_s / batched_s if batched_s > 0 else 1.0,
    }


#: The built-in per-PR benches, keyed by area.
BENCHES: Dict[str, BenchSpec] = {
    "sched": BenchSpec(
        "sched", "plan_round", _bench_sched_plan_round,
        "cold vs warm companion plan-search cost for one scheduling round",
    ),
    "parallel": BenchSpec(
        "parallel", "pool_step", _bench_parallel_pool_step,
        "per-step wall cost, serial loop vs process pool",
    ),
    "determinism": BenchSpec(
        "determinism", "kernel_overhead", _bench_determinism_kernel,
        "vendor vs hardware-agnostic GEMM kernel cost",
    ),
    "dessim": BenchSpec(
        "dessim", "trace_replay", _bench_dessim_replay,
        "diurnal trace replay: heap core vs batched core wall cost",
        directions={"speedup_x": "higher"},
    ),
}


@dataclass
class BenchRunResult:
    """What one ``repro bench run`` produced for one area."""

    area: str
    record: Dict[str, Any]
    rows: List[ComparisonRow] = field(default_factory=list)


def run_benches(
    areas: Sequence[str],
    repeats: int = 5,
    smoke: Optional[bool] = None,
    directory: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[BenchRunResult]:
    """Run built-in benches, append records, and compare against history."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if smoke is None:
        smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    results: List[BenchRunResult] = []
    for area in areas:
        spec = BENCHES.get(area)
        if spec is None:
            raise ValueError(f"unknown bench area {area!r}; available: {sorted(BENCHES)}")
        samples: Dict[str, List[float]] = {}
        params: Dict[str, Any] = {}
        for _ in range(repeats):
            params, metrics = spec.fn(smoke)
            for name, value in metrics.items():
                samples.setdefault(name, []).append(value)
        record = record_samples(
            area, spec.name, params, samples,
            directions=spec.directions, directory=directory,
        )
        traj = Trajectory.load(area, trajectory_path(area, directory))
        rows = compare_trajectory(traj, threshold=threshold)
        results.append(BenchRunResult(area=area, record=record, rows=rows))
    return results


def gate_trajectories(
    areas: Sequence[str],
    directory: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[ComparisonRow], List[ComparisonRow]]:
    """All comparison rows plus the regressed subset, across areas.

    Raises ``FileNotFoundError`` when no trajectory file exists for any
    requested area — a gate with nothing to check must fail loudly, not
    pass silently.
    """
    rows: List[ComparisonRow] = []
    seen_any = False
    for area in areas:
        path = trajectory_path(area, directory)
        if not os.path.exists(path):
            continue
        seen_any = True
        rows.extend(compare_trajectory(Trajectory.load(area, path), threshold=threshold))
    if not seen_any:
        raise FileNotFoundError(
            f"no BENCH_*.json trajectory found for areas {list(areas)} in "
            f"{directory or bench_dir()} (run: repro bench run)"
        )
    regressed = [r for r in rows if r.status == "regressed"]
    return rows, regressed
