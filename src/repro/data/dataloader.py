"""Data loading with shared data workers and the queuing buffer (Fig. 7).

PyTorch launches ``num_workers`` CPU processes *per training worker*; naive
elasticity would launch ``num_workers x nEST`` processes when ESTs pack
onto few GPUs (the paper's example: 8 workers x 16 ESTs = 128 processes).
EasyScale instead shares one pool per EasyScale worker, because only one
EST computes at a time, so the consumption rate matches a single worker's.

Determinism contract: the augmented bytes of (EST ``i``, epoch ``e``, step
``t``) are a pure function of the job seed — *not* of which pool worker ran
the transform, how far ahead the pool prefetched, or how many physical
GPUs exist.  The pool realizes this by handing each mini-batch task an RNG
state drawn from the :class:`QueuingBuffer`; states for prefetched-but-
unconsumed batches are part of the checkpoint's extra state, so a resumed
job replays identical augmentation.

The pool also carries an explicit *timing model* (worker launch latency,
per-sample cost) so the benchmarks can report the paper's first-batch
latency effect (§5.1.2: sharing cut first-mini-batch time by 67.1% by
launching 4 instead of 32 workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.data.sampler import BatchPlan, DistributedSampler
from repro.data.transforms import Transform
from repro.utils.rng import derive_seed


BatchKey = Tuple[int, int, int]  # (est_rank, epoch, step)


def batch_rng_state(seed: int, est_rank: int, epoch: int, step: int) -> Dict[str, Any]:
    """Initial RNG state for one mini-batch's augmentation.

    Derived from (seed, est, epoch, step) only — the core of worker-sharing
    determinism.
    """
    bitgen = np.random.PCG64(derive_seed(seed, "databatch", est_rank, epoch, step))
    return bitgen.state


class QueuingBuffer:
    """Tracks RNG states of produced-but-unconsumed mini-batches.

    Data workers run ahead of training; any batch they have produced whose
    EST has not consumed it yet must have its state recorded so a
    checkpoint/restore replays it identically.  ``pending()`` is what the
    on-demand checkpoint embeds as extra state.
    """

    def __init__(self) -> None:
        self._states: Dict[BatchKey, Dict[str, Any]] = {}

    def commit(self, key: BatchKey, state: Dict[str, Any]) -> None:
        if key in self._states:
            raise KeyError(f"batch {key} already committed")
        self._states[key] = state

    def consume(self, key: BatchKey) -> Dict[str, Any]:
        try:
            return self._states.pop(key)
        except KeyError:
            raise KeyError(f"batch {key} was never produced") from None

    def pending(self) -> Dict[BatchKey, Dict[str, Any]]:
        return dict(self._states)

    def restore(self, states: Dict[BatchKey, Dict[str, Any]]) -> None:
        self._states = dict(states)

    def __len__(self) -> int:
        return len(self._states)


@dataclass
class DataWorker:
    """One simulated CPU data worker (Ri-j in Fig. 7)."""

    worker_id: int
    batches_processed: int = 0

    def process(
        self,
        dataset: Dataset,
        indices: np.ndarray,
        transform: Optional[Transform],
        rng_state: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize one mini-batch under the handed-in RNG state."""
        rng = np.random.Generator(np.random.PCG64())
        rng.bit_generator.state = rng_state
        xs: List[np.ndarray] = []
        ys: List[Any] = []
        for index in indices:
            x, y = dataset[int(index)]
            if transform is not None and isinstance(x, np.ndarray) and x.dtype != np.int64:
                x = transform(x, rng)
            xs.append(x)
            ys.append(y)
        self.batches_processed += 1
        x_batch = np.stack(xs)
        y_batch = np.asarray(ys)
        return x_batch, y_batch


@dataclass(frozen=True)
class LoaderTiming:
    """Cost model for the latency benchmarks (seconds)."""

    worker_launch_time: float = 0.5
    per_sample_time: float = 0.002

    def first_batch_latency(self, num_workers: int, batch_size: int) -> float:
        """Time to first batch: launch all workers, then parallel processing."""
        if num_workers <= 0:
            raise ValueError("need at least one data worker")
        launch = self.worker_launch_time * num_workers
        processing = self.per_sample_time * batch_size  # one batch, one worker
        return launch + processing

    def steady_batch_latency(self, num_workers: int, batch_size: int) -> float:
        return self.per_sample_time * batch_size / num_workers


class SharedDataLoader:
    """Elastic data loader: one worker pool shared by all local ESTs.

    ``load(est_rank, epoch, step)`` returns the mini-batch for that EST's
    global step.  Workers are assigned round-robin, the batch's RNG state
    comes from the queuing buffer (prefetch) or is derived on demand.
    """

    def __init__(
        self,
        dataset: Dataset,
        num_replicas: int,
        batch_size: int,
        seed: int,
        num_workers: int = 2,
        transform: Optional[Transform] = None,
        shuffle: bool = True,
        timing: LoaderTiming = LoaderTiming(),
    ) -> None:
        self.dataset = dataset
        self.num_replicas = num_replicas
        self.batch_size = batch_size
        self.seed = seed
        self.transform = transform
        self.shuffle = shuffle
        self.timing = timing
        self.workers = [DataWorker(i) for i in range(num_workers)]
        self._next_worker = 0
        self.queue = QueuingBuffer()
        self._plans: Dict[int, BatchPlan] = {}
        for rank in range(num_replicas):
            sampler = DistributedSampler(
                len(dataset), num_replicas, rank, shuffle=shuffle, seed=seed
            )
            self._plans[rank] = BatchPlan(sampler, batch_size)

    @property
    def steps_per_epoch(self) -> int:
        return self._plans[0].steps_per_epoch

    def set_epoch(self, epoch: int) -> None:
        for plan in self._plans.values():
            plan.sampler.set_epoch(epoch)

    def prefetch(self, est_rank: int, epoch: int, step: int) -> None:
        """Simulate a data worker running ahead: commit the batch state."""
        key = (est_rank, epoch, step)
        self.queue.commit(key, batch_rng_state(self.seed, est_rank, epoch, step))

    def load(self, est_rank: int, epoch: int, step: int) -> Tuple[np.ndarray, np.ndarray]:
        if not 0 <= est_rank < self.num_replicas:
            raise IndexError(f"est_rank {est_rank} out of range")
        plan = self._plans[est_rank]
        plan.sampler.set_epoch(epoch)
        indices = plan.batch(step)
        key = (est_rank, epoch, step)
        try:
            state = self.queue.consume(key)
        except KeyError:
            state = batch_rng_state(self.seed, est_rank, epoch, step)
        worker = self.workers[self._next_worker]
        self._next_worker = (self._next_worker + 1) % len(self.workers)
        return worker.process(self.dataset, indices, self.transform, state)

    # ------------------------------------------------------------------
    # checkpoint plumbing (extra state)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {"pending": self.queue.pending()}

    def import_state(self, state: Dict[str, Any]) -> None:
        self.queue.restore(state["pending"])

    # ------------------------------------------------------------------
    # timing model queries (benchmarks)
    # ------------------------------------------------------------------
    def first_batch_latency(self) -> float:
        return self.timing.first_batch_latency(len(self.workers), self.batch_size)
