"""Seeded synthetic datasets standing in for the paper's open datasets.

The paper trains on ImageNet / CIFAR10 / PASCAL / MovieLens / SQuAD
(Table 1).  Accuracy-*consistency* — the property under test — depends on
the data pipeline's structure (sample indexing, augmentation randomness,
label structure for per-class metrics), not on the images' semantics, so
each dataset here is a deterministic generator matched in shape:

- :class:`SyntheticImageDataset` — class-conditional Gaussian blob images;
  genuinely learnable, so the motivation experiments (Figs. 2–4) show real
  accuracy/loss dynamics and real per-class variance.
- :class:`SyntheticDetectionDataset` — images with an embedded bright patch
  whose position is the regression target (YOLO stand-in).
- :class:`SyntheticRatingsDataset` — user/item implicit-feedback pairs with
  a low-rank preference structure (MovieLens/NeuMF stand-in).
- :class:`SyntheticQADataset` — token sequences where the answer-class is a
  function of a planted keyword (SQuAD/Bert stand-in).

Every sample is a pure function of ``(seed, index)``: datasets are *not*
materialized, so a 100k-sample "ImageNet-like" costs nothing until sampled,
and two workers fetching the same index always see identical bytes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.utils.rng import derive_seed


class Dataset:
    """Map-style dataset: ``len`` + ``__getitem__`` → (input, target)."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range [0, {len(self)})")
        return index


def _sample_rng(seed: int, index: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(derive_seed(seed, "sample", index)))


class SyntheticImageDataset(Dataset):
    """Class-conditional images: ``x = prototype[y] + noise``.

    Each class has a fixed random prototype pattern; samples are noisy
    instances.  ``noise_scale`` tunes task difficulty (higher = harder, so
    per-class accuracies spread out as in Fig. 3).
    """

    def __init__(
        self,
        n: int,
        num_classes: int = 10,
        shape: Tuple[int, int, int] = (3, 8, 8),
        seed: int = 0,
        noise_scale: float = 0.6,
    ) -> None:
        if n <= 0 or num_classes <= 0:
            raise ValueError("n and num_classes must be positive")
        self.n = n
        self.num_classes = num_classes
        self.shape = shape
        self.seed = seed
        self.noise_scale = noise_scale
        proto_rng = np.random.Generator(np.random.PCG64(derive_seed(seed, "prototypes")))
        self.prototypes = proto_rng.normal(0.0, 1.0, size=(num_classes, *shape)).astype(np.float32)
        # per-class difficulty multiplier: makes some classes intrinsically
        # harder, so per-class accuracy varies like the paper's CIFAR table
        self.class_noise = (
            noise_scale * (0.5 + proto_rng.random(num_classes)).astype(np.float32)
        )

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        index = self._check_index(index)
        rng = _sample_rng(self.seed, index)
        label = int(index % self.num_classes)
        noise = rng.normal(0.0, self.class_noise[label], size=self.shape).astype(np.float32)
        return self.prototypes[label] + noise, label


class SyntheticDetectionDataset(Dataset):
    """Images with one bright square; target = (cx, cy, size, class)."""

    def __init__(
        self,
        n: int,
        num_classes: int = 5,
        shape: Tuple[int, int, int] = (3, 16, 16),
        seed: int = 0,
    ) -> None:
        self.n = n
        self.num_classes = num_classes
        self.shape = shape
        self.seed = seed

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        index = self._check_index(index)
        rng = _sample_rng(self.seed, index)
        c, h, w = self.shape
        img = rng.normal(0.0, 0.3, size=self.shape).astype(np.float32)
        size = int(rng.integers(2, max(3, h // 3)))
        cy = int(rng.integers(size, h - size))
        cx = int(rng.integers(size, w - size))
        cls = int(rng.integers(0, self.num_classes))
        img[cls % c, cy - size // 2 : cy + size // 2 + 1, cx - size // 2 : cx + size // 2 + 1] += 2.0
        target = np.array([cx / w, cy / h, size / h, cls], dtype=np.float32)
        return img, target


class SyntheticRatingsDataset(Dataset):
    """Implicit-feedback (user, item, clicked) with low-rank structure."""

    def __init__(
        self,
        n: int,
        num_users: int = 100,
        num_items: int = 200,
        latent_dim: int = 4,
        seed: int = 0,
    ) -> None:
        self.n = n
        self.num_users = num_users
        self.num_items = num_items
        self.seed = seed
        factor_rng = np.random.Generator(np.random.PCG64(derive_seed(seed, "factors")))
        self.user_factors = factor_rng.normal(size=(num_users, latent_dim)).astype(np.float32)
        self.item_factors = factor_rng.normal(size=(num_items, latent_dim)).astype(np.float32)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> Tuple[np.ndarray, float]:
        index = self._check_index(index)
        rng = _sample_rng(self.seed, index)
        user = int(rng.integers(0, self.num_users))
        item = int(rng.integers(0, self.num_items))
        affinity = float(self.user_factors[user] @ self.item_factors[item])
        prob = 1.0 / (1.0 + np.exp(-affinity))
        label = float(rng.random() < prob)
        return np.array([user, item], dtype=np.int64), label


class SyntheticQADataset(Dataset):
    """Token sequences with a planted keyword deciding the answer class."""

    def __init__(
        self,
        n: int,
        vocab_size: int = 64,
        seq_len: int = 16,
        num_classes: int = 4,
        seed: int = 0,
    ) -> None:
        if num_classes >= vocab_size:
            raise ValueError("num_classes must be smaller than vocab_size")
        self.n = n
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.num_classes = num_classes
        self.seed = seed

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        index = self._check_index(index)
        rng = _sample_rng(self.seed, index)
        tokens = rng.integers(self.num_classes, self.vocab_size, size=self.seq_len)
        label = int(index % self.num_classes)
        position = int(rng.integers(0, self.seq_len))
        tokens[position] = label  # keyword token ids 0..num_classes-1
        return tokens.astype(np.int64), label


class Subset(Dataset):
    """A contiguous or arbitrary index view of another dataset.

    Used for train/held-out splits: the synthetic datasets are pure
    functions of (seed, index), so any disjoint index sets drawn from the
    *same* dataset share the class structure (prototypes) while containing
    different samples.
    """

    def __init__(self, dataset: Dataset, indices) -> None:
        self.dataset = dataset
        self.indices = list(indices)
        if not self.indices:
            raise ValueError("subset must not be empty")
        for i in self.indices:
            if not 0 <= i < len(dataset):
                raise IndexError(f"subset index {i} out of parent range")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        index = self._check_index(index)
        return self.dataset[self.indices[index]]


def train_eval_split(dataset: Dataset, train_n: int) -> Tuple["Subset", "Subset"]:
    """Split a dataset into a training prefix and a held-out suffix."""
    if not 0 < train_n < len(dataset):
        raise ValueError(f"train_n must be in (0, {len(dataset)}), got {train_n}")
    return (
        Subset(dataset, range(train_n)),
        Subset(dataset, range(train_n, len(dataset))),
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_BUILDERS: Dict[str, type] = {
    "cifar10-like": SyntheticImageDataset,
    "imagenet-like": SyntheticImageDataset,
    "pascal-like": SyntheticDetectionDataset,
    "movielens-like": SyntheticRatingsDataset,
    "squad-like": SyntheticQADataset,
}


def build_dataset(name: str, n: int, seed: int = 0, **kwargs) -> Dataset:
    """Build a named dataset; ``imagenet-like`` defaults to larger images."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(_BUILDERS)}")
    if name == "imagenet-like":
        kwargs.setdefault("shape", (3, 16, 16))
        kwargs.setdefault("num_classes", 10)
    return _BUILDERS[name](n, seed=seed, **kwargs)
