"""Distributed sampling keyed by *virtual* rank.

The sampler is where EasyScale's decoupling becomes concrete: samples are
sharded over the **number of logical workers (ESTs)**, never over physical
GPUs.  EST ``i`` of ``n`` receives the same index stream whether it runs on
its own V100 or time-slices a T4 with three siblings — so the mini-batch
contents (and therefore gradients) are independent of allocation.

Semantics mirror ``torch.utils.data.DistributedSampler``: a seeded
permutation per epoch, padded with wrapped-around indices so every rank
gets the same number of samples, then strided sharding.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.utils.rng import derive_seed


class DistributedSampler:
    """Per-rank deterministic index stream for one epoch."""

    def __init__(
        self,
        dataset_len: int,
        num_replicas: int,
        rank: int,
        shuffle: bool = True,
        seed: int = 0,
    ) -> None:
        if num_replicas <= 0:
            raise ValueError(f"num_replicas must be positive, got {num_replicas}")
        if not 0 <= rank < num_replicas:
            raise ValueError(f"rank {rank} out of range for {num_replicas} replicas")
        if dataset_len <= 0:
            raise ValueError("dataset_len must be positive")
        self.dataset_len = dataset_len
        self.num_replicas = num_replicas
        self.rank = rank
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0
        self.num_samples = -(-dataset_len // num_replicas)  # ceil
        self.total_size = self.num_samples * num_replicas

    def set_epoch(self, epoch: int) -> None:
        """Reseed the shuffle for a new epoch (same call as PyTorch DDP).

        The epoch is the *only* input (besides the fixed seed) to
        ``_global_order``, so a malformed value here silently changes
        every rank's index stream — validate instead of coercing.
        """
        if isinstance(epoch, bool) or not isinstance(epoch, (int, np.integer)):
            raise TypeError(
                f"epoch must be an integer, got {type(epoch).__name__}"
            )
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self.epoch = int(epoch)

    def _global_order(self) -> np.ndarray:
        if self.shuffle:
            rng = np.random.Generator(np.random.PCG64(derive_seed(self.seed, "epoch", self.epoch)))
            order = rng.permutation(self.dataset_len)
        else:
            order = np.arange(self.dataset_len)
        # pad by wrapping (cyclically, so it works even when the pad
        # exceeds the dataset size) so total is divisible by num_replicas
        if self.total_size > self.dataset_len:
            order = np.resize(order, self.total_size)
        return order

    def indices(self) -> np.ndarray:
        """This rank's index stream for the current epoch."""
        return self._global_order()[self.rank :: self.num_replicas]

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())

    def __len__(self) -> int:
        return self.num_samples


class BatchPlan:
    """The per-epoch mini-batch schedule of one virtual rank.

    ``batch(step)`` returns the sample indices of global step ``step`` for
    this rank.  All ranks have the same number of steps per epoch (drop_last
    semantics), so global steps line up across ESTs — the precondition for
    synchronized gradient aggregation.
    """

    def __init__(self, sampler: DistributedSampler, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.sampler = sampler
        self.batch_size = batch_size
        self._cache_epoch: int = -1
        self._cached: np.ndarray | None = None

    @property
    def steps_per_epoch(self) -> int:
        return self.sampler.num_samples // self.batch_size

    def batch(self, step: int) -> np.ndarray:
        if not 0 <= step < self.steps_per_epoch:
            raise IndexError(f"step {step} out of range [0, {self.steps_per_epoch})")
        if self._cache_epoch != self.sampler.epoch:
            self._cached = self.sampler.indices()
            self._cache_epoch = self.sampler.epoch
        assert self._cached is not None
        return self._cached[step * self.batch_size : (step + 1) * self.batch_size]

    def batches(self) -> List[np.ndarray]:
        return [self.batch(i) for i in range(self.steps_per_epoch)]
