"""Datasets, samplers, and elastic data loading."""

from repro.data.datasets import (
    Dataset,
    SyntheticDetectionDataset,
    SyntheticImageDataset,
    SyntheticQADataset,
    SyntheticRatingsDataset,
    Subset,
    build_dataset,
    train_eval_split,
)
from repro.data.sampler import BatchPlan, DistributedSampler
from repro.data.dataloader import (
    DataWorker,
    LoaderTiming,
    QueuingBuffer,
    SharedDataLoader,
    batch_rng_state,
)
from repro.data.transforms import (
    compose,
    default_image_augmentation,
    gaussian_noise,
    random_crop,
    random_horizontal_flip,
)

__all__ = [
    "Dataset",
    "SyntheticImageDataset",
    "SyntheticDetectionDataset",
    "SyntheticRatingsDataset",
    "SyntheticQADataset",
    "build_dataset",
    "Subset",
    "train_eval_split",
    "DistributedSampler",
    "BatchPlan",
    "SharedDataLoader",
    "DataWorker",
    "QueuingBuffer",
    "LoaderTiming",
    "batch_rng_state",
    "compose",
    "default_image_augmentation",
    "gaussian_noise",
    "random_crop",
    "random_horizontal_flip",
]
