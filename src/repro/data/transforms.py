"""Data augmentation transforms.

Each transform draws from an explicit ``numpy.random.Generator`` — the
"data worker RNG" of Fig. 7.  Which generator (at which state) processes
which mini-batch is exactly what the queuing buffer tracks; feeding the
same state reproduces the same augmented bytes no matter which physical
data worker runs the transform.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def random_horizontal_flip(p: float = 0.5) -> Transform:
    """Flip the width axis with probability ``p`` (consumes one draw always)."""

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        coin = rng.random()
        if coin < p:
            return np.ascontiguousarray(x[..., ::-1])
        return x

    return apply


def random_crop(padding: int = 1) -> Transform:
    """Pad then crop back at a random offset (CIFAR-style augmentation)."""

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        c, h, w = x.shape
        padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
        top = int(rng.integers(0, 2 * padding + 1))
        left = int(rng.integers(0, 2 * padding + 1))
        return np.ascontiguousarray(padded[:, top : top + h, left : left + w])

    return apply


def gaussian_noise(std: float = 0.05) -> Transform:
    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (x + rng.normal(0.0, std, size=x.shape)).astype(np.float32)

    return apply


def compose(transforms: Sequence[Transform]) -> Transform:
    """Apply transforms in order, threading the same generator through."""
    transform_list: List[Transform] = list(transforms)

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in transform_list:
            x = transform(x, rng)
        return x

    return apply


def default_image_augmentation() -> Transform:
    """The augmentation stack used by the image workloads in experiments."""
    return compose([random_crop(padding=1), random_horizontal_flip(0.5), gaussian_noise(0.02)])
