"""Workload registry: the eight Table-1 models with resource profiles.

Each :class:`WorkloadSpec` bundles everything the rest of the system needs
to treat a model as a schedulable workload:

- builder + paired synthetic dataset + a uniform ``forward_loss`` hook (so
  trainers are model-agnostic);
- a *realistic* resource profile — full-size parameter/activation memory
  and per-GPU-type throughput — used by the hardware memory model and the
  scheduler's performance model.  The mini models compute real gradients;
  the profile carries the production-scale footprint of the original
  networks so that memory/packing experiments (Fig. 10) and Eq. (1)
  scheduling reproduce the paper's regimes.

Throughput numbers are mini-batches/second by GPU type (the C_i of
Eq. 1b); ratios follow the paper's device classes (V100 > P100 > T4, with
transformer models relatively worse on T4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.data.datasets import Dataset, build_dataset
from repro.nn.loss import cross_entropy
from repro.nn.module import Module
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle

from repro.models.resnet import resnet18_mini, resnet50_mini
from repro.models.shufflenet import shufflenet_v2_mini
from repro.models.vgg import vgg19_mini
from repro.models.yolo import yolov3_mini
from repro.models.neumf import neumf_mini
from repro.models.transformer import bert_mini, electra_mini, swin_mini


def _image_loss(model: Module, x: np.ndarray, y: np.ndarray) -> Tensor:
    return cross_entropy(model(Tensor(x)), y.astype(np.int64))


def _token_loss(model: Module, x: np.ndarray, y: np.ndarray) -> Tensor:
    return cross_entropy(model(x), y.astype(np.int64))


def _task_loss(model: Module, x: np.ndarray, y: np.ndarray) -> Tensor:
    if isinstance(x, np.ndarray) and x.dtype == np.int64:
        return model.loss(model(x), y)
    return model.loss(model(Tensor(x)), y)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named training workload with its resource profile."""

    name: str
    builder: Callable[[RNGBundle], Module]
    dataset_name: str
    dataset_kwargs: Dict[str, object]
    batch_size: int
    forward_loss: Callable[[Module, np.ndarray, np.ndarray], Tensor]
    #: full-scale parameter memory (GB) of the original network
    params_gb: float
    #: full-scale activation memory per sample (GB)
    act_gb_per_sample: float
    #: mini-batches per second by GPU type (Eq. 1's C_i)
    throughput: Dict[str, float]
    #: whether the original relies on vendor-optimized conv kernels
    conv_heavy: bool

    def build_model(self, rng: RNGBundle) -> Module:
        return self.builder(rng)

    def build_dataset(self, n: int, seed: int = 0) -> Dataset:
        return build_dataset(self.dataset_name, n, seed=seed, **self.dataset_kwargs)

    def worker_memory_gb(
        self, batch_size: Optional[int] = None, micro_batches: int = 1
    ) -> float:
        """GPU memory of one full training worker (params+grads+optimizer+acts).

        With gradient accumulation only one micro-batch's activations are
        live at a time, so the activation term divides by ``micro_batches``.
        """
        if micro_batches <= 0:
            raise ValueError("micro_batches must be positive")
        bs = batch_size if batch_size is not None else self.batch_size
        return 3.0 * self.params_gb + self.act_gb_per_sample * bs / micro_batches


def _spec(
    name: str,
    builder,
    dataset: str,
    batch: int,
    loss,
    params_gb: float,
    act: float,
    v100: float,
    conv_heavy: bool,
    dataset_kwargs: Optional[Dict[str, object]] = None,
    p100_factor: float = 0.45,
    t4_factor: float = 0.33,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        builder=builder,
        dataset_name=dataset,
        dataset_kwargs=dataset_kwargs or {},
        batch_size=batch,
        forward_loss=loss,
        params_gb=params_gb,
        act_gb_per_sample=act,
        throughput={"v100": v100, "p100": v100 * p100_factor, "t4": v100 * t4_factor},
        conv_heavy=conv_heavy,
    )


#: Table 1 of the paper, one spec per workload.
WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "shufflenetv2", shufflenet_v2_mini, "imagenet-like", 512, _image_loss,
            params_gb=0.009, act=0.028, v100=6.0, conv_heavy=True,
        ),
        _spec(
            "resnet18", resnet18_mini, "cifar10-like", 128, _image_loss,
            params_gb=0.045, act=0.012, v100=11.0, conv_heavy=True,
        ),
        _spec(
            "resnet50", resnet50_mini, "imagenet-like", 32, _image_loss,
            params_gb=0.102, act=0.085, v100=9.0, conv_heavy=True,
        ),
        _spec(
            "vgg19", vgg19_mini, "imagenet-like", 32, _image_loss,
            params_gb=0.574, act=0.065, v100=5.5, conv_heavy=True,
        ),
        _spec(
            "yolov3", yolov3_mini, "pascal-like", 16, _task_loss,
            params_gb=0.248, act=0.110, v100=4.0, conv_heavy=True,
            dataset_kwargs={"num_classes": 5},
        ),
        _spec(
            "neumf", neumf_mini, "movielens-like", 256, _task_loss,
            params_gb=0.012, act=0.0004, v100=30.0, conv_heavy=False,
        ),
        _spec(
            "bert", bert_mini, "squad-like", 16, _token_loss,
            params_gb=0.440, act=0.140, v100=3.0, conv_heavy=False, t4_factor=0.28,
        ),
        _spec(
            "electra", electra_mini, "squad-like", 16, _token_loss,
            params_gb=0.055, act=0.070, v100=6.5, conv_heavy=False, t4_factor=0.28,
        ),
        _spec(
            "swintransformer", swin_mini, "imagenet-like", 32, _image_loss,
            params_gb=0.110, act=0.120, v100=3.5, conv_heavy=False, t4_factor=0.30,
        ),
    ]
}

#: The eight Table-1 names in paper order (resnet18 is extra: it powers the
#: motivation experiments of Figs. 2–3).
TABLE1 = [
    "shufflenetv2",
    "resnet50",
    "vgg19",
    "yolov3",
    "neumf",
    "bert",
    "electra",
    "swintransformer",
]


def get_workload(name: str) -> WorkloadSpec:
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; options: {sorted(WORKLOADS)}")
    return WORKLOADS[name]
