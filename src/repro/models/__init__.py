"""The eight Table-1 workload models (scaled down, architecturally faithful)."""

from repro.models.resnet import BasicBlock, Bottleneck, ResNet, resnet18_mini, resnet50_mini
from repro.models.shufflenet import ShuffleNetV2, channel_shuffle, shufflenet_v2_mini
from repro.models.vgg import VGG, vgg19_mini
from repro.models.yolo import YOLOv3Mini, yolov3_mini
from repro.models.neumf import NeuMF, neumf_mini
from repro.models.transformer import BertMini, ElectraMini, SwinMini, bert_mini, electra_mini, swin_mini
from repro.models.registry import TABLE1, WORKLOADS, WorkloadSpec, get_workload

__all__ = [
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet18_mini",
    "resnet50_mini",
    "ShuffleNetV2",
    "channel_shuffle",
    "shufflenet_v2_mini",
    "VGG",
    "vgg19_mini",
    "YOLOv3Mini",
    "yolov3_mini",
    "NeuMF",
    "neumf_mini",
    "BertMini",
    "ElectraMini",
    "SwinMini",
    "bert_mini",
    "electra_mini",
    "swin_mini",
    "WORKLOADS",
    "TABLE1",
    "WorkloadSpec",
    "get_workload",
]
