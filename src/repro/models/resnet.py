"""Scaled-down ResNet-18/50 (He et al.) for the image workloads.

Architecturally faithful — residual basic/bottleneck blocks, BN everywhere,
stride-2 downsampling with projection shortcuts — at widths/depths sized
for 8x8–16x16 synthetic images so pure-NumPy training is fast.  ResNet18
drives the motivation experiments (Figs. 2–3), ResNet50 the gamma study
(Fig. 4) and the consistency/packing micro-benchmarks (Figs. 9–10).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import nn
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class BasicBlock(nn.Module):
    """3x3 + 3x3 residual block (ResNet-18/34 style)."""

    expansion = 1

    def __init__(self, in_ch: int, out_ch: int, stride: int, rng: RNGBundle) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_ch, out_ch, 3, rng.spawn("c1"), stride=stride, padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(out_ch)
        self.conv2 = nn.Conv2d(out_ch, out_ch, 3, rng.spawn("c2"), padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.down_conv = nn.Conv2d(in_ch, out_ch, 1, rng.spawn("down"), stride=stride, bias=False)
            self.down_bn = nn.BatchNorm2d(out_ch)
        else:
            self.down_conv = None
            self.down_bn = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        if self.down_conv is not None:
            identity = self.down_bn(self.down_conv(x))
        return (out + identity).relu()


class Bottleneck(nn.Module):
    """1x1 reduce, 3x3, 1x1 expand residual block (ResNet-50 style)."""

    expansion = 4

    def __init__(self, in_ch: int, width: int, stride: int, rng: RNGBundle) -> None:
        super().__init__()
        out_ch = width * self.expansion
        self.conv1 = nn.Conv2d(in_ch, width, 1, rng.spawn("c1"), bias=False)
        self.bn1 = nn.BatchNorm2d(width)
        self.conv2 = nn.Conv2d(width, width, 3, rng.spawn("c2"), stride=stride, padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(width)
        self.conv3 = nn.Conv2d(width, out_ch, 1, rng.spawn("c3"), bias=False)
        self.bn3 = nn.BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.down_conv = nn.Conv2d(in_ch, out_ch, 1, rng.spawn("down"), stride=stride, bias=False)
            self.down_bn = nn.BatchNorm2d(out_ch)
        else:
            self.down_conv = None
            self.down_bn = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        if self.down_conv is not None:
            identity = self.down_bn(self.down_conv(x))
        return (out + identity).relu()


class ResNet(nn.Module):
    """Configurable mini ResNet over small synthetic images."""

    def __init__(
        self,
        block: type,
        layers: List[int],
        widths: List[int],
        num_classes: int,
        rng: RNGBundle,
        in_channels: int = 3,
    ) -> None:
        super().__init__()
        self.stem = nn.Conv2d(in_channels, widths[0], 3, rng.spawn("stem"), padding=1, bias=False)
        self.stem_bn = nn.BatchNorm2d(widths[0])
        stages = []
        in_ch = widths[0]
        for stage_idx, (count, width) in enumerate(zip(layers, widths)):
            blocks = []
            for block_idx in range(count):
                stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
                blocks.append(block(in_ch, width, stride, rng.spawn("stage", stage_idx, block_idx)))
                in_ch = width * block.expansion
            stages.append(nn.Sequential(*blocks))
        self.stages = nn.ModuleList(stages)
        self.fc = nn.Linear(in_ch, num_classes, rng.spawn("fc"))

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        for stage in self.stages:
            out = stage(out)
        pooled = ops.global_avg_pool(out)
        return self.fc(pooled)


def resnet18_mini(rng: RNGBundle, num_classes: int = 10) -> ResNet:
    return ResNet(BasicBlock, [2, 2], [8, 16], num_classes, rng)


def resnet50_mini(rng: RNGBundle, num_classes: int = 10) -> ResNet:
    return ResNet(Bottleneck, [2, 2], [4, 8], num_classes, rng)
