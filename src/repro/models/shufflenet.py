"""Scaled-down ShuffleNetV2 (Ma et al.).

Keeps the defining structure: channel split, a depthwise-separable branch,
concat, and channel shuffle — so grouped/depthwise convolutions (and their
vendor-kernel reliance, relevant to D2) are genuinely exercised.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


def channel_shuffle(x: Tensor, groups: int) -> Tensor:
    """Interleave channels across groups (the 'shuffle' in ShuffleNet)."""
    n, c, h, w = x.shape
    if c % groups:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    return (
        x.reshape(n, groups, c // groups, h, w)
        .transpose(0, 2, 1, 3, 4)
        .reshape(n, c, h, w)
    )


class ShuffleUnit(nn.Module):
    """Stride-1 ShuffleNetV2 unit: split → (identity | dw-sep conv) → concat → shuffle."""

    def __init__(self, channels: int, rng: RNGBundle) -> None:
        super().__init__()
        if channels % 2:
            raise ValueError("ShuffleUnit needs an even channel count")
        half = channels // 2
        self.pw1 = nn.Conv2d(half, half, 1, rng.spawn("pw1"), bias=False)
        self.bn1 = nn.BatchNorm2d(half)
        self.dw = nn.Conv2d(half, half, 3, rng.spawn("dw"), padding=1, groups=half, bias=False)
        self.bn2 = nn.BatchNorm2d(half)
        self.pw2 = nn.Conv2d(half, half, 1, rng.spawn("pw2"), bias=False)
        self.bn3 = nn.BatchNorm2d(half)

    def forward(self, x: Tensor) -> Tensor:
        left, right = ops.chunk(x, 2, axis=1)
        out = self.bn1(self.pw1(right)).relu()
        out = self.bn2(self.dw(out))
        out = self.bn3(self.pw2(out)).relu()
        merged = ops.concat([left, out], axis=1)
        return channel_shuffle(merged, 2)


class DownsampleUnit(nn.Module):
    """Stride-2 unit: both branches convolve and downsample, channels double."""

    def __init__(self, in_ch: int, out_ch: int, rng: RNGBundle) -> None:
        super().__init__()
        branch_ch = out_ch // 2
        self.left_dw = nn.Conv2d(in_ch, in_ch, 3, rng.spawn("ldw"), stride=2, padding=1, groups=in_ch, bias=False)
        self.left_bn1 = nn.BatchNorm2d(in_ch)
        self.left_pw = nn.Conv2d(in_ch, branch_ch, 1, rng.spawn("lpw"), bias=False)
        self.left_bn2 = nn.BatchNorm2d(branch_ch)
        self.right_pw1 = nn.Conv2d(in_ch, branch_ch, 1, rng.spawn("rpw1"), bias=False)
        self.right_bn1 = nn.BatchNorm2d(branch_ch)
        self.right_dw = nn.Conv2d(branch_ch, branch_ch, 3, rng.spawn("rdw"), stride=2, padding=1, groups=branch_ch, bias=False)
        self.right_bn2 = nn.BatchNorm2d(branch_ch)
        self.right_pw2 = nn.Conv2d(branch_ch, branch_ch, 1, rng.spawn("rpw2"), bias=False)
        self.right_bn3 = nn.BatchNorm2d(branch_ch)

    def forward(self, x: Tensor) -> Tensor:
        left = self.left_bn2(self.left_pw(self.left_bn1(self.left_dw(x)))).relu()
        right = self.right_bn1(self.right_pw1(x)).relu()
        right = self.right_bn2(self.right_dw(right))
        right = self.right_bn3(self.right_pw2(right)).relu()
        return channel_shuffle(ops.concat([left, right], axis=1), 2)


class ShuffleNetV2(nn.Module):
    def __init__(self, num_classes: int, rng: RNGBundle, in_channels: int = 3) -> None:
        super().__init__()
        self.stem = nn.Conv2d(in_channels, 8, 3, rng.spawn("stem"), padding=1, bias=False)
        self.stem_bn = nn.BatchNorm2d(8)
        self.stage1 = nn.Sequential(
            ShuffleUnit(8, rng.spawn("s1a")),
            ShuffleUnit(8, rng.spawn("s1b")),
        )
        self.down = DownsampleUnit(8, 16, rng.spawn("down"))
        self.stage2 = nn.Sequential(
            ShuffleUnit(16, rng.spawn("s2a")),
            ShuffleUnit(16, rng.spawn("s2b")),
        )
        self.fc = nn.Linear(16, num_classes, rng.spawn("fc"))

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        out = self.stage1(out)
        out = self.down(out)
        out = self.stage2(out)
        return self.fc(ops.global_avg_pool(out))


def shufflenet_v2_mini(rng: RNGBundle, num_classes: int = 10) -> ShuffleNetV2:
    return ShuffleNetV2(num_classes, rng)
