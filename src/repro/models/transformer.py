"""Transformer workloads: Bert-mini, Electra-mini, SwinTransformer-mini.

These are the paper's "first category" models (Fig. 12): GEMM/attention
dominated, no conv reliance, hence near-zero D2 overhead and automatic
eligibility for heterogeneous scheduling.  Swin keeps its defining
features — patch embedding and window-partitioned attention — at a scale
suitable for 16x16 synthetic images.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class BertMini(nn.Module):
    """Token + position embeddings, N encoder layers, [CLS]-style pooler."""

    def __init__(
        self,
        vocab_size: int,
        num_classes: int,
        rng: RNGBundle,
        dim: int = 16,
        depth: int = 2,
        num_heads: int = 2,
        max_len: int = 32,
    ) -> None:
        super().__init__()
        self.token_emb = nn.Embedding(vocab_size, dim, rng.spawn("tok"))
        self.pos_emb = nn.Embedding(max_len, dim, rng.spawn("pos"))
        self.layers = nn.ModuleList(
            [
                nn.TransformerEncoderLayer(dim, num_heads, 2.0, rng.spawn("layer", i), dropout=0.1)
                for i in range(depth)
            ]
        )
        self.norm = nn.LayerNorm(dim)
        self.head = nn.Linear(dim, num_classes, rng.spawn("head"))

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        _, seq = tokens.shape
        x = self.token_emb(tokens) + self.pos_emb(np.arange(seq))
        for layer in self.layers:
            x = layer(x)
        x = self.norm(x)
        pooled = x.mean(axis=1)  # mean pooling stands in for [CLS]
        return self.head(pooled)


class ElectraMini(BertMini):
    """Electra-style discriminator: same trunk, deeper+narrower default.

    (The pre-training objective differs in the original; for the systems
    experiments what matters is a second transformer with distinct
    compute/memory shape, matching Table 1's use.)
    """

    def __init__(self, vocab_size: int, num_classes: int, rng: RNGBundle) -> None:
        super().__init__(vocab_size, num_classes, rng, dim=12, depth=3, num_heads=2)


class SwinMini(nn.Module):
    """Swin-style hierarchical vision transformer on window-partitioned patches."""

    def __init__(
        self,
        num_classes: int,
        rng: RNGBundle,
        in_channels: int = 3,
        dim: int = 16,
        depth: int = 2,
        num_heads: int = 2,
        patch: int = 4,
        window: int = 2,
    ) -> None:
        super().__init__()
        self.patch = patch
        self.window = window
        self.dim = dim
        self.patch_embed = nn.Conv2d(in_channels, dim, patch, rng.spawn("patch"), stride=patch)
        self.layers = nn.ModuleList(
            [
                nn.TransformerEncoderLayer(dim, num_heads, 2.0, rng.spawn("layer", i), dropout=0.0)
                for i in range(depth)
            ]
        )
        self.norm = nn.LayerNorm(dim)
        self.head = nn.Linear(dim, num_classes, rng.spawn("head"))

    def _window_partition(self, x: Tensor) -> Tensor:
        """(N, C, H, W) → (N * windows, window*window, C) token groups."""
        n, c, h, w = x.shape
        ws = self.window
        if h % ws or w % ws:
            raise ValueError(f"feature map {h}x{w} not divisible by window {ws}")
        x = x.reshape(n, c, h // ws, ws, w // ws, ws)
        x = x.transpose(0, 2, 4, 3, 5, 1)  # (n, h/ws, w/ws, ws, ws, c)
        return x.reshape(n * (h // ws) * (w // ws), ws * ws, c)

    def forward(self, images: Tensor) -> Tensor:
        feat = self.patch_embed(images)  # (N, dim, H/p, W/p)
        tokens = self._window_partition(feat)
        for layer in self.layers:
            tokens = layer(tokens)
        tokens = self.norm(tokens)
        n = images.shape[0]
        pooled = tokens.mean(axis=1)  # (N*windows, dim)
        pooled = pooled.reshape(n, -1, self.dim).mean(axis=1)
        return self.head(pooled)


def bert_mini(rng: RNGBundle, vocab_size: int = 64, num_classes: int = 4) -> BertMini:
    return BertMini(vocab_size, num_classes, rng)


def electra_mini(rng: RNGBundle, vocab_size: int = 64, num_classes: int = 4) -> ElectraMini:
    return ElectraMini(vocab_size, num_classes, rng)


def swin_mini(rng: RNGBundle, num_classes: int = 10) -> SwinMini:
    return SwinMini(num_classes, rng)
