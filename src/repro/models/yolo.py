"""Scaled-down YOLOv3-style single-box detector.

A darknet-ish conv backbone with a joint head predicting box coordinates
(regressed with smooth-L1) and an object class (cross-entropy) for the
synthetic detection dataset.  Exercises the multi-task-loss code path and
adds another conv-heavy workload for the D2 overhead study.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.loss import cross_entropy, smooth_l1
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class ConvBlock(nn.Module):
    """Conv + BN + LeakyReLU-ish (plain ReLU here) darknet block."""

    def __init__(self, in_ch: int, out_ch: int, rng: RNGBundle, stride: int = 1) -> None:
        super().__init__()
        self.conv = nn.Conv2d(in_ch, out_ch, 3, rng, stride=stride, padding=1, bias=False)
        self.bn = nn.BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        return self.bn(self.conv(x)).relu()


class YOLOv3Mini(nn.Module):
    def __init__(self, num_classes: int, rng: RNGBundle, in_channels: int = 3) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.backbone = nn.Sequential(
            ConvBlock(in_channels, 8, rng.spawn("b0")),
            ConvBlock(8, 16, rng.spawn("b1"), stride=2),
            ConvBlock(16, 16, rng.spawn("b2")),
            ConvBlock(16, 32, rng.spawn("b3"), stride=2),
        )
        self.head_box = nn.Linear(32, 3, rng.spawn("box"))  # (cx, cy, size)
        self.head_cls = nn.Linear(32, num_classes, rng.spawn("cls"))

    def forward(self, x: Tensor) -> Tensor:
        feat = ops.global_avg_pool(self.backbone(x))
        box = self.head_box(feat).sigmoid()  # coordinates normalized to [0,1]
        cls = self.head_cls(feat)
        return ops.concat([box, cls], axis=1)

    def loss(self, output: Tensor, targets: np.ndarray) -> Tensor:
        """Joint box-regression + classification loss.

        ``targets`` rows are (cx, cy, size, class) as produced by
        :class:`repro.data.datasets.SyntheticDetectionDataset`.
        """
        targets = np.asarray(targets, dtype=np.float32)
        box_pred = output[:, :3]
        cls_pred = output[:, 3:]
        box_loss = smooth_l1(box_pred, targets[:, :3])
        cls_loss = cross_entropy(cls_pred, targets[:, 3].astype(np.int64))
        return box_loss + cls_loss


def yolov3_mini(rng: RNGBundle, num_classes: int = 5) -> YOLOv3Mini:
    return YOLOv3Mini(num_classes, rng)
