"""NeuMF (He et al., Neural Collaborative Filtering).

The recommendation workload of Table 1: a GMF branch (elementwise product
of user/item embeddings) fused with an MLP branch, trained with binary
cross-entropy on implicit feedback.  Embedding gradients go through the
scatter-add kernel, so this model exercises the atomic-vs-deterministic
kernel switch that D0 controls.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.loss import bce_with_logits
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class NeuMF(nn.Module):
    def __init__(
        self,
        num_users: int,
        num_items: int,
        rng: RNGBundle,
        gmf_dim: int = 8,
        mlp_dim: int = 8,
    ) -> None:
        super().__init__()
        self.user_gmf = nn.Embedding(num_users, gmf_dim, rng.spawn("ug"))
        self.item_gmf = nn.Embedding(num_items, gmf_dim, rng.spawn("ig"))
        self.user_mlp = nn.Embedding(num_users, mlp_dim, rng.spawn("um"))
        self.item_mlp = nn.Embedding(num_items, mlp_dim, rng.spawn("im"))
        self.fc1 = nn.Linear(2 * mlp_dim, mlp_dim, rng.spawn("fc1"))
        self.fc2 = nn.Linear(mlp_dim, mlp_dim // 2, rng.spawn("fc2"))
        self.out = nn.Linear(gmf_dim + mlp_dim // 2, 1, rng.spawn("out"))

    def forward(self, pairs: np.ndarray) -> Tensor:
        """``pairs`` is an int64 (batch, 2) array of (user, item) ids."""
        pairs = np.asarray(pairs, dtype=np.int64)
        users, items = pairs[:, 0], pairs[:, 1]
        gmf = self.user_gmf(users) * self.item_gmf(items)
        mlp_in = ops.concat([self.user_mlp(users), self.item_mlp(items)], axis=1)
        mlp = self.fc2(self.fc1(mlp_in).relu()).relu()
        fused = ops.concat([gmf, mlp], axis=1)
        return self.out(fused).reshape(-1)

    def loss(self, output: Tensor, targets: np.ndarray) -> Tensor:
        return bce_with_logits(output, np.asarray(targets, dtype=np.float32))


def neumf_mini(rng: RNGBundle, num_users: int = 100, num_items: int = 200) -> NeuMF:
    return NeuMF(num_users, num_items, rng)
