"""Scaled-down VGG-19 (Simonyan & Zisserman).

Plain stacked 3x3 convolutions with max-pooling and an MLP classifier —
the densest conv workload in the suite, which is why it shares the worst
D2 overhead with ResNet in Fig. 12.
"""

from __future__ import annotations

from repro import nn
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class VGG(nn.Module):
    def __init__(self, num_classes: int, rng: RNGBundle, in_channels: int = 3) -> None:
        super().__init__()
        cfg = [(8, 2), (16, 2)]  # (width, convs-per-stage) before each pool
        layers = []
        c_in = in_channels
        idx = 0
        for width, convs in cfg:
            for _ in range(convs):
                layers.append(nn.Conv2d(c_in, width, 3, rng.spawn("conv", idx), padding=1))
                layers.append(nn.BatchNorm2d(width))
                layers.append(nn.ReLU())
                c_in = width
                idx += 1
            layers.append(nn.MaxPool2d(2))
        self.features = nn.Sequential(*layers)
        self.final_width = c_in
        self.classifier_fc1 = nn.Linear(c_in, 32, rng.spawn("fc1"))
        self.drop = nn.Dropout(0.5)
        self.classifier_fc2 = nn.Linear(32, num_classes, rng.spawn("fc2"))

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = ops.global_avg_pool(out)
        out = self.classifier_fc1(out).relu()
        out = self.drop(out)
        return self.classifier_fc2(out)


def vgg19_mini(rng: RNGBundle, num_classes: int = 10) -> VGG:
    return VGG(num_classes, rng)
