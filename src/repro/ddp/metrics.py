"""Evaluation metrics: overall and per-class accuracy.

Per-class accuracy is central to the paper's motivation (Fig. 3): elastic
baselines show up to 17.3% per-class variance across resource scales even
when overall accuracy looks close.  Evaluation runs in ``no_grad`` /
``eval`` mode under a fixed execution context so it never perturbs
training state.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.data.datasets import Dataset
from repro.models.registry import WorkloadSpec
from repro.nn.module import Module
from repro.tensor.context import execution_context
from repro.tensor.kernels import D0_POLICY, KernelPolicy
from repro.tensor.tensor import Tensor, no_grad


def evaluate_classification(
    model: Module,
    dataset: Dataset,
    num_samples: Optional[int] = None,
    batch_size: int = 64,
    num_classes: Optional[int] = None,
    dialect: str = "v100",
    policy: KernelPolicy = D0_POLICY,
) -> Tuple[float, np.ndarray]:
    """Overall accuracy and per-class accuracy vector.

    Samples ``0..num_samples`` of the dataset are treated as the held-out
    set (the synthetic datasets are i.i.d. in the index, so any contiguous
    slice is a valid split as long as train/eval use disjoint datasets or
    seeds).
    """
    n = num_samples or len(dataset)
    n = min(n, len(dataset))
    was_training = model.training
    model.eval()
    correct_total = 0
    per_class_correct: Dict[int, int] = {}
    per_class_count: Dict[int, int] = {}
    try:
        with no_grad(), execution_context(dialect, policy):
            for start in range(0, n, batch_size):
                idx = range(start, min(start + batch_size, n))
                xs, ys = zip(*[dataset[i] for i in idx])
                x = np.stack(xs)
                y = np.asarray(ys, dtype=np.int64)
                if x.dtype == np.int64:
                    logits = model(x)
                else:
                    logits = model(Tensor(x))
                pred = np.argmax(logits.data, axis=1)
                correct = pred == y
                correct_total += int(correct.sum())
                for cls in np.unique(y):
                    mask = y == cls
                    per_class_correct[int(cls)] = per_class_correct.get(int(cls), 0) + int(
                        correct[mask].sum()
                    )
                    per_class_count[int(cls)] = per_class_count.get(int(cls), 0) + int(mask.sum())
    finally:
        model.train(was_training)
    classes = num_classes or (max(per_class_count) + 1)
    per_class = np.zeros(classes, dtype=np.float64)
    for cls in range(classes):
        count = per_class_count.get(cls, 0)
        per_class[cls] = per_class_correct.get(cls, 0) / count if count else 0.0
    return correct_total / n, per_class


def evaluate_workload(
    spec: WorkloadSpec, model: Module, dataset: Dataset, num_samples: int = 256
) -> float:
    """Task-appropriate scalar quality metric for any Table-1 workload."""
    with obs.span("eval.workload", cat="eval", workload=spec.name, samples=num_samples):
        if spec.name in ("neumf",):
            score = _binary_accuracy(model, dataset, num_samples)
        elif spec.name in ("yolov3",):
            score = _detection_class_accuracy(model, dataset, num_samples)
        else:
            score, _ = evaluate_classification(model, dataset, num_samples)
    if obs.is_enabled():
        obs.metrics().gauge("eval_accuracy", workload=spec.name).set(score)
    return score


def _binary_accuracy(model: Module, dataset: Dataset, n: int) -> float:
    n = min(n, len(dataset))
    was_training = model.training
    model.eval()
    try:
        with no_grad(), execution_context("v100", D0_POLICY):
            xs, ys = zip(*[dataset[i] for i in range(n)])
            x = np.stack(xs)
            y = np.asarray(ys, dtype=np.float32)
            logits = model(x)
            pred = (logits.data > 0).astype(np.float32)
            return float((pred == y).mean())
    finally:
        model.train(was_training)


def _detection_class_accuracy(model: Module, dataset: Dataset, n: int) -> float:
    n = min(n, len(dataset))
    was_training = model.training
    model.eval()
    try:
        with no_grad(), execution_context("v100", D0_POLICY):
            xs, ys = zip(*[dataset[i] for i in range(n)])
            x = np.stack(xs)
            y = np.stack(ys)
            out = model(Tensor(x))
            pred_cls = np.argmax(out.data[:, 3:], axis=1)
            return float((pred_cls == y[:, 3].astype(np.int64)).mean())
    finally:
        model.train(was_training)
