"""Simulated PyTorch DDP baseline (the bitwise reference for EasyScale)."""

from repro.ddp.ddp import DDPConfig, DDPTrainer, ddp_heter_config, ddp_homo_config, rank_rng
from repro.ddp.metrics import evaluate_classification, evaluate_workload

__all__ = [
    "DDPConfig",
    "DDPTrainer",
    "ddp_homo_config",
    "ddp_heter_config",
    "rank_rng",
    "evaluate_classification",
    "evaluate_workload",
]
