"""Simulated PyTorch DistributedDataParallel training.

One in-process trainer simulates ``world_size`` synchronized workers:

- each rank has its own RNG bundle (dropout masks), its own sampler shard,
  and its own augmentation stream — derived exactly like EasyScale derives
  EST streams, so "DDP with N GPUs" and "EasyScale with nEST = N" consume
  identical randomness and identical samples;
- gradients are bucketed (reverse-registration order, rebuilt by arrival
  order after the first mini-batch unless disabled) and reduced with a
  ring all-reduce whose float32 association depends on world size and
  bucket layout — faithful to NCCL;
- BatchNorm running stats are folded in rank order at global-step
  boundaries (see :func:`repro.nn.runtime.collect_bn_stats`).

Configurations used in the paper's experiments:

- **DDP-homo** — fixed seeds + deterministic kernels (D0 policy): the
  reference for homogeneous-consistency experiments (Fig. 9a);
- **DDP-heter** — additionally hardware-agnostic D2 kernels: the reference
  for heterogeneous experiments (Fig. 9b);
- **DDP default** — ``BASELINE_POLICY`` (autotune + atomics): stock
  PyTorch, reproducible only by accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.comm.allreduce import allreduce_mean
from repro.comm.bucketing import BucketAssignment, build_initial_buckets, rebuild_from_arrival
from repro.data.dataloader import SharedDataLoader
from repro.data.datasets import Dataset
from repro.data.transforms import Transform
from repro.models.registry import WorkloadSpec
from repro.nn.module import Module
from repro.nn.runtime import collect_bn_stats, use_rng
from repro.optim.optimizer import Optimizer
from repro.tensor.context import execution_context
from repro.tensor.kernels import D0_POLICY, D2_POLICY, KernelPolicy
from repro.utils.rng import RNGBundle, derive_seed


@dataclass
class DDPConfig:
    """Static configuration of a simulated DDP job."""

    world_size: int
    seed: int = 0
    policy: KernelPolicy = D0_POLICY
    #: device dialect per rank; a single entry is broadcast to all ranks
    dialects: Sequence[str] = ("v100",)
    allreduce_algorithm: str = "ring"
    bucket_capacity_elems: int = 2048
    #: PyTorch rebuilds buckets by gradient arrival order after the first
    #: mini-batch; D1 disables this when restoring a recorded mapping
    rebuild_buckets: bool = True
    batch_size: int = 8
    num_data_workers: int = 2
    #: gradient accumulation: each worker splits its batch into this many
    #: micro-batches, accumulating gradients in a fixed order before the
    #: all-reduce (activation memory drops by the same factor)
    micro_batches: int = 1

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.micro_batches <= 0:
            raise ValueError("micro_batches must be positive")
        if self.batch_size % self.micro_batches != 0:
            raise ValueError(
                f"batch_size {self.batch_size} not divisible into "
                f"{self.micro_batches} micro-batches"
            )
        if len(self.dialects) == 1:
            self.dialects = tuple(self.dialects) * self.world_size
        if len(self.dialects) != self.world_size:
            raise ValueError(
                f"got {len(self.dialects)} dialects for world size {self.world_size}"
            )


def rank_rng(seed: int, rank: int) -> RNGBundle:
    """The per-logical-worker RNG bundle (same derivation as EST streams)."""
    return RNGBundle(derive_seed(seed, "worker", rank))


def micro_slices(x: np.ndarray, y: np.ndarray, micro_batches: int):
    """Split a worker's batch into contiguous micro-batches, in order.

    The slicing (and hence the gradient-accumulation association) is a
    pure function of the batch and the micro count, so any two stacks
    configured identically accumulate identically — the prerequisite for
    gradient accumulation to coexist with the bitwise guarantee.
    """
    if micro_batches == 1:
        yield x, y
        return
    n = x.shape[0]
    if n % micro_batches != 0:
        raise ValueError(f"batch of {n} not divisible into {micro_batches} micro-batches")
    size = n // micro_batches
    for i in range(micro_batches):
        yield x[i * size : (i + 1) * size], y[i * size : (i + 1) * size]


class DDPTrainer:
    """Synchronized data-parallel training of one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        dataset: Dataset,
        config: DDPConfig,
        optimizer_factory: Callable[[Module], Optimizer],
        transform: Optional[Transform] = None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.model = spec.build_model(RNGBundle(derive_seed(config.seed, "model")))
        self.optimizer = optimizer_factory(self.model)
        self.loader = SharedDataLoader(
            dataset,
            num_replicas=config.world_size,
            batch_size=config.batch_size,
            seed=config.seed,
            num_workers=config.num_data_workers,
            transform=transform,
        )
        self._rank_rngs = [rank_rng(config.seed, r) for r in range(config.world_size)]
        self._named_params = dict(self.model.named_parameters())
        self._param_names_by_id = {id(p): n for n, p in self._named_params.items()}
        sizes = {n: p.data.size for n, p in self._named_params.items()}
        self._param_sizes = sizes
        self.buckets = build_initial_buckets(
            list(self._named_params), sizes, config.bucket_capacity_elems
        )
        self.global_step = 0
        #: steps executed since the trainer was (re)built — bucket rebuild
        #: happens after the first one, like a freshly-rendezvoused DDP
        self._steps_since_start = 0
        self.loss_history: List[List[float]] = []

    # ------------------------------------------------------------------
    # one synchronized global step
    # ------------------------------------------------------------------
    def step(self, epoch: int, step_in_epoch: int) -> List[float]:
        """Run one global step; returns the per-rank losses."""
        from repro.tensor.tensor import leaf_grad_hook

        config = self.config
        per_rank_grads: List[Dict[str, np.ndarray]] = []
        per_rank_bn: List[list] = []
        losses: List[float] = []
        arrival: List[str] = []

        def on_grad(tensor) -> None:
            name = self._param_names_by_id.get(id(tensor))
            if name is not None and name not in arrival:
                arrival.append(name)

        for rank in range(config.world_size):
            x, y = self.loader.load(rank, epoch, step_in_epoch)
            self.model.zero_grad()
            micro_losses = []
            with execution_context(config.dialects[rank], config.policy), use_rng(
                self._rank_rngs[rank]
            ), collect_bn_stats() as journal:
                for micro_x, micro_y in micro_slices(x, y, config.micro_batches):
                    loss = self.spec.forward_loss(self.model, micro_x, micro_y)
                    if rank == 0 and self._steps_since_start == 0:
                        with leaf_grad_hook(on_grad):
                            loss.backward()
                    else:
                        loss.backward()
                    micro_losses.append(loss.item())
            losses.append(float(np.mean(micro_losses)))
            scale = np.float32(1.0 / config.micro_batches)
            grads = {
                name: (param.grad * scale if config.micro_batches > 1 else param.grad.copy())
                for name, param in self._named_params.items()
                if param.grad is not None
            }
            per_rank_grads.append(grads)
            per_rank_bn.append(journal)

        self._synchronize(per_rank_grads)
        self._fold_bn(per_rank_bn)
        self.optimizer.step()
        self.model.zero_grad()

        if self._steps_since_start == 0 and config.rebuild_buckets:
            missing = [n for n in self._named_params if n not in arrival]
            self.buckets = rebuild_from_arrival(
                arrival + missing, self._param_sizes, config.bucket_capacity_elems
            )
        self._steps_since_start += 1
        self.global_step += 1
        self.loss_history.append(losses)
        return losses

    def _synchronize(self, per_rank_grads: List[Dict[str, np.ndarray]]) -> None:
        """Bucket-wise ring all-reduce, averaged gradients written back."""
        shapes = {n: p.data.shape for n, p in self._named_params.items()}
        for bucket_idx in range(len(self.buckets.buckets)):
            bucket_names = self.buckets.buckets[bucket_idx]
            present = [n for n in bucket_names if n in per_rank_grads[0]]
            if not present:
                continue
            sub = BucketAssignment([present])
            flats = [sub.flatten_bucket(0, grads) for grads in per_rank_grads]
            reduced = allreduce_mean(flats, self.config.allreduce_algorithm)
            for name, grad in sub.unflatten_bucket(0, reduced, shapes).items():
                self._named_params[name].grad = np.ascontiguousarray(grad)

    def _fold_bn(self, per_rank_journals: List[list]) -> None:
        """Fold BN batch stats into buffers in rank order (canonical)."""
        for journal in per_rank_journals:
            for layer, mean, var in journal:
                layer.fold_stats(mean, var)

    # ------------------------------------------------------------------
    # epoch loops
    # ------------------------------------------------------------------
    @property
    def steps_per_epoch(self) -> int:
        return self.loader.steps_per_epoch

    @property
    def epoch(self) -> int:
        return self.global_step // self.steps_per_epoch

    def train_steps(self, num_steps: int) -> List[float]:
        """Run ``num_steps`` global steps from the trainer's current
        position (progress persists across calls); returns the last rank's
        losses."""
        last_rank_losses = []
        for _ in range(num_steps):
            epoch_now = self.global_step // self.steps_per_epoch
            step_in_epoch = self.global_step % self.steps_per_epoch
            self.loader.set_epoch(epoch_now)
            losses = self.step(epoch_now, step_in_epoch)
            last_rank_losses.append(losses[-1])
        return last_rank_losses

    def train_epoch(self, epoch: Optional[int] = None) -> List[float]:
        """Train one full epoch from the current position.

        ``epoch``, if given, must match the trainer's own epoch counter —
        it exists to catch call-site drift, not to seek.
        """
        if epoch is not None and epoch != self.epoch:
            raise ValueError(
                f"trainer is at epoch {self.epoch}, cannot train epoch {epoch}"
            )
        if self.global_step % self.steps_per_epoch != 0:
            raise ValueError("train_epoch must start at an epoch boundary")
        return self.train_steps(self.steps_per_epoch)


def ddp_homo_config(world_size: int, seed: int = 0, **kwargs) -> DDPConfig:
    """Fixed seeds + deterministic kernels (reproducible on one GPU type)."""
    return DDPConfig(world_size=world_size, seed=seed, policy=D0_POLICY, **kwargs)


def ddp_heter_config(
    world_size: int, dialects: Sequence[str], seed: int = 0, **kwargs
) -> DDPConfig:
    """DDP-homo plus hardware-agnostic D2 kernels (heterogeneous reference)."""
    return DDPConfig(
        world_size=world_size, seed=seed, policy=D2_POLICY, dialects=tuple(dialects), **kwargs
    )
