"""NumPy-backed autograd tensor library with a device-dialect kernel registry."""

from repro.tensor.tensor import Tensor, no_grad, grad_enabled
from repro.tensor.context import ExecContext, current_context, execution_context
from repro.tensor.kernels import (
    BASELINE_POLICY,
    D0_POLICY,
    D2_POLICY,
    KernelPolicy,
    global_autotuner,
    register_matmul_variant,
    unregister_matmul_variant,
)

__all__ = [
    "Tensor",
    "no_grad",
    "grad_enabled",
    "ExecContext",
    "current_context",
    "execution_context",
    "BASELINE_POLICY",
    "D0_POLICY",
    "D2_POLICY",
    "KernelPolicy",
    "global_autotuner",
    "register_matmul_variant",
    "unregister_matmul_variant",
]
