"""Higher-level autograd operations: conv, pooling, softmax, embedding, ...

These build on :class:`repro.tensor.Tensor`.  Two routing decisions matter
for the paper's determinism story:

- ``conv2d`` lowers to im2col + the registry GEMM, so convolutions inherit
  the executing device's vendor dialect — this is why conv-heavy models pay
  the big D2 penalty in Fig. 12 (the agnostic GEMM replaces the vendor one).
- ``embedding`` backward dispatches through :func:`repro.tensor.kernels.scatter_add`,
  which is the "atomic vs deterministic kernel" switch D0 controls.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.tensor import kernels
from repro.tensor.context import current_context
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


# ---------------------------------------------------------------------------
# reductions over multiple axes
# ---------------------------------------------------------------------------


def sum_over(x: Tensor, axes: Union[int, Tuple[int, ...]], keepdims: bool = False) -> Tensor:
    """Sum over one or several axes (chained single-axis registry reductions)."""
    if isinstance(axes, int):
        axes = (axes,)
    out = x
    for axis in sorted(axes, reverse=True):
        out = out.sum(axis=axis, keepdims=keepdims)
    return out


def mean_over(x: Tensor, axes: Union[int, Tuple[int, ...]], keepdims: bool = False) -> Tensor:
    if isinstance(axes, int):
        axes = (axes,)
    count = 1
    for axis in axes:
        count *= x.shape[axis]
    return sum_over(x, axes, keepdims=keepdims) * (1.0 / count)


# ---------------------------------------------------------------------------
# softmax family
# ---------------------------------------------------------------------------


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax (max subtracted as a constant)."""
    shift = Tensor(np.max(x.data, axis=axis, keepdims=True))
    shifted = x - shift
    log_z = shifted.exp().sum(axis=axis if axis >= 0 else x.ndim + axis, keepdims=True).log()
    return shifted - log_z


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Pick ``x[i, indices[i]]`` for each row ``i`` (cross-entropy gather)."""
    indices = np.asarray(indices, dtype=np.int64)
    rows = np.arange(x.shape[0])
    out = x._make(x.data[rows, indices], (x,))

    def _backward() -> None:
        if x.requires_grad:
            grad = np.zeros_like(x.data)
            grad[rows, indices] = out.grad
            x._accumulate(grad)

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# shape ops
# ---------------------------------------------------------------------------


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    parents = tuple(tensors)
    out = tensors[0]._make(out_data, parents)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * out_data.ndim
                slicer[axis] = slice(int(start), int(end))
                tensor._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensors]
    return concat(expanded, axis=axis)


def chunk(x: Tensor, chunks: int, axis: int = 1) -> Tuple[Tensor, ...]:
    """Split into equal chunks along ``axis`` (ShuffleNet branch split)."""
    size = x.shape[axis]
    if size % chunks != 0:
        raise ValueError(f"axis of size {size} not divisible into {chunks} chunks")
    step = size // chunks
    parts = []
    for i in range(chunks):
        slicer = [slice(None)] * x.ndim
        slicer[axis] = slice(i * step, (i + 1) * step)
        parts.append(x[tuple(slicer)])
    return tuple(parts)


def pad2d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the last two (spatial) axes symmetrically."""
    if pad == 0:
        return x
    widths = [(0, 0)] * (x.ndim - 2) + [(pad, pad), (pad, pad)]
    out = x._make(np.pad(x.data, widths), (x,))

    def _backward() -> None:
        if x.requires_grad:
            slicer = [slice(None)] * (x.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)]
            x._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    lead = x.shape[:start_dim]
    rest = int(np.prod(x.shape[start_dim:]))
    return x.reshape(*lead, rest)


# ---------------------------------------------------------------------------
# im2col / conv2d
# ---------------------------------------------------------------------------


def _conv_geometry(h: int, w: int, kh: int, kw: int, stride: int, pad: int) -> Tuple[int, int]:
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv output would be empty: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride {stride}, pad {pad}"
        )
    return out_h, out_w


def _im2col_forward(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    n, c, h, w = x.shape
    out_h, out_w = _conv_geometry(h, w, kh, kw, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    sn, sc, sh, sw = xp.strides
    windows = as_strided(
        xp,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (n, c*kh*kw, out_h*out_w)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), (out_h, out_w)


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    n, c, h, w = x_shape
    grad_padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=np.float32)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for ki in range(kh):
        for kj in range(kw):
            grad_padded[
                :, :, ki : ki + out_h * stride : stride, kj : kj + out_w * stride : stride
            ] += cols6[:, :, ki, kj]
    if pad:
        return grad_padded[:, :, pad:-pad, pad:-pad]
    return grad_padded


def im2col(x: Tensor, kh: int, kw: int, stride: int = 1, pad: int = 0) -> Tuple[Tensor, Tuple[int, int]]:
    """Autograd im2col: windows flattened for GEMM-based convolution."""
    cols_data, (out_h, out_w) = _im2col_forward(x.data, kh, kw, stride, pad)
    out = x._make(cols_data, (x,))

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(_col2im(out.grad, x.data.shape, kh, kw, stride, pad, out_h, out_w))

    out._backward = _backward
    return out, (out_h, out_w)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution as im2col + registry GEMM.

    ``groups`` supports depthwise/grouped convs (ShuffleNetV2).  Because the
    contraction is a registry matmul, the output bits depend on the device
    dialect unless the active policy is hardware-agnostic (D2).
    """
    n, c_in, _, _ = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError("channels must be divisible by groups")
    if c_in_g != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_g} input channels per group, input has {c_in // groups}"
        )

    if groups == 1:
        cols, (out_h, out_w) = im2col(x, kh, kw, stride, padding)
        w2d = weight.reshape(c_out, c_in_g * kh * kw)
        out = w2d.matmul(cols)  # (n, c_out, out_h*out_w) via broadcasting
        out = out.reshape(n, c_out, out_h, out_w)
    else:
        group_outs = []
        out_h = out_w = None
        x_groups = chunk(x, groups, axis=1)
        w_groups = chunk(weight, groups, axis=0)
        for xg, wg in zip(x_groups, w_groups):
            cols, (out_h, out_w) = im2col(xg, kh, kw, stride, padding)
            w2d = wg.reshape(c_out // groups, c_in_g * kh * kw)
            og = w2d.matmul(cols).reshape(n, c_out // groups, out_h, out_w)
            group_outs.append(og)
        out = concat(group_outs, axis=1)

    if bias is not None:
        out = out + bias.reshape(1, c_out, 1, 1)
    return out


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h, out_w = _conv_geometry(h, w, kernel_size, kernel_size, stride, padding)
    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)), constant_values=-np.inf)
    hp, wp = xp.shape[2], xp.shape[3]
    sn, sc, sh, sw = xp.strides
    windows = as_strided(
        xp,
        shape=(n, c, out_h, out_w, kernel_size, kernel_size),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    ).reshape(n, c, out_h, out_w, kernel_size * kernel_size)
    arg = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
    out = x._make(out_data.astype(np.float32), (x,))

    # flat index of each window max within the padded input
    ki, kj = arg // kernel_size, arg % kernel_size
    base_i = (np.arange(out_h) * stride)[None, None, :, None]
    base_j = (np.arange(out_w) * stride)[None, None, None, :]
    flat = (base_i + ki) * wp + (base_j + kj)

    def _backward() -> None:
        if not x.requires_grad:
            return
        grad_flat = np.zeros((n, c, hp * wp), dtype=np.float32)
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad_flat, (n_idx, c_idx, flat), out.grad)
        grad = grad_flat.reshape(n, c, hp, wp)
        if padding:
            grad = grad[:, :, padding:-padding, padding:-padding]
        x._accumulate(grad)

    out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    cols, (out_h, out_w) = im2col(x, kernel_size, kernel_size, stride, 0)
    n, c = x.shape[0], x.shape[1]
    k2 = kernel_size * kernel_size
    cols = cols.reshape(n, c, k2, out_h * out_w)
    pooled = cols.mean(axis=2)
    return pooled.reshape(n, c, out_h, out_w)


def global_avg_pool(x: Tensor) -> Tensor:
    """Adaptive average pool to 1x1, squeezed to (N, C)."""
    return mean_over(x, (2, 3))


# ---------------------------------------------------------------------------
# embedding
# ---------------------------------------------------------------------------


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup with policy-dependent scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    out = weight._make(weight.data[indices], (weight,))
    ctx = current_context()

    def _backward() -> None:
        if weight.requires_grad:
            grad = np.zeros_like(weight.data)
            flat_idx = indices.reshape(-1)
            flat_grad = out.grad.reshape(-1, weight.data.shape[1])
            kernels.scatter_add(grad, flat_idx, flat_grad, policy=ctx.policy)
            weight._accumulate(grad)

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# dropout
# ---------------------------------------------------------------------------


def dropout(x: Tensor, p: float, rng: RNGBundle, training: bool = True) -> Tensor:
    """Inverted dropout drawing its mask from the *framework* RNG stream.

    The draw advances ``rng.framework``; because EST contexts checkpoint the
    full stream state, a resumed EST reproduces the identical mask sequence.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = rng.bernoulli_mask(x.shape, keep) / np.float32(keep)
    return x * Tensor(mask)
