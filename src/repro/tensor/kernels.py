"""Kernel registry: per-device float32 dialects and deterministic variants.

This module is the numeric heart of the reproduction.  The paper identifies
*operator implementation selection* as a root cause of non-determinism
(§3.3): vendor libraries pick different kernels per GPU type and per
profiling outcome, and different kernels accumulate float32 partial sums in
different orders — bitwise-different results.  Real CUDA is unavailable
here, but float32 non-associativity is a property of IEEE-754, not of GPUs,
so we recreate the exact phenomenon with NumPy:

- each simulated GPU type (**V100 / P100 / T4**) has a *vendor dialect* — a
  distinct accumulation strategy for matmul (and hence conv, which lowers to
  matmul via im2col) and for reductions;
- a **deterministic hardware-agnostic** variant (fixed split-K blocking,
  fixed sequential reduction) stands in for the paper's D2 kernels: the same
  bits on every device type, at a simulated performance penalty;
- an **autotuner** stands in for cuDNN benchmark mode: during a warm-up
  window it cycles candidate variants per input shape ("profiling"), then
  locks in a shape-dependent choice.  Because the warm-up counter resets on
  restart, elasticity changes the chosen kernel — exactly the
  profiling-based non-determinism D0 disables.

``KernelPolicy`` encodes which guarantees are requested; the policy plus
the executing device's dialect fully determine every kernel choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

VENDOR_DIALECTS = ("v100", "p100", "t4")
AGNOSTIC_DIALECT = "agnostic"


@dataclass(frozen=True)
class KernelPolicy:
    """Requested kernel-level determinism guarantees.

    ``disable_autotune``
        D0 ingredient 1: pin kernel selection instead of profiling across
        mini-batches (the analogue of ``torch.backends.cudnn.benchmark=False``).
    ``deterministic_algorithms``
        D0 ingredient 2: forbid "atomic-add" style kernels whose reduction
        order is scheduling-dependent (the analogue of
        ``torch.use_deterministic_algorithms(True)``).
    ``hardware_agnostic``
        D2: use the fixed-order kernels on every device type (pin
        ``algo_id``; fixed SM/thread shape in the paper's terms).
    ``custom_kernel``
        Name of a user-registered D2 GEMM variant (the paper's future-work
        path: "allow the users to customize D2 kernels via Cutlass").
        Consulted only when ``hardware_agnostic`` is set; must have been
        registered via :func:`register_matmul_variant`.
    """

    disable_autotune: bool = True
    deterministic_algorithms: bool = True
    hardware_agnostic: bool = False
    custom_kernel: Optional[str] = None

    def effective_dialect(self, device_dialect: str) -> str:
        if self.hardware_agnostic:
            if self.custom_kernel is not None:
                if self.custom_kernel not in MATMUL_VARIANTS:
                    raise KeyError(
                        f"custom kernel {self.custom_kernel!r} is not registered; "
                        f"call register_matmul_variant first"
                    )
                return self.custom_kernel
            return AGNOSTIC_DIALECT
        if device_dialect not in VENDOR_DIALECTS:
            raise ValueError(f"unknown device dialect {device_dialect!r}")
        return device_dialect


#: Mimics stock PyTorch: cudnn.benchmark on, atomics allowed, vendor kernels.
BASELINE_POLICY = KernelPolicy(
    disable_autotune=False, deterministic_algorithms=False, hardware_agnostic=False
)
#: D0/D1 kernel policy: reproducible on a fixed device type.
D0_POLICY = KernelPolicy(
    disable_autotune=True, deterministic_algorithms=True, hardware_agnostic=False
)
#: D2 kernel policy: bitwise identical across device types.
D2_POLICY = KernelPolicy(
    disable_autotune=True, deterministic_algorithms=True, hardware_agnostic=True
)


# ---------------------------------------------------------------------------
# Matmul variants
# ---------------------------------------------------------------------------
#
# All variants compute C = A @ B for float32 A (m,k), B (k,n); they differ
# only in partial-sum association, which is what flips low-order mantissa
# bits.  The "vendor" variants model tensor-core / split-K / blocked GEMMs.


def _matmul_f64_accumulate(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """V100 dialect: high-precision accumulate (tensor-core style FP32->FP64->FP32)."""
    return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)


def _matmul_f32_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """P100 dialect: straight float32 BLAS accumulation."""
    return np.matmul(a.astype(np.float32), b.astype(np.float32))


def _matmul_splitk(a: np.ndarray, b: np.ndarray, block: int) -> np.ndarray:
    """Split-K GEMM: accumulate K-dimension in ``block``-sized float32 chunks."""
    a = a.astype(np.float32)
    b = b.astype(np.float32)
    k = a.shape[-1]
    out = None
    for start in range(0, k, block):
        part = np.matmul(a[..., start : start + block], b[..., start : start + block, :])
        out = part if out is None else out + part
    assert out is not None
    return out


def _matmul_t4(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """T4 dialect: split-K with a large block (few low-precision partials)."""
    return _matmul_splitk(a, b, block=max(8, a.shape[-1] // 2))


def _matmul_agnostic(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """D2 kernel: fixed split-K block of 16 on every device."""
    return _matmul_splitk(a, b, block=16)


MATMUL_VARIANTS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "v100": _matmul_f64_accumulate,
    "p100": _matmul_f32_direct,
    "t4": _matmul_t4,
    AGNOSTIC_DIALECT: _matmul_agnostic,
}

def register_matmul_variant(
    name: str,
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    validate: bool = True,
) -> None:
    """Register a user-supplied deterministic GEMM as a D2 kernel.

    The paper's future-work hook ("customize D2 kernels via Cutlass"):
    the variant becomes selectable with
    ``KernelPolicy(hardware_agnostic=True, custom_kernel=name)``, and —
    because every device routes to the same function — it preserves D2's
    cross-device bitwise guarantee by construction.

    ``validate`` runs two cheap checks before accepting the kernel:
    numerical agreement with a float64 reference on a probe input, and
    bitwise self-determinism across repeated calls.
    """
    if name in VENDOR_DIALECTS or name == AGNOSTIC_DIALECT:
        raise ValueError(f"variant name {name!r} collides with a built-in dialect")
    if validate:
        rng = np.random.default_rng(0)
        a = rng.normal(size=(13, 37)).astype(np.float32)
        b = rng.normal(size=(37, 11)).astype(np.float32)
        out = fn(a, b)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        if out.shape != (13, 11) or not np.allclose(out, ref, rtol=1e-3, atol=1e-3):
            raise ValueError(f"variant {name!r} failed numerical validation")
        if fn(a, b).tobytes() != out.tobytes():
            raise ValueError(f"variant {name!r} is not self-deterministic")
    MATMUL_VARIANTS[name] = fn


def unregister_matmul_variant(name: str) -> None:
    """Remove a user-registered variant (built-ins are protected)."""
    if name in VENDOR_DIALECTS or name == AGNOSTIC_DIALECT:
        raise ValueError(f"cannot unregister built-in dialect {name!r}")
    MATMUL_VARIANTS.pop(name, None)


def export_matmul_variants() -> Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]]:
    """The user-registered (non-built-in) D2 GEMM variants.

    Worker processes do not share the parent's registry: a policy with
    ``custom_kernel`` set would hit an unknown-kernel error in a child
    that never ran :func:`register_matmul_variant`.  Execution backends
    export the custom entries here, ship them (pickled) to each child,
    and re-install them via :func:`rehydrate_matmul_variants`.
    """
    return {
        name: fn
        for name, fn in MATMUL_VARIANTS.items()
        if name not in VENDOR_DIALECTS and name != AGNOSTIC_DIALECT
    }


def rehydrate_matmul_variants(
    variants: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]],
) -> None:
    """Install parent-exported variants in a worker process.

    Validation is skipped: the parent already ran the numerical and
    self-determinism checks before shipping, and re-validating in every
    child would add per-process startup cost for no new information.
    Built-in dialect names are ignored defensively.
    """
    for name, fn in variants.items():
        if name in VENDOR_DIALECTS or name == AGNOSTIC_DIALECT:
            continue
        MATMUL_VARIANTS[name] = fn


#: Relative per-op cost of the agnostic kernels vs the vendor kernel, used by
#: the hardware timing model.  Matmul/conv pay heavily (Fig. 12's ~236% conv
#: overhead); elementwise ops pay almost nothing.
AGNOSTIC_SLOWDOWN = {"matmul": 3.4, "conv2d": 3.4, "reduce": 1.05, "elementwise": 1.0}


# ---------------------------------------------------------------------------
# Reduction variants
# ---------------------------------------------------------------------------


def _reduce_pairwise(x: np.ndarray, axis, keepdims: bool) -> np.ndarray:
    """NumPy's default pairwise summation (vendor fast path)."""
    return np.sum(x, axis=axis, keepdims=keepdims, dtype=np.float32)


def _reduce_f64(x: np.ndarray, axis, keepdims: bool) -> np.ndarray:
    """V100 dialect reduction: f64 accumulate then round."""
    return np.sum(x, axis=axis, keepdims=keepdims, dtype=np.float64).astype(np.float32)


def _reduce_sequential(x: np.ndarray, axis, keepdims: bool) -> np.ndarray:
    """D2 reduction: strict left-to-right float32 accumulation.

    Implemented with a fixed-size blocked loop so it stays vectorized but
    has one canonical association on every device.
    """
    x = np.asarray(x, dtype=np.float32)
    if axis is None:
        flat = x.reshape(-1)
        total = np.float32(0.0)
        block = 4096
        for start in range(0, flat.size, block):
            chunk = flat[start : start + block]
            # within-block: left-fold via cumulative add in f32
            total = np.float32(total + np.add.reduce(chunk, dtype=np.float32))
        out = np.float32(total)
        return np.reshape(out, (1,) * x.ndim) if keepdims else np.asarray(out, dtype=np.float32)
    moved = np.moveaxis(x, axis, -1)
    n = moved.shape[-1]
    acc = np.zeros(moved.shape[:-1], dtype=np.float32)
    block = 64
    for start in range(0, n, block):
        acc = acc + np.add.reduce(moved[..., start : start + block], axis=-1, dtype=np.float32)
    if keepdims:
        acc = np.expand_dims(acc, axis)
    return acc


REDUCE_VARIANTS: Dict[str, Callable] = {
    "v100": _reduce_f64,
    "p100": _reduce_pairwise,
    "t4": _reduce_pairwise,
    AGNOSTIC_DIALECT: _reduce_sequential,
}


# ---------------------------------------------------------------------------
# Scatter-add (embedding backward): atomic vs deterministic
# ---------------------------------------------------------------------------


def scatter_add_deterministic(target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """Sort-by-index scatter add: one canonical accumulation order."""
    order = np.argsort(indices, kind="stable")
    np.add.at(target, indices[order], values[order])


_atomic_interleave = 0


def scatter_add_atomic(target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """'Atomic' scatter add: accumulation order depends on a scheduling
    counter, modelling GPU atomics whose arrival order is nondeterministic.

    The counter is process-global and untracked by checkpoints, so restarts
    reshuffle the order — which is precisely why D0 forbids these kernels.
    """
    global _atomic_interleave
    _atomic_interleave += 1
    n = len(indices)
    if n == 0:
        return
    stride = (_atomic_interleave % 7) + 2
    order = np.concatenate([np.arange(start, n, stride) for start in range(stride)])
    np.add.at(target, indices[order], values[order])


# ---------------------------------------------------------------------------
# Autotuner (cudnn.benchmark analogue)
# ---------------------------------------------------------------------------


class Autotuner:
    """Profiling-based kernel selection across mini-batches.

    For each (op, shape-signature) it "profiles" for ``warmup`` calls by
    cycling through candidate variants, then locks a shape-hash-dependent
    choice.  State is process-local and never checkpointed; a restart
    re-profiles and may lock a different phase — recreating the
    elastic-restart kernel churn the paper observed.
    """

    def __init__(self, warmup: int = 3) -> None:
        self.warmup = warmup
        self._calls: Dict[Tuple[str, Tuple[int, ...]], int] = {}

    def reset(self) -> None:
        """Forget all profiling state (what a worker restart does)."""
        self._calls.clear()

    def choose(self, op: str, signature: Tuple[int, ...], candidates: List[str]) -> str:
        key = (op, signature)
        count = self._calls.get(key, 0)
        self._calls[key] = count + 1
        if count < self.warmup:
            return candidates[count % len(candidates)]
        return candidates[hash(signature) % len(candidates)]


_GLOBAL_AUTOTUNER = Autotuner()


def global_autotuner() -> Autotuner:
    """The process-wide autotuner (reset it to model a worker restart)."""
    return _GLOBAL_AUTOTUNER


# ---------------------------------------------------------------------------
# Dispatch entry points used by ops.py
# ---------------------------------------------------------------------------


def matmul(a: np.ndarray, b: np.ndarray, *, dialect: str, policy: KernelPolicy) -> np.ndarray:
    """Dispatch a GEMM according to policy + device dialect."""
    eff = policy.effective_dialect(dialect)
    if not policy.disable_autotune and not policy.hardware_agnostic:
        candidates = list(VENDOR_DIALECTS)
        eff = _GLOBAL_AUTOTUNER.choose("matmul", tuple(a.shape) + tuple(b.shape), candidates)
    return MATMUL_VARIANTS[eff](a, b)


def reduce_sum(
    x: np.ndarray, axis=None, keepdims: bool = False, *, dialect: str, policy: KernelPolicy
) -> np.ndarray:
    """Dispatch a sum-reduction according to policy + device dialect."""
    eff = policy.effective_dialect(dialect)
    if not policy.deterministic_algorithms and not policy.hardware_agnostic:
        # Atomic-style reductions: emulate scheduling-dependent association
        # by reducing over a counter-dependent permutation of the axis.
        return _reduce_atomic(x, axis, keepdims)
    # custom D2 variants supply a GEMM only; reductions use the agnostic one
    if eff not in REDUCE_VARIANTS:
        eff = AGNOSTIC_DIALECT
    return REDUCE_VARIANTS[eff](x, axis, keepdims)


def _reduce_atomic(x: np.ndarray, axis, keepdims: bool) -> np.ndarray:
    global _atomic_interleave
    _atomic_interleave += 1
    x = np.asarray(x, dtype=np.float32)
    if axis is None:
        flat = x.reshape(-1)
        stride = (_atomic_interleave % 5) + 2
        order = np.concatenate([np.arange(s, flat.size, stride) for s in range(stride)])
        out = np.add.reduce(flat[order], dtype=np.float32)
        return np.reshape(out, (1,) * x.ndim) if keepdims else np.asarray(out, dtype=np.float32)
    moved = np.moveaxis(x, axis, -1)
    stride = (_atomic_interleave % 5) + 2
    n = moved.shape[-1]
    order = np.concatenate([np.arange(s, n, stride) for s in range(stride)])
    out = np.add.reduce(moved[..., order], axis=-1, dtype=np.float32)
    if keepdims:
        out = np.expand_dims(out, axis)
    return out


def scatter_add(
    target: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    *,
    policy: KernelPolicy,
) -> None:
    """Dispatch embedding-style gradient scatter according to policy."""
    if policy.deterministic_algorithms:
        scatter_add_deterministic(target, indices, values)
    else:
        scatter_add_atomic(target, indices, values)
