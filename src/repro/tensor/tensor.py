"""A small reverse-mode autograd engine over NumPy float32 arrays.

This is the reproduction's stand-in for PyTorch's tensor library.  It is
deliberately minimal but *real*: every model in :mod:`repro.models` trains
through this engine, gradients flow through genuine float32 arithmetic, and
— crucially for the paper — every reduction and GEMM dispatches through the
kernel registry (:mod:`repro.tensor.kernels`) so that the executing device's
dialect and the active :class:`~repro.tensor.kernels.KernelPolicy` determine
the bit pattern of the result.

Design notes
------------
- Gradients are accumulated in reverse-topological order of graph
  construction, which is itself deterministic, so the engine adds no
  non-determinism of its own; all intentional non-determinism lives in the
  kernel registry and the communication layer.
- Broadcasting follows NumPy semantics; ``_unbroadcast`` folds gradient
  contributions back onto the parents' shapes.
- ``no_grad()`` scopes inference passes (metric evaluation) so they don't
  build graphs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import kernels
from repro.tensor.context import current_context

Scalar = Union[int, float]


class _GradMode(threading.local):
    def __init__(self) -> None:
        self.enabled = True


_GRAD_MODE = _GradMode()


class _GradHooks(threading.local):
    def __init__(self) -> None:
        self.hooks: List[Callable[["Tensor"], None]] = []


_GRAD_HOOKS = _GradHooks()


@contextmanager
def leaf_grad_hook(hook: Callable[["Tensor"], None]) -> Iterator[None]:
    """Invoke ``hook(tensor)`` whenever a *leaf* tensor receives gradient.

    DDP uses this to observe the order in which parameter gradients become
    ready during backward — the "arrival order" that drives its
    gradient-bucket reconstruction after the first mini-batch (§3.3).
    """
    _GRAD_HOOKS.hooks.append(hook)
    try:
        yield
    finally:
        _GRAD_HOOKS.hooks.pop()


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph construction within the scope (inference mode)."""
    prev = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


def grad_enabled() -> bool:
    """Whether autograd graph construction is currently active."""
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum a gradient over the axes that were broadcast in the forward op."""
    if grad.shape == shape:
        return grad
    # sum leading extra dims
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum dims that were 1 in the original shape
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Union["Tensor", np.ndarray, Scalar]) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float32)


class Tensor:
    """An array with an optional autograd tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_prev", "name")

    def __init__(
        self,
        data: Union[np.ndarray, Sequence, Scalar],
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype != np.float32:
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward_fn: Optional[Callable[[], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev
        self.name = name

    @property
    def _backward(self) -> Optional[Callable[[], None]]:
        return self._backward_fn

    @_backward.setter
    def _backward(self, fn: Optional[Callable[[], None]]) -> None:
        # Refuse to retain backward closures on non-graph tensors: in
        # no_grad scopes the closure would otherwise keep every input of
        # the op alive, defeating inference mode's purpose.
        self._backward_fn = fn if self.requires_grad else None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # autograd plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        """Create the output node of an op, respecting grad mode."""
        if grad_enabled() and any(p.requires_grad for p in parents):
            return Tensor(data, requires_grad=True, _prev=parents)
        return Tensor(data, requires_grad=False)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = grad.astype(np.float32, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad
        if _GRAD_HOOKS.hooks and self.requires_grad and not self._prev:
            for hook in _GRAD_HOOKS.hooks:
                hook(self)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (only valid for scalar outputs, matching
        PyTorch's convention for ``loss.backward()``).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float32).reshape(self.data.shape).copy()

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data + other_t.data, (self, other_t))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(out.grad, other_t.shape))

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward = _backward
        return out

    def __sub__(self, other: Union["Tensor", Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: Scalar) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data * other_t.data, (self, other_t))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(out.grad * self.data, other_t.shape))

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data / other_t.data, (self, other_t))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-out.grad * self.data / (other_t.data**2), other_t.shape)
                )

        out._backward = _backward
        return out

    def __rtruediv__(self, other: Scalar) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make(self.data**exponent, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # matmul (dispatches through the kernel registry)
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        ctx = current_context()
        out_data = kernels.matmul(self.data, other.data, dialect=ctx.dialect, policy=ctx.policy)
        out = self._make(out_data, (self, other))

        def _backward() -> None:
            g = out.grad
            if self.requires_grad:
                grad_a = kernels.matmul(
                    g, _swap_last(other.data), dialect=ctx.dialect, policy=ctx.policy
                )
                self._accumulate(_unbroadcast(grad_a, self.shape))
            if other.requires_grad:
                grad_b = kernels.matmul(
                    _swap_last(self.data), g, dialect=ctx.dialect, policy=ctx.policy
                )
                other._accumulate(_unbroadcast(grad_b, other.shape))

        out._backward = _backward
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # reductions (dispatch through the kernel registry)
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        ctx = current_context()
        out_data = kernels.reduce_sum(
            self.data, axis=axis, keepdims=keepdims, dialect=ctx.dialect, policy=ctx.policy
        )
        out = self._make(np.asarray(out_data, dtype=np.float32), (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            g = out.grad
            if axis is None:
                grad = np.broadcast_to(np.asarray(g).reshape(()), self.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                grad = np.broadcast_to(g, self.shape)
            self._accumulate(np.ascontiguousarray(grad))

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = np.max(self.data, axis=axis, keepdims=keepdims)
        out = self._make(np.asarray(out_data, dtype=np.float32), (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            g = out.grad
            if axis is None:
                mask = (self.data == np.max(self.data)).astype(np.float32)
                # split gradient among ties deterministically
                mask /= np.maximum(mask.sum(), 1.0)
                self._accumulate(mask * np.asarray(g).reshape(()))
            else:
                expanded = np.max(self.data, axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(np.float32)
                mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                gg = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(mask * gg)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        out = self._make(np.transpose(self.data, axes_t), (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            if axes_t is None:
                self._accumulate(np.transpose(out.grad))
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(np.transpose(out.grad, inverse))

        out._backward = _backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,))

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0))

        out._backward = _backward
        return out

    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out = self._make(np.tanh(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data**2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(out_data.astype(np.float32), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5


def _swap_last(arr: np.ndarray) -> np.ndarray:
    """Transpose the last two axes (batched matmul transpose)."""
    return np.swapaxes(arr, -1, -2)
