"""Execution context: which simulated device + kernel policy ops run under.

EasyScale workers set the context before running an EST's mini-batch; the
autograd ops read it to pick kernel variants.  The context is a simple
thread-local stack so nested scopes (e.g. an evaluation pass inside a
training loop) compose, mirroring how a CUDA device + cuDNN flags scope a
real PyTorch region.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List

from repro.tensor.kernels import D0_POLICY, KernelPolicy, VENDOR_DIALECTS


@dataclass(frozen=True)
class ExecContext:
    """An immutable (device dialect, kernel policy) pair."""

    dialect: str = "v100"
    policy: KernelPolicy = D0_POLICY

    def __post_init__(self) -> None:
        if self.dialect not in VENDOR_DIALECTS:
            raise ValueError(
                f"unknown device dialect {self.dialect!r}; expected one of {VENDOR_DIALECTS}"
            )


_DEFAULT = ExecContext()


class _ContextStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[ExecContext] = []


_STACK = _ContextStack()


def current_context() -> ExecContext:
    """The innermost active context (a deterministic V100/D0 default if none)."""
    if _STACK.stack:
        return _STACK.stack[-1]
    return _DEFAULT


@contextmanager
def execution_context(
    dialect: str = "v100", policy: KernelPolicy = D0_POLICY
) -> Iterator[ExecContext]:
    """Scope ops to a simulated device dialect + kernel policy.

    Example::

        with execution_context("p100", D2_POLICY):
            loss = model(batch).sum()
    """
    ctx = ExecContext(dialect=dialect, policy=policy)
    _STACK.stack.append(ctx)
    try:
        yield ctx
    finally:
        popped = _STACK.stack.pop()
        assert popped is ctx, "execution context stack corrupted"
