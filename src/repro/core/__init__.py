"""EasyScale core: ESTs, determinism levels, ElasticDDP, engine, checkpoints."""

from repro.core.checkpoint import Checkpoint, CheckpointCorruptError
from repro.core.determinism import (
    DeterminismConfig,
    ScanReport,
    allowed_gpu_heterogeneity,
    determinism_from_label,
    scan_model,
)
from repro.core.elastic_ddp import ElasticDDP
from repro.core.engine import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.core.est import EasyScaleThread, ESTContext, est_rng
from repro.core.porting import PortedTrainingSession
from repro.core.selftest import SelfTestReport, run_selftest
from repro.core.worker import EasyScaleWorker, LocalStepResult

__all__ = [
    "Checkpoint",
    "CheckpointCorruptError",
    "DeterminismConfig",
    "ScanReport",
    "scan_model",
    "allowed_gpu_heterogeneity",
    "determinism_from_label",
    "ElasticDDP",
    "EasyScaleEngine",
    "EasyScaleJobConfig",
    "WorkerAssignment",
    "EasyScaleThread",
    "ESTContext",
    "est_rng",
    "EasyScaleWorker",
    "LocalStepResult",
    "PortedTrainingSession",
    "SelfTestReport",
    "run_selftest",
]
