"""Determinism levels D0 / D1 / D2 and the model eligibility scanner.

The paper defines three nested guarantees (§3.3):

- **D0 (static)** — same bits across runs on a *fixed* number of GPUs:
  fixed RNG seeds, RNG states checkpointed, profiling autotune off,
  deterministic (non-atomic) kernels.
- **D1 (elastic)** — same bits across *different GPU counts*: D0 plus
  constant virtual communication ranks and the gradient-bucket mapping
  recorded in checkpoints (bucket reconstruction disabled on restore).
- **D2 (heterogeneous)** — same bits across *different GPU types*: D1's
  kernels replaced by hardware-agnostic implementations (pinned algo_id,
  fixed SM/thread shapes).

D0 and D1 are on by default (negligible overhead); D2 is costly for
conv-heavy models, so :func:`scan_model` inspects the module tree — the
analogue of EasyScale scanning ``nn.Module`` — and reports whether a model
relies on vendor-optimized convolution kernels.  The scheduler uses the
report to keep non-eligible jobs on homogeneous GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.tensor.kernels import BASELINE_POLICY, D0_POLICY, D2_POLICY, KernelPolicy


@dataclass(frozen=True)
class DeterminismConfig:
    """Which guarantees a job requests.

    ``static`` → D0, ``elastic`` → D1 (implies static), ``heterogeneous``
    → D2 (implies static; combinable with or without elastic, matching the
    paper's D0+D2 / D1+D2 configurations in Fig. 9).
    """

    static: bool = True
    elastic: bool = True
    heterogeneous: bool = False

    def __post_init__(self) -> None:
        if (self.elastic or self.heterogeneous) and not self.static:
            raise ValueError("D1/D2 require D0 (static determinism)")

    @property
    def kernel_policy(self) -> KernelPolicy:
        if not self.static:
            return BASELINE_POLICY
        return D2_POLICY if self.heterogeneous else D0_POLICY

    @property
    def record_bucket_mapping(self) -> bool:
        """D1's checkpoint ingredient."""
        return self.elastic

    @property
    def label(self) -> str:
        if not self.static:
            return "baseline"
        name = "D1" if self.elastic else "D0"
        return f"{name}+D2" if self.heterogeneous else name


def determinism_from_label(label: str) -> DeterminismConfig:
    """Parse the paper's configuration names: D0, D1, D0+D2, D1+D2."""
    normalized = label.strip().upper().replace(" ", "")
    mapping = {
        "BASELINE": DeterminismConfig(static=False, elastic=False, heterogeneous=False),
        "D0": DeterminismConfig(static=True, elastic=False, heterogeneous=False),
        "D1": DeterminismConfig(static=True, elastic=True, heterogeneous=False),
        "D0+D2": DeterminismConfig(static=True, elastic=False, heterogeneous=True),
        "D1+D2": DeterminismConfig(static=True, elastic=True, heterogeneous=True),
    }
    if normalized not in mapping:
        raise KeyError(f"unknown determinism label {label!r}; options: {sorted(mapping)}")
    return mapping[normalized]


@dataclass
class ScanReport:
    """Result of scanning a model for vendor-kernel reliance."""

    vendor_kernel_modules: List[str] = field(default_factory=list)

    @property
    def relies_on_vendor_kernels(self) -> bool:
        return bool(self.vendor_kernel_modules)

    @property
    def d2_recommended(self) -> bool:
        """Cheap to enable D2?  True when no conv kernels are involved."""
        return not self.relies_on_vendor_kernels


def scan_model(model: Module) -> ScanReport:
    """Walk the module tree looking for operators whose fast path is a
    vendor-tuned kernel (convolutions).  GEMM-only models (transformers,
    MLPs) have cheap deterministic implementations and pass the scan."""
    report = ScanReport()
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            report.vendor_kernel_modules.append(name or type(module).__name__)
    return report


def allowed_gpu_heterogeneity(model: Module, config: DeterminismConfig) -> bool:
    """May this job be scheduled across GPU types?

    True iff D2 is requested *and* either the model passes the scan or the
    user explicitly accepts the conv D2 overhead (requesting heterogeneous
    is that acceptance; the scheduler additionally prefers homogeneous
    plans for conv-heavy jobs — §3.3 last paragraph).
    """
    return config.heterogeneous
