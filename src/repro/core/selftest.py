"""Installation self-test: verify the bitwise guarantee end-to-end.

Deterministic training is fragile to environment drift (BLAS builds,
reduction orders, library versions) — the real EasyScale ships with
deterministic-kernel checks for the same reason.  ``run_selftest()``
executes a miniature version of every headline experiment in a few
seconds and reports pass/fail per property, so users can verify their
environment before trusting longer runs.  Exposed as
``python -m repro.cli self-test``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.determinism import determinism_from_label
from repro.core.engine import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.ddp.ddp import DDPTrainer, ddp_heter_config, ddp_homo_config
from repro.hw.gpu import P100, V100
from repro.models.registry import get_workload
from repro.optim.sgd import SGD
from repro.utils.fingerprint import fingerprint_state_dict

SEED = 17
STEPS = 4


@dataclass
class SelfTestReport:
    """Outcome of the determinism self-test."""

    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return bool(self.checks) and all(self.checks.values())

    def lines(self) -> List[str]:
        width = max(len(name) for name in self.checks) if self.checks else 0
        return [
            f"{name:<{width}}  {'PASS' if ok else 'FAIL'}"
            for name, ok in self.checks.items()
        ]


def _sgd(model):
    return SGD(model.named_parameters(), lr=0.05, momentum=0.9)


def run_selftest() -> SelfTestReport:
    """Run the miniature bitwise checks; see :class:`SelfTestReport`."""
    report = SelfTestReport()
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(96, seed=SEED)

    # reference: DDP-homo with 2 fixed workers
    ddp = DDPTrainer(spec, dataset, ddp_homo_config(2, seed=SEED, batch_size=8), _sgd)
    ddp.train_steps(STEPS)
    ref = fingerprint_state_dict(ddp.model.state_dict())

    # check 1: DDP itself is reproducible (D0 foundation)
    ddp2 = DDPTrainer(spec, dataset, ddp_homo_config(2, seed=SEED, batch_size=8), _sgd)
    ddp2.train_steps(STEPS)
    report.checks["D0: repeated fixed-resource runs identical"] = (
        fingerprint_state_dict(ddp2.model.state_dict()) == ref
    )

    # check 2: EasyScale static == DDP
    config = EasyScaleJobConfig(num_ests=2, seed=SEED, batch_size=8)
    engine = EasyScaleEngine(
        spec, dataset, config, _sgd, WorkerAssignment.balanced([V100] * 2, 2)
    )
    engine.train_steps(STEPS)
    report.checks["EST abstraction: EasyScale(2 ESTs) == DDP(2 GPUs)"] = (
        fingerprint_state_dict(engine.model.state_dict()) == ref
    )

    # check 3: D1 survives a scale event (checkpoint + restart)
    elastic = EasyScaleEngine(
        spec, dataset, config, _sgd, WorkerAssignment.balanced([V100] * 2, 2)
    )
    elastic.train_steps(STEPS // 2)
    elastic = elastic.reconfigure(WorkerAssignment.balanced([V100], 2))
    elastic.train_steps(STEPS - STEPS // 2)
    report.checks["D1: elastic scale event preserves bits"] = (
        fingerprint_state_dict(elastic.model.state_dict()) == ref
    )

    # check 4: D2 makes heterogeneous GPUs identical to the heter reference
    ddp_het = DDPTrainer(
        spec, dataset, ddp_heter_config(2, ["v100"] * 2, seed=SEED, batch_size=8), _sgd
    )
    ddp_het.train_steps(STEPS)
    het_ref = fingerprint_state_dict(ddp_het.model.state_dict())
    config_d2 = EasyScaleJobConfig(
        num_ests=2, seed=SEED, batch_size=8, determinism=determinism_from_label("D1+D2")
    )
    mixed = EasyScaleEngine(
        spec, dataset, config_d2, _sgd, WorkerAssignment.balanced([V100, P100], 2)
    )
    mixed.train_steps(STEPS)
    report.checks["D2: heterogeneous GPUs preserve bits"] = (
        fingerprint_state_dict(mixed.model.state_dict()) == het_ref
    )

    # check 5 (negative control): the hazard is real on this machine —
    # without D2, mixed GPU dialects must actually change the bits
    config_d1 = EasyScaleJobConfig(num_ests=2, seed=SEED, batch_size=8)
    mixed_d1 = EasyScaleEngine(
        spec, dataset, config_d1, _sgd, WorkerAssignment.balanced([V100, P100], 2)
    )
    mixed_d1.train_steps(STEPS)
    report.checks["control: heterogeneity without D2 diverges"] = (
        fingerprint_state_dict(mixed_d1.model.state_dict()) != ref
    )

    return report
