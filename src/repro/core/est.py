"""EasyScaleThread (EST): the paper's central abstraction (§3.2).

An EST is one *logical* data-parallel training worker.  The job always has
``nEST`` of them, fixed at submission; what varies with resources is only
how ESTs map onto physical EasyScale workers.  An EST owns:

- a constant **virtual communication rank** (its position in gradient
  aggregation — the D1 ingredient that pins the reduction order);
- its private **RNG bundle** (dropout masks, any per-worker randomness),
  derived from the job seed and the virtual rank only;
- its training **progress cursor** (epoch, step), which all ESTs share in
  lock-step because training is synchronous.

Everything else a PyTorch worker would carry (model replica, optimizer
state, activations) is shared with or reconstructed by the hosting worker
— that sharing is what makes EST context switching lightweight (the
context below is a few hundred bytes, vs. hundreds of MB for a replica).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.utils.rng import RNGBundle, derive_seed


def est_rng(job_seed: int, vrank: int) -> RNGBundle:
    """The EST's RNG bundle.

    Uses the same ``(seed, "worker", rank)`` derivation as the DDP baseline
    (:func:`repro.ddp.ddp.rank_rng`) — EST ``i`` draws bit-for-bit the same
    randomness a DDP worker of rank ``i`` would.
    """
    return RNGBundle(derive_seed(job_seed, "worker", vrank))


@dataclass
class ESTContext:
    """The stateful, checkpointable part of an EST.

    This is what context switching saves/restores and what the on-demand
    checkpoint stores per EST.  Deliberately minimal: RNG stream states
    plus the virtual rank.  (Gradients are staged by the hosting worker
    and only live within a global step; model/optimizer are shared.)
    """

    vrank: int
    rng_state: Dict[str, Any]

    def to_state(self) -> Dict[str, Any]:
        return {"vrank": self.vrank, "rng_state": self.rng_state}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ESTContext":
        return cls(vrank=int(state["vrank"]), rng_state=state["rng_state"])


class EasyScaleThread:
    """A logical training worker, relocatable across physical workers."""

    def __init__(self, job_seed: int, vrank: int) -> None:
        if vrank < 0:
            raise ValueError(f"virtual rank must be non-negative, got {vrank}")
        self.vrank = vrank
        self.rng = est_rng(job_seed, vrank)
        #: staged gradients of the current global step (worker-managed;
        #: swapped to "CPU memory" between local steps)
        self.staged_grads: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # context switching
    # ------------------------------------------------------------------
    def save_context(self) -> ESTContext:
        """Capture the minimal context (called when swapping the EST out)."""
        return ESTContext(vrank=self.vrank, rng_state=self.rng.get_state())

    def load_context(self, context: ESTContext) -> None:
        """Restore a saved context (called when swapping the EST in)."""
        if context.vrank != self.vrank:
            raise ValueError(
                f"context of vrank {context.vrank} loaded into EST {self.vrank}"
            )
        self.rng.set_state(context.rng_state)

    @classmethod
    def from_context(cls, job_seed: int, context: ESTContext) -> "EasyScaleThread":
        est = cls(job_seed, context.vrank)
        est.load_context(context)
        return est

    def __repr__(self) -> str:
        return f"EST(vrank={self.vrank})"
