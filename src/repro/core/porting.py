"""User-facing porting API: bring-your-own training loop.

The paper's workloads were "implemented based on PyTorch 1.8 LTS, and
ported to EasyScale with a few lines of code changing" (§5): EasyScale
"hooks the key steps of model training, such as data loading, model
backward, and model updating through users' annotations" (§3.2).

This module is that annotation surface.  Instead of using the turnkey
:class:`~repro.core.engine.EasyScaleEngine` loop, a user keeps their own
step function and wraps it:

    session = PortedTrainingSession(
        model=my_model,
        optimizer=my_optimizer,
        num_ests=4,
        seed=7,
        assignment=WorkerAssignment.balanced([V100] * 2, 4),
    )

    def my_step(batch):                    # the user's existing code
        x, y = batch
        loss = cross_entropy(my_model(Tensor(x)), y)
        loss.backward()
        return loss

    for _ in range(100):
        session.global_step_with(my_step, my_loader)   # one annotation

The session supplies exactly what the engine would: per-EST execution
contexts (device dialect + kernel policy + RNG stream + BN journal),
gradient staging, virtual-rank synchronization, and on-demand
checkpointing — so a ported loop keeps the bitwise guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.checkpoint import Checkpoint
from repro.core.determinism import DeterminismConfig, determinism_from_label
from repro.core.elastic_ddp import ElasticDDP
from repro.core.est import EasyScaleThread
from repro.core.engine import WorkerAssignment
from repro.nn.module import Module
from repro.nn.runtime import collect_bn_stats, use_rng
from repro.optim.optimizer import Optimizer
from repro.tensor.context import execution_context
from repro.tensor.tensor import Tensor, leaf_grad_hook


class PortedTrainingSession:
    """Elastic, accuracy-consistent execution for a user-owned step function."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        num_ests: int,
        seed: int,
        assignment: WorkerAssignment,
        determinism: Optional[DeterminismConfig] = None,
        bucket_capacity_elems: int = 2048,
    ) -> None:
        if assignment.num_ests != num_ests:
            raise ValueError(
                f"assignment covers {assignment.num_ests} ESTs, session declares {num_ests}"
            )
        self.model = model
        self.optimizer = optimizer
        self.num_ests = num_ests
        self.seed = seed
        self.determinism = determinism or determinism_from_label("D1")
        self._named_params = dict(model.named_parameters())
        self._param_names_by_id = {id(p): n for n, p in self._named_params.items()}
        self.elastic_ddp = ElasticDDP(
            param_order=list(self._named_params),
            param_sizes={n: p.data.size for n, p in self._named_params.items()},
            param_shapes={n: p.data.shape for n, p in self._named_params.items()},
            num_ests=num_ests,
            bucket_capacity_elems=bucket_capacity_elems,
            record_mapping=self.determinism.record_bucket_mapping,
        )
        self.ests = [EasyScaleThread(seed, v) for v in range(num_ests)]
        self.assignment = assignment
        self.global_step = 0

    # ------------------------------------------------------------------
    # the single annotation the user adds to their loop
    # ------------------------------------------------------------------
    def global_step_with(
        self,
        step_fn: Callable[[object], Tensor],
        load_batch: Callable[[int, int], object],
    ) -> List[float]:
        """Run one global step of the user's ``step_fn``.

        ``step_fn(batch)`` must run forward + ``loss.backward()`` on the
        session's model and return the loss tensor; ``load_batch(vrank,
        global_step)`` supplies each EST's mini-batch (use a
        :class:`~repro.data.dataloader.SharedDataLoader` or anything with
        the same determinism contract).
        """
        policy = self.determinism.kernel_policy
        est_by_vrank = {est.vrank: est for est in self.ests}
        arrival: Optional[List[str]] = [] if not self.elastic_ddp.reconstructed else None
        grads_by_vrank: Dict[int, Dict[str, np.ndarray]] = {}
        journals: Dict[int, list] = {}
        losses: Dict[int, float] = {}

        for gpu, vranks in zip(self.assignment.gpus, self.assignment.est_map):
            for vrank in vranks:
                est = est_by_vrank[vrank]
                batch = load_batch(vrank, self.global_step)
                self.model.zero_grad()
                with execution_context(gpu.dialect, policy), use_rng(
                    est.rng
                ), collect_bn_stats() as journal:
                    if arrival is not None and vrank == 0:
                        def on_grad(tensor) -> None:
                            name = self._param_names_by_id.get(id(tensor))
                            if name is not None and name not in arrival:
                                arrival.append(name)

                        with leaf_grad_hook(on_grad):
                            loss = step_fn(batch)
                    else:
                        loss = step_fn(batch)
                losses[vrank] = loss.item()
                journals[vrank] = journal
                grads_by_vrank[vrank] = {
                    n: p.grad.copy()
                    for n, p in self._named_params.items()
                    if p.grad is not None
                }

        ordered = [grads_by_vrank[v] for v in range(self.num_ests)]
        averaged = self.elastic_ddp.synchronize(ordered)
        for name, grad in averaged.items():
            self._named_params[name].grad = grad
        for vrank in range(self.num_ests):
            for layer, mean, var in journals[vrank]:
                layer.fold_stats(mean, var)
        self.optimizer.step()
        self.model.zero_grad()
        if arrival is not None:
            self.elastic_ddp.maybe_reconstruct(arrival)
        self.global_step += 1
        return [losses[v] for v in range(self.num_ests)]

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def reassign(self, assignment: WorkerAssignment) -> None:
        """Scale in/out in place (the session owns no processes to restart,
        so unlike the engine this is just a mapping change — state is
        already fully captured by the ESTs + shared replica)."""
        if assignment.num_ests != self.num_ests:
            raise ValueError("new assignment must cover the same EST count")
        self.assignment = assignment

    def checkpoint(self) -> Checkpoint:
        return Checkpoint(
            est_contexts=[est.save_context().to_state() for est in self.ests],
            extra={
                "global_step": self.global_step,
                "bucket_mapping": self.elastic_ddp.export_mapping(),
                "determinism": self.determinism.label,
            },
            params={
                "model": self.model.state_dict(),
                "optimizer": self.optimizer.state_dict(),
            },
            meta={"num_ests": self.num_ests, "seed": self.seed},
        )

    def restore(self, ckpt: Checkpoint) -> None:
        if ckpt.num_ests != self.num_ests:
            raise ValueError("checkpoint EST count mismatch")
        self.model.load_state_dict(ckpt.params["model"])
        self.optimizer.load_state_dict(ckpt.params["optimizer"])
        for est in self.ests:
            est.load_context(ckpt.context_for(est.vrank))
        self.elastic_ddp.import_mapping(ckpt.extra.get("bucket_mapping"))
        self.global_step = int(ckpt.extra["global_step"])
