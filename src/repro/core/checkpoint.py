"""On-demand checkpointing (§3.2, "Adapting to elasticity").

When resources change, EasyScale snapshots exactly three kinds of state:

1. **EST contexts** — one per EST (RNG stream states + virtual rank);
2. **extra states** — shared, single-replica: training progress, the
   D1 gradient-bucket mapping, pending data-worker queue states (Fig. 7's
   queuing buffer), and the determinism configuration;
3. **parameters** — model state dict (params *and* implicit buffers),
   optimizer state, LR-scheduler state; also single-replica, since within
   a global step every EST sees the same values.

The checkpoint is a plain nested dict and round-trips through bytes
bitwise (tested property-based), because a single flipped mantissa bit on
restore would void D1/D2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.est import ESTContext
from repro.utils.serialization import (
    CheckpointCorruptError,
    state_dict_from_bytes,
    state_dict_to_bytes,
)


FORMAT_VERSION = 1

__all__ = ["Checkpoint", "CheckpointCorruptError", "FORMAT_VERSION"]


@dataclass
class Checkpoint:
    """An EasyScale on-demand checkpoint."""

    est_contexts: List[Dict[str, Any]]
    extra: Dict[str, Any]
    params: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.est_contexts:
            raise ValueError("checkpoint must contain at least one EST context")
        vranks = [int(c["vrank"]) for c in self.est_contexts]
        if sorted(vranks) != list(range(len(vranks))):
            raise ValueError(f"EST contexts must cover virtual ranks 0..n-1, got {vranks}")

    @property
    def num_ests(self) -> int:
        return len(self.est_contexts)

    def context_for(self, vrank: int) -> ESTContext:
        for state in self.est_contexts:
            if int(state["vrank"]) == vrank:
                return ESTContext.from_state(state)
        raise KeyError(f"no context for virtual rank {vrank}")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        return state_dict_to_bytes(
            {
                "version": FORMAT_VERSION,
                "est_contexts": self.est_contexts,
                "extra": self.extra,
                "params": self.params,
                "meta": self.meta,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        """Decode a checkpoint blob.

        Integrity problems (truncation, bit flips, undecodable payloads)
        surface as :class:`CheckpointCorruptError` from the serialization
        layer; schema problems (wrong version, missing sections) raise the
        same class so callers have a single "do not trust this snapshot"
        signal to catch and fall back on.
        """
        payload = state_dict_from_bytes(data)
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"unsupported checkpoint schema version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            return cls(
                est_contexts=payload["est_contexts"],
                extra=payload["extra"],
                params=payload["params"],
                meta=payload.get("meta", {}),
            )
        except KeyError as err:
            raise CheckpointCorruptError(
                f"checkpoint payload is missing required section {err}"
            ) from err

    # ------------------------------------------------------------------
    # disk persistence (what survives a real preemption)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Atomically write the checkpoint to ``path``.

        Written via a temp file + rename so a preemption *during* the
        checkpoint write can never leave a truncated file behind — a
        half-written checkpoint would otherwise silently void the bitwise
        guarantee on restore.
        """
        import os

        path = os.fspath(path)
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(self.to_bytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "Checkpoint":
        """Read a checkpoint previously written by :meth:`save`."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())
