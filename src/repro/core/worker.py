"""EasyScale worker: one process, one GPU, one CUDA context, many ESTs.

A worker executes its assigned ESTs in the time-slicing manner of §3.2:
for each global step it runs one *local step* (one mini-batch) per EST,
context-switching at mini-batch boundaries.  The worker owns the gradient
staging area — the only EST state that must leave the GPU — and models the
paper's overlap: the D2H copy of EST *i*'s gradients hides under EST
*i+1*'s compute, and the final EST's synchronization finds all sibling
gradients already staged (Fig. 13).

The numerical work happens against the *shared* model replica (one per
worker in the real system; one per job in this in-process simulation —
legitimate because replicas are bitwise identical between global steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs import flightrec
from repro.core.est import EasyScaleThread
from repro.ddp.ddp import micro_slices
from repro.hw.gpu import GPUType
from repro.hw.memory import check_fits, easyscale_memory_gb
from repro.hw.timing import context_switch_time, minibatch_time
from repro.models.registry import WorkloadSpec
from repro.nn.module import Module
from repro.nn.runtime import collect_bn_stats, use_rng
from repro.tensor.context import execution_context
from repro.tensor.kernels import KernelPolicy


@dataclass
class LocalStepResult:
    """Output of one EST's local step."""

    vrank: int
    loss: float
    grads: Dict[str, np.ndarray]
    bn_journal: list
    compute_time: float
    exposed_copy_time: float


def execute_local_step(
    model: Module,
    spec: WorkloadSpec,
    rng,
    x: np.ndarray,
    y: np.ndarray,
    *,
    dialect: str,
    policy: KernelPolicy,
    micro_batches: int,
    named_params: Dict[str, object],
    arrival_sink: Optional[List[str]] = None,
    param_names_by_id: Optional[Dict[int, str]] = None,
) -> Tuple[float, Dict[str, np.ndarray], list]:
    """One EST's forward/backward over one mini-batch.

    This is the single numerical definition of a local step: both the
    in-process :class:`EasyScaleWorker` path and the process-pool
    execution backend call exactly this function, which is what makes
    the serial/parallel bitwise contract hold by construction rather
    than by parallel-maintained copies of the math.

    ``arrival_sink``, when given, records gradient readiness order during
    backward (callers gate it to virtual rank 0, matching DDP's bucket
    reconstruction observer).  Returns ``(mean micro loss, grads by
    parameter name, BN journal)``; gradients are detached copies scaled
    for gradient accumulation.
    """
    from repro.tensor.tensor import leaf_grad_hook

    model.zero_grad()
    micro_losses = []
    with execution_context(dialect, policy), use_rng(rng), collect_bn_stats() as journal:
        for micro_x, micro_y in micro_slices(x, y, micro_batches):
            loss = spec.forward_loss(model, micro_x, micro_y)
            if arrival_sink is not None:
                def on_grad(tensor) -> None:
                    name = (param_names_by_id or {}).get(id(tensor))
                    if name is not None and name not in arrival_sink:
                        arrival_sink.append(name)

                with leaf_grad_hook(on_grad):
                    loss.backward()
            else:
                loss.backward()
            micro_losses.append(loss.item())
    scale = np.float32(1.0 / micro_batches)
    grads = {
        name: (param.grad * scale if micro_batches > 1 else param.grad.copy())
        for name, param in named_params.items()
        if param.grad is not None
    }
    return float(np.mean(micro_losses)), grads, journal


class EasyScaleWorker:
    """One physical worker hosting a slice of the job's ESTs."""

    def __init__(
        self,
        worker_id: int,
        gpu: GPUType,
        ests: List[EasyScaleThread],
        spec: WorkloadSpec,
        policy: KernelPolicy,
        validate_memory: bool = True,
        micro_batches: int = 1,
        slowdown: float = 1.0,
        fault_hook: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if not ests:
            raise ValueError(f"worker {worker_id} has no ESTs assigned")
        if micro_batches <= 0:
            raise ValueError("micro_batches must be positive")
        if slowdown <= 0:
            raise ValueError("slowdown must be positive")
        self.worker_id = worker_id
        self.gpu = gpu
        self.ests = list(ests)
        self.spec = spec
        self.policy = policy
        self.micro_batches = micro_batches
        #: multiplier on this worker's *modeled* time only (a degraded or
        #: contended device); numerics are untouched, so a slowed worker
        #: still produces bitwise-identical gradients — it just lets the
        #: profiler's straggler detection be exercised deterministically
        self.slowdown = slowdown
        #: called as ``fault_hook(worker_id, vrank)`` before every EST local
        #: step; a fault injector may raise from it to simulate the worker
        #: process dying mid-step (sibling ESTs have already staged state)
        self.fault_hook = fault_hook
        if validate_memory:
            check_fits(easyscale_memory_gb(spec, len(ests)), gpu)

    @property
    def vranks(self) -> List[int]:
        return [est.vrank for est in self.ests]

    def run_global_step(
        self,
        model: Module,
        load_batch: Callable[[int], Tuple[np.ndarray, np.ndarray]],
        named_params: Dict[str, object],
        arrival_sink: Optional[List[str]] = None,
        param_names_by_id: Optional[Dict[int, str]] = None,
    ) -> List[LocalStepResult]:
        """Execute one local step per EST, in local order, time-sliced.

        ``load_batch(vrank)`` supplies the EST's mini-batch; gradients are
        copied out ("swapped to CPU") and the model's grads cleared between
        ESTs, which is exactly the context switch.  If ``arrival_sink`` is
        given, the first EST's backward records gradient arrival order into
        it (bucket-reconstruction observation).
        """
        results: List[LocalStepResult] = []
        per_batch = minibatch_time(self.spec, self.gpu, self.policy) * self.slowdown
        switch = context_switch_time(self.spec, self.gpu) * self.slowdown
        for position, est in enumerate(self.ests):
            if self.fault_hook is not None:
                self.fault_hook(self.worker_id, est.vrank)
            flightrec.record(
                "worker.local_step",
                worker=self.worker_id,
                vrank=est.vrank,
                gpu=self.gpu.name,
                dialect=self.gpu.dialect,
            )
            with obs.span(
                "worker.local_step",
                cat="worker",
                est=per_batch,
                worker=self.worker_id,
                vrank=est.vrank,
                gpu=self.gpu.name,
            ):
                x, y = load_batch(est.vrank)
                mean_loss, grads, journal = execute_local_step(
                    model,
                    self.spec,
                    est.rng,
                    x,
                    y,
                    dialect=self.gpu.dialect,
                    policy=self.policy,
                    micro_batches=self.micro_batches,
                    named_params=named_params,
                    arrival_sink=arrival_sink if est.vrank == 0 else None,
                    param_names_by_id=param_names_by_id,
                )
                est.staged_grads = grads
            # copy of this EST's grads overlaps the *next* EST's compute;
            # only the last EST in the slice exposes its staging latency,
            # and even that hides under gradient synchronization setup
            exposed = switch if position < len(self.ests) - 1 else 0.0
            if exposed and obs.is_enabled():
                with obs.span(
                    "worker.context_switch",
                    cat="worker",
                    est=exposed,
                    worker=self.worker_id,
                    from_vrank=est.vrank,
                ):
                    pass
            results.append(
                LocalStepResult(
                    vrank=est.vrank,
                    loss=mean_loss,
                    grads=grads,
                    bn_journal=journal,
                    compute_time=per_batch,
                    exposed_copy_time=exposed,
                )
            )
        model.zero_grad()
        if obs.is_enabled():
            registry = obs.metrics()
            registry.counter("worker_local_steps_total", gpu=self.gpu.name).inc(len(self.ests))
            registry.histogram("worker_minibatch_sim_seconds", gpu=self.gpu.name).observe(
                per_batch
            )
        return results

    def step_time(self) -> float:
        """Simulated wall-clock of one global step on this worker."""
        per_batch = minibatch_time(self.spec, self.gpu, self.policy)
        switches = max(len(self.ests) - 1, 0) * context_switch_time(self.spec, self.gpu)
        return (len(self.ests) * per_batch + switches) * self.slowdown
