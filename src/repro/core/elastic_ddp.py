"""ElasticDDP: gradient aggregation over virtual ranks (§3.3 D1, §4).

The C++ library of the paper ("supports communication among multiple ESTs
for all-reducing gradients and building communication buckets consistently
during resource elasticity") maps to this module:

- gradients of all ``nEST`` logical workers are aggregated with the same
  ring association DDP-with-nEST-GPUs would use — over **virtual** ranks,
  so the physical worker count never enters the arithmetic;
- the bucket mapping starts in reverse-registration order, is rebuilt by
  arrival order after the job's very first mini-batch (matching DDP), and
  from then on is **pinned**: under D1 it is recorded in checkpoints and
  reinstated on restore with reconstruction disabled; without D1 a restore
  falls back to the initial mapping and re-runs reconstruction — the exact
  failure mode that makes D0 diverge after its first scale event (Fig. 9).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.comm.allreduce import allreduce_mean
from repro.comm.bucketing import (
    BucketAssignment,
    FlatBufferCache,
    build_initial_buckets,
    rebuild_from_arrival,
)


class ElasticDDP:
    """Bucketed virtual-rank gradient synchronization."""

    def __init__(
        self,
        param_order: Sequence[str],
        param_sizes: Mapping[str, int],
        param_shapes: Mapping[str, Tuple[int, ...]],
        num_ests: int,
        bucket_capacity_elems: int = 2048,
        allreduce_algorithm: str = "ring",
        record_mapping: bool = True,
    ) -> None:
        if num_ests <= 0:
            raise ValueError("num_ests must be positive")
        self.param_order = list(param_order)
        self.param_sizes = dict(param_sizes)
        self.param_shapes = dict(param_shapes)
        self.num_ests = num_ests
        self.capacity = bucket_capacity_elems
        self.algorithm = allreduce_algorithm
        self.record_mapping = record_mapping
        self.buckets = build_initial_buckets(self.param_order, self.param_sizes, self.capacity)
        #: True once arrival-order reconstruction has happened (or has been
        #: restored from a checkpoint) — reconstruction runs at most once
        self.reconstructed = False
        #: persistent flatten staging buffers, one per (bucket, vrank);
        #: invalidated automatically when the bucket layout changes
        self._flat_cache = FlatBufferCache()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def synchronize(
        self, grads_by_vrank: Sequence[Dict[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """All-reduce-average gradients across virtual ranks.

        ``grads_by_vrank[i]`` must be EST ``i``'s gradients; the list order
        *is* the communication rank order, so callers must pass virtual
        ranks 0..nEST-1 regardless of which workers produced them.
        """
        if len(grads_by_vrank) != self.num_ests:
            raise ValueError(
                f"expected gradients from {self.num_ests} ESTs, got {len(grads_by_vrank)}"
            )
        averaged: Dict[str, np.ndarray] = {}
        layout = self.buckets.layout_key()
        for bucket_idx, bucket_names in enumerate(self.buckets.buckets):
            present = [n for n in bucket_names if n in grads_by_vrank[0]]
            if not present:
                continue
            elems = sum(self.param_sizes[n] for n in present)
            with obs.span(
                "ddp.bucket_reduce", cat="comm", bucket=bucket_idx, elems=elems
            ):
                sub = BucketAssignment([present])
                # flatten into persistent per-(bucket, vrank) buffers: same
                # bytes as a fresh concatenate, without the per-step churn
                flats = [
                    sub.flatten_bucket_into(
                        0, grads, self._flat_cache.buffer(layout, bucket_idx, slot, elems)
                    )
                    for slot, grads in enumerate(grads_by_vrank)
                ]
                reduced = allreduce_mean(flats, self.algorithm)
                # unflatten_bucket returns owning contiguous copies, so the
                # averaged grads never alias the reused staging buffers
                averaged.update(sub.unflatten_bucket(0, reduced, self.param_shapes))
            if obs.is_enabled():
                obs.metrics().histogram(
                    "ddp_bucket_elems",
                    buckets=(256, 512, 1024, 2048, 4096, 8192, 16384, 65536),
                ).observe(elems)
        return averaged

    # ------------------------------------------------------------------
    # bucket reconstruction (DDP-compatible)
    # ------------------------------------------------------------------
    def maybe_reconstruct(self, arrival_order: Sequence[str]) -> bool:
        """Rebuild buckets from gradient arrival order, once per process
        lifetime (mirrors DDP's end-of-first-iteration rebuild).  Returns
        True if a rebuild happened."""
        if self.reconstructed:
            return False
        missing = [n for n in self.param_order if n not in arrival_order]
        self.buckets = rebuild_from_arrival(
            list(arrival_order) + missing, self.param_sizes, self.capacity
        )
        self.reconstructed = True
        return True

    # ------------------------------------------------------------------
    # D1 checkpoint plumbing
    # ------------------------------------------------------------------
    def export_mapping(self) -> Optional[Dict[str, object]]:
        """Bucket state for the checkpoint (None when D1 is off)."""
        if not self.record_mapping:
            return None
        return {"buckets": self.buckets.to_state(), "reconstructed": self.reconstructed}

    def import_mapping(self, state: Optional[Mapping[str, object]]) -> None:
        """Reinstate a recorded mapping and disable reconstruction (D1).

        With no recorded state (D0 restore), the mapping stays at the
        initial reverse-registration order and reconstruction re-runs
        after the next mini-batch — the divergence source of Fig. 9.
        """
        if state is None:
            return
        self.buckets = BucketAssignment.from_state(state["buckets"])  # type: ignore[arg-type]
        self.reconstructed = bool(state["reconstructed"])
