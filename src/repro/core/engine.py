"""EasyScaleEngine: elastic, accuracy-consistent training (§3.2–3.3).

The engine ties the pieces together: ``nEST`` logical workers execute on
however many physical workers the current :class:`WorkerAssignment`
provides, gradients are synchronized over virtual ranks by
:class:`~repro.core.elastic_ddp.ElasticDDP`, and on every resource change
an on-demand checkpoint carries the EST contexts + extra states + the
single parameter replica to the new configuration.

The headline contract, asserted by the integration tests: for a job with
``nEST = n`` under D1 (homogeneous) or D1+D2 (heterogeneous), the model
parameters after any schedule of scale-in/scale-out events are **bitwise
identical** to DDP training with ``n`` fixed GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.checkpoint import Checkpoint
from repro.core.determinism import DeterminismConfig, determinism_from_label
from repro.core.elastic_ddp import ElasticDDP
from repro.core.est import EasyScaleThread
from repro.core.worker import EasyScaleWorker
from repro.exec import ExecutionBackend, StepRequest, resolve_backend
from repro.data.dataloader import SharedDataLoader
from repro.data.datasets import Dataset
from repro.data.transforms import Transform
from repro.hw.gpu import GPUType, gpu_type
from repro.models.registry import WorkloadSpec
from repro.nn.module import Module
from repro.optim.lr_scheduler import LRScheduler
from repro.optim.optimizer import Optimizer
from repro.utils.fingerprint import fingerprint_arrays, fingerprint_state_dict
from repro.obs import flightrec
from repro.obs.profiler import OnlineProfiler
from repro.utils.rng import RNGBundle, derive_seed
from repro.utils.telemetry import RunLog

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core<->faults cycle
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class WorkerAssignment:
    """The EST-to-GPU mapping configuration produced by the intra-job scheduler.

    ``gpus[i]`` is worker ``i``'s device type; ``est_map[i]`` lists the
    virtual ranks hosted by worker ``i``.  Together the map must cover
    virtual ranks 0..nEST-1 exactly once.
    """

    gpus: Sequence[GPUType]
    est_map: Sequence[Sequence[int]]

    def __post_init__(self) -> None:
        if len(self.gpus) != len(self.est_map):
            raise ValueError("one EST list per GPU required")
        if not self.gpus:
            raise ValueError("assignment needs at least one worker")
        flat = [v for slice_ in self.est_map for v in slice_]
        if sorted(flat) != list(range(len(flat))):
            raise ValueError(f"EST map must cover ranks 0..n-1 exactly once, got {flat}")
        if any(not slice_ for slice_ in self.est_map):
            raise ValueError("every worker must host at least one EST")

    @property
    def num_ests(self) -> int:
        return sum(len(s) for s in self.est_map)

    @property
    def num_workers(self) -> int:
        return len(self.gpus)

    @classmethod
    def balanced(cls, gpus: Sequence[GPUType], num_ests: int) -> "WorkerAssignment":
        """Contiguous, capability-agnostic split of ESTs over workers."""
        if not gpus:
            raise ValueError("need at least one GPU")
        if num_ests < len(gpus):
            raise ValueError(f"{num_ests} ESTs cannot occupy {len(gpus)} workers")
        base, rem = divmod(num_ests, len(gpus))
        est_map: List[List[int]] = []
        cursor = 0
        for i in range(len(gpus)):
            count = base + (1 if i < rem else 0)
            est_map.append(list(range(cursor, cursor + count)))
            cursor += count
        return cls(gpus=tuple(gpus), est_map=tuple(tuple(s) for s in est_map))

    @classmethod
    def named(cls, names: Sequence[str], num_ests: int) -> "WorkerAssignment":
        """Convenience: balanced assignment from GPU type names."""
        return cls.balanced([gpu_type(n) for n in names], num_ests)


@dataclass
class EasyScaleJobConfig:
    """Job-level configuration fixed at submission (model-designing stage)."""

    num_ests: int
    seed: int = 0
    determinism: DeterminismConfig = field(
        default_factory=lambda: determinism_from_label("D1")
    )
    batch_size: int = 8
    bucket_capacity_elems: int = 2048
    allreduce_algorithm: str = "ring"
    num_data_workers: int = 2
    validate_memory: bool = False
    #: gradient accumulation per EST (activation memory shrinks by the
    #: same factor — lets big effective batches fit small GPUs)
    micro_batches: int = 1
    #: commit cadence: every k-th step carries ``StepRequest.commit=True``
    #: and flushes any backend-deferred RNG/BN write-back into the parent
    #: state.  1 (default) commits every step — the serial-identical
    #: behaviour; larger values let the pool backend skip per-step
    #: write-back between boundaries.  Checkpoints, evaluation, and the
    #: end of every training drive force a flush regardless, so any state
    #: the job can observe is always at a committed boundary.
    batches_per_commit: int = 1

    def __post_init__(self) -> None:
        if self.num_ests <= 0:
            raise ValueError("num_ests must be positive")
        if self.micro_batches <= 0:
            raise ValueError("micro_batches must be positive")
        if self.batches_per_commit <= 0:
            raise ValueError("batches_per_commit must be positive")
        if self.batch_size % self.micro_batches != 0:
            raise ValueError(
                f"batch_size {self.batch_size} not divisible into "
                f"{self.micro_batches} micro-batches"
            )


class EasyScaleEngine:
    """Run one EasyScale job over a (re)configurable set of workers."""

    def __init__(
        self,
        spec: WorkloadSpec,
        dataset: Dataset,
        config: EasyScaleJobConfig,
        optimizer_factory: Callable[[Module], Optimizer],
        assignment: WorkerAssignment,
        transform: Optional[Transform] = None,
        scheduler_factory: Optional[Callable[[Optimizer], LRScheduler]] = None,
        telemetry: Optional["RunLog"] = None,
        profiler: Optional["OnlineProfiler"] = None,
        fault_injector: Optional["FaultInjector"] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        _restore: Optional[Checkpoint] = None,
    ) -> None:
        if assignment.num_ests != config.num_ests:
            raise ValueError(
                f"assignment covers {assignment.num_ests} ESTs, job declares {config.num_ests}"
            )
        self.spec = spec
        self.config = config
        self.dataset = dataset
        self.transform = transform
        self.optimizer_factory = optimizer_factory
        self.scheduler_factory = scheduler_factory
        self.telemetry = telemetry
        # passive observer of per-worker step times; never touches model,
        # RNG, or loader state, so attaching one preserves bitwise results
        self.profiler = profiler
        # same contract: the injector only *interrupts* (raises) at
        # deterministic points — attaching one never perturbs numerics
        self.fault_injector = fault_injector
        # execution backends are interchangeable by contract (bitwise-equal
        # results); the engine never closes one — a pool is shared across
        # reconfigure/recovery rebuilds and closed by whoever created it
        self.backend = resolve_backend(backend)

        self.model = spec.build_model(RNGBundle(derive_seed(config.seed, "model")))
        self.optimizer = optimizer_factory(self.model)
        self.scheduler = scheduler_factory(self.optimizer) if scheduler_factory else None
        self.loader = SharedDataLoader(
            dataset,
            num_replicas=config.num_ests,
            batch_size=config.batch_size,
            seed=config.seed,
            num_workers=config.num_data_workers,
            transform=transform,
        )
        self._named_params = dict(self.model.named_parameters())
        self._param_names_by_id = {id(p): n for n, p in self._named_params.items()}
        self.elastic_ddp = ElasticDDP(
            param_order=list(self._named_params),
            param_sizes={n: p.data.size for n, p in self._named_params.items()},
            param_shapes={n: p.data.shape for n, p in self._named_params.items()},
            num_ests=config.num_ests,
            bucket_capacity_elems=config.bucket_capacity_elems,
            allreduce_algorithm=config.allreduce_algorithm,
            record_mapping=config.determinism.record_bucket_mapping,
        )

        self.ests = [EasyScaleThread(config.seed, v) for v in range(config.num_ests)]
        self.epoch = 0
        self.step_in_epoch = 0
        self.global_step = 0
        self.sim_time = 0.0
        self.loss_history: List[List[float]] = []

        if _restore is not None:
            self._load_checkpoint(_restore)

        self._build_workers(assignment)

    # ------------------------------------------------------------------
    # worker construction / reconfiguration
    # ------------------------------------------------------------------
    def _build_workers(self, assignment: WorkerAssignment) -> None:
        self.assignment = assignment
        flightrec.set_context(
            determinism=self.config.determinism.label,
            dialects=[g.dialect for g in assignment.gpus],
            gpus=[g.name for g in assignment.gpus],
            num_ests=self.config.num_ests,
            backend=self.backend.name,
        )
        flightrec.record(
            "engine.scale_event",
            step=self.global_step,
            gpus=[g.name for g in assignment.gpus],
            dialects=[g.dialect for g in assignment.gpus],
        )
        if self.telemetry is not None:
            self.telemetry.scale_event(
                self.global_step, [g.name for g in assignment.gpus]
            )
        if obs.is_enabled():
            obs.instant(
                "engine.scale_event",
                cat="engine",
                step=self.global_step,
                gpus=[g.name for g in assignment.gpus],
            )
            obs.metrics().counter("engine_scale_events_total").inc()
        if self.profiler is not None:
            self.profiler.on_scale_event([g.name for g in assignment.gpus])
        est_by_vrank = {est.vrank: est for est in self.ests}
        self.workers = [
            EasyScaleWorker(
                worker_id=i,
                gpu=gpu,
                ests=[est_by_vrank[v] for v in vranks],
                spec=self.spec,
                policy=self.config.determinism.kernel_policy,
                validate_memory=self.config.validate_memory,
                micro_batches=self.config.micro_batches,
                fault_hook=(
                    self.fault_injector.on_local_step
                    if self.fault_injector is not None
                    else None
                ),
            )
            for i, (gpu, vranks) in enumerate(zip(assignment.gpus, assignment.est_map))
        ]

    def reconfigure(self, assignment: WorkerAssignment) -> "EasyScaleEngine":
        """Scale in/out: on-demand checkpoint, then resume on new workers.

        Returns a fresh engine (the old one is dead, like the restarted
        processes of the real system).  Bitwise continuity is guaranteed
        under D1; under bare D0 the gradient-bucket mapping is lost, which
        is the paper's demonstrated divergence.
        """
        ckpt = self.checkpoint()
        return EasyScaleEngine.from_checkpoint(
            self.spec,
            self.dataset,
            ckpt,
            self.optimizer_factory,
            assignment,
            transform=self.transform,
            scheduler_factory=self.scheduler_factory,
            telemetry=self.telemetry,
            profiler=self.profiler,
            fault_injector=self.fault_injector,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    @property
    def steps_per_epoch(self) -> int:
        return self.loader.steps_per_epoch

    def run_global_step(self) -> List[float]:
        """One synchronized global step across all ESTs; returns losses
        ordered by virtual rank.

        Any exception escaping the step — an injected fault signal, a
        numerics bug, a backend failure — dumps a flight-recorder
        postmortem bundle before propagating, so even a run with all
        tracing off leaves evidence naming the failing step and worker.
        """
        try:
            with obs.span(
                "engine.global_step",
                cat="engine",
                step=self.global_step,
                backend=self.backend.name,
            ):
                return self._run_global_step()
        except Exception as exc:
            self._dump_crash(exc)
            raise

    def _dump_crash(self, exc: BaseException) -> None:
        """Write a postmortem bundle for an exception escaping a step."""
        worker = getattr(exc, "worker_id", None)
        event = getattr(exc, "event", None)
        crash = {
            "step": self.global_step,
            "worker": worker,
            "vrank": getattr(exc, "vrank", None),
            "kind": getattr(event, "kind", None),
            "dialect": (
                self.assignment.gpus[worker].dialect
                if worker is not None and worker < len(self.assignment.gpus)
                else None
            ),
        }
        flightrec.record(
            "engine.crash",
            step=crash["step"],
            worker=crash["worker"],
            vrank=crash["vrank"],
            fault=crash["kind"],
            dialect=crash["dialect"],
        )
        try:
            flightrec.dump("exception", exc=exc, crash=crash)
        except OSError:  # postmortems must never mask the original error
            pass

    def _run_global_step(self) -> List[float]:
        if self.fault_injector is not None:
            # may raise a FaultSignal (e.g. node preemption) before any
            # batch is loaded — the supervising controller catches it
            self.fault_injector.on_step_boundary(self)
        self.loader.set_epoch(self.epoch)
        arrival: Optional[List[str]] = (
            [] if not self.elastic_ddp.reconstructed else None
        )
        cadence = self.config.batches_per_commit
        # per-step audits fingerprint EST RNG states, so audited runs
        # always commit — the fingerprints must match the serial loop's
        commit = (
            cadence <= 1
            or (self.global_step + 1) % cadence == 0
            or (obs.is_enabled() and obs.audit_trail() is not None)
        )
        request = StepRequest(
            workers=self.workers,
            model=self.model,
            spec=self.spec,
            seed=self.config.seed,
            named_params=self._named_params,
            param_names_by_id=self._param_names_by_id,
            load_batch=lambda vrank: self.loader.load(vrank, self.epoch, self.step_in_epoch),
            arrival_sink=arrival,
            layout=self.elastic_ddp.buckets,
            commit=commit,
        )
        results = self.backend.run_step(request)
        step_time = 0.0
        for worker in self.workers:
            step_time = max(step_time, worker.step_time())
            if self.profiler is not None:
                self.profiler.observe_worker_step(
                    self.global_step,
                    worker.worker_id,
                    worker.gpu.name,
                    len(worker.ests),
                    worker.step_time(),
                )
                hosted = set(worker.vranks)
                for result in results:
                    if result.vrank in hosted:
                        self.profiler.observe_est_step(
                            self.global_step, result.vrank, result.compute_time
                        )

        results.sort(key=lambda r: r.vrank)
        # simulated time: slowest worker (sync barrier) + a simple
        # bandwidth-model term for the cross-worker all-reduce
        comm = self.spec.params_gb / 5.0 if len(self.workers) > 1 else self.spec.params_gb / 20.0
        with obs.span("engine.sync", cat="engine", est=comm, num_ests=self.config.num_ests):
            averaged = self.elastic_ddp.synchronize([r.grads for r in results])
        with obs.span("engine.optimizer", cat="engine"):
            for name, grad in averaged.items():
                self._named_params[name].grad = grad
            for result in results:  # virtual-rank order: canonical BN folding
                for layer, mean, var in result.bn_journal:
                    layer.fold_stats(mean, var)
            self.optimizer.step()
            self.model.zero_grad()
        for est in self.ests:
            est.staged_grads = None

        if arrival is not None:
            self.elastic_ddp.maybe_reconstruct(arrival)

        self.sim_time += step_time + comm

        self.global_step += 1
        self.step_in_epoch += 1
        if self.step_in_epoch >= self.steps_per_epoch:
            self.step_in_epoch = 0
            self.epoch += 1
            if self.scheduler is not None:
                self.scheduler.step()
        losses = [r.loss for r in results]
        self.loss_history.append(losses)
        flightrec.record(
            "engine.step",
            step=self.global_step - 1,
            epoch=self.epoch,
            sim_time=self.sim_time,
            loss=losses[-1],
        )
        if self.telemetry is not None:
            self.telemetry.step(
                self.global_step - 1, losses, epoch=self.epoch, sim_time=self.sim_time
            )
        if obs.is_enabled():
            registry = obs.metrics()
            registry.counter("engine_steps_total").inc()
            registry.gauge("engine_sim_time_seconds").set(self.sim_time)
            registry.histogram("engine_step_sim_seconds").observe(step_time + comm)
            if obs.audit_trail() is not None:
                self._audit_step(averaged)
        return losses

    def _audit_step(self, averaged: Dict[str, np.ndarray]) -> None:
        """Record this step's determinism fingerprints (params after the
        optimizer update, gradients at bucket granularity, RNG, cursor)."""
        bucket_fps: Dict[str, str] = {}
        for idx, names in enumerate(self.elastic_ddp.buckets.buckets):
            arrays = [averaged[n] for n in names if n in averaged]
            if arrays:
                bucket_fps[str(idx)] = fingerprint_arrays(arrays)
        record = obs.audit_trail().capture(
            step=self.global_step - 1,
            params=fingerprint_state_dict(self.model.state_dict()),
            buckets=bucket_fps,
            rng=obs.fingerprint_rng_states([est.rng.get_state() for est in self.ests]),
            loader={"epoch": self.epoch, "step_in_epoch": self.step_in_epoch},
            policy=self.config.determinism.label,
            dialects=[g.dialect for g in self.assignment.gpus],
        )
        flightrec.note_audit(record)

    def train_steps(self, num_steps: int) -> List[float]:
        """Run ``num_steps`` global steps; returns the last EST's losses."""
        losses = [self.run_global_step()[-1] for _ in range(num_steps)]
        # leave the job at a committed boundary whatever the cadence
        self.backend.commit()
        return losses

    def train_epochs(self, num_epochs: int) -> None:
        target = self.epoch + num_epochs
        while self.epoch < target:
            self.run_global_step()
        self.backend.commit()

    def evaluate(self, dataset: Dataset, num_samples: int = 256) -> float:
        """Task-appropriate quality metric on a held-out dataset.

        Runs in eval/no-grad mode under a fixed execution context, so it
        never perturbs the training state; the result is logged to
        telemetry when a sink is attached.
        """
        from repro.ddp.metrics import evaluate_workload

        # eval-mode BN reads running stats: flush any deferred folding
        self.backend.commit()
        score = evaluate_workload(self.spec, self.model, dataset, num_samples)
        if self.telemetry is not None:
            self.telemetry.eval(self.global_step, "accuracy", score)
        return score

    # ------------------------------------------------------------------
    # on-demand checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Snapshot at a global-step boundary (the only legal point)."""
        flightrec.record("engine.checkpoint_save", step=self.global_step)
        # a checkpoint snapshots EST RNG + BN state: flush deferred
        # write-back so the snapshot is at a committed boundary
        self.backend.commit()
        with obs.span("engine.checkpoint_save", cat="engine", step=self.global_step):
            return self._checkpoint()

    def _checkpoint(self) -> Checkpoint:
        return Checkpoint(
            est_contexts=[est.save_context().to_state() for est in self.ests],
            extra={
                "epoch": self.epoch,
                "step_in_epoch": self.step_in_epoch,
                "global_step": self.global_step,
                "bucket_mapping": self.elastic_ddp.export_mapping(),
                "loader": self.loader.export_state(),
                "determinism": self.config.determinism.label,
            },
            params={
                "model": self.model.state_dict(),
                "optimizer": self.optimizer.state_dict(),
                "scheduler": self.scheduler.state_dict() if self.scheduler else None,
            },
            meta={
                "workload": self.spec.name,
                "num_ests": self.config.num_ests,
                "seed": self.config.seed,
                "batch_size": self.config.batch_size,
                "bucket_capacity_elems": self.config.bucket_capacity_elems,
                "allreduce_algorithm": self.config.allreduce_algorithm,
                "num_data_workers": self.config.num_data_workers,
                "micro_batches": self.config.micro_batches,
                "batches_per_commit": self.config.batches_per_commit,
            },
        )

    def _load_checkpoint(self, ckpt: Checkpoint) -> None:
        flightrec.record(
            "engine.checkpoint_restore", step=int(ckpt.extra["global_step"])
        )
        with obs.span(
            "engine.checkpoint_restore", cat="engine", step=int(ckpt.extra["global_step"])
        ):
            self._restore_checkpoint(ckpt)

    def _restore_checkpoint(self, ckpt: Checkpoint) -> None:
        # the restored state predates any steps whose write-back the
        # backend still banks; applying them later would corrupt it
        self.backend.discard_pending()
        if ckpt.num_ests != self.config.num_ests:
            raise ValueError(
                f"checkpoint has {ckpt.num_ests} ESTs, job declares {self.config.num_ests}"
            )
        if ckpt.meta.get("workload") not in (None, self.spec.name):
            raise ValueError(
                f"checkpoint belongs to workload {ckpt.meta.get('workload')!r}"
            )
        self.model.load_state_dict(ckpt.params["model"])
        self.optimizer.load_state_dict(ckpt.params["optimizer"])
        if self.scheduler is not None and ckpt.params.get("scheduler") is not None:
            self.scheduler.load_state_dict(ckpt.params["scheduler"])
        for est in self.ests:
            est.load_context(ckpt.context_for(est.vrank))
        self.epoch = int(ckpt.extra["epoch"])
        self.step_in_epoch = int(ckpt.extra["step_in_epoch"])
        self.global_step = int(ckpt.extra["global_step"])
        self.elastic_ddp.import_mapping(ckpt.extra.get("bucket_mapping"))
        self.loader.import_state(ckpt.extra["loader"])
        self.loader.set_epoch(self.epoch)

    @classmethod
    def from_checkpoint(
        cls,
        spec: WorkloadSpec,
        dataset: Dataset,
        ckpt: Checkpoint,
        optimizer_factory: Callable[[Module], Optimizer],
        assignment: WorkerAssignment,
        transform: Optional[Transform] = None,
        scheduler_factory: Optional[Callable[[Optimizer], LRScheduler]] = None,
        config: Optional[EasyScaleJobConfig] = None,
        telemetry: Optional["RunLog"] = None,
        profiler: Optional["OnlineProfiler"] = None,
        fault_injector: Optional["FaultInjector"] = None,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> "EasyScaleEngine":
        """Resume a job from an on-demand checkpoint on a new allocation."""
        if config is None:
            config = EasyScaleJobConfig(
                num_ests=ckpt.num_ests,
                seed=int(ckpt.meta.get("seed", 0)),
                determinism=determinism_from_label(ckpt.extra.get("determinism", "D1")),
                batch_size=int(ckpt.meta.get("batch_size", 8)),
                bucket_capacity_elems=int(ckpt.meta.get("bucket_capacity_elems", 2048)),
                allreduce_algorithm=str(ckpt.meta.get("allreduce_algorithm", "ring")),
                num_data_workers=int(ckpt.meta.get("num_data_workers", 2)),
                micro_batches=int(ckpt.meta.get("micro_batches", 1)),
                batches_per_commit=int(ckpt.meta.get("batches_per_commit", 1)),
            )
        return cls(
            spec,
            dataset,
            config,
            optimizer_factory,
            assignment,
            transform=transform,
            scheduler_factory=scheduler_factory,
            telemetry=telemetry,
            profiler=profiler,
            fault_injector=fault_injector,
            backend=backend,
            _restore=ckpt,
        )
