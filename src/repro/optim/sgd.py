"""SGD with momentum and weight decay (PyTorch update order)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Stochastic gradient descent.

    Follows PyTorch semantics exactly (weight decay folded into the
    gradient, then momentum buffer update, then parameter update), because
    the bitwise-equality experiments compare against "what DDP would have
    produced" and any re-association here would break them.
    """

    def __init__(
        self,
        named_params: Iterable[Tuple[str, Parameter]],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(named_params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov

    def step(self) -> None:
        lr = np.float32(self.lr)
        wd = np.float32(self.weight_decay)
        mu = np.float32(self.momentum)
        for name, param in self.named_params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + wd * param.data
            if self.momentum:
                buf = self._slot(name, "momentum", param.data)
                buf = mu * buf + grad
                self._set_slot(name, "momentum", buf)
                grad = grad + mu * buf if self.nesterov else buf
            param.data = param.data - lr * grad

    def _extra_state(self):
        return {
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
        }

    def _load_extra_state(self, extra) -> None:
        if extra:
            self.momentum = float(extra["momentum"])
            self.weight_decay = float(extra["weight_decay"])
            self.nesterov = bool(extra["nesterov"])
