"""Optimizers and LR schedulers (the reproduction's ``torch.optim``)."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.lr_scheduler import CosineAnnealingLR, LRScheduler, MultiStepLR, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
]
