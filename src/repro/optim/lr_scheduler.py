"""Learning-rate schedulers.

``StepLR``'s decay factor is the paper's Fig. 4 hyper-parameter **gamma**:
with deterministic fixed-resource training the effect of gamma on the loss
curve is legible; under accuracy-inconsistent elastic training it is buried
in noise.  Scheduler state (step counter, base LR) is checkpointed as part
of the "parameters" replica.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base: epoch-stepped schedule mutating ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr()

    def state_dict(self) -> Dict[str, float]:
        return {"base_lr": self.base_lr, "last_epoch": self.last_epoch}

    def load_state_dict(self, state: Dict[str, float]) -> None:
        self.base_lr = float(state["base_lr"])
        self.last_epoch = int(state["last_epoch"])
        self.optimizer.lr = self.get_lr() if self.last_epoch > 0 else self.base_lr


class StepLR(LRScheduler):
    """Decay LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)

    def state_dict(self):
        state = super().state_dict()
        state.update({"step_size": self.step_size, "gamma": self.gamma})
        return state

    def load_state_dict(self, state) -> None:
        self.step_size = int(state["step_size"])
        self.gamma = float(state["gamma"])
        super().load_state_dict(state)


class MultiStepLR(LRScheduler):
    """Decay LR by ``gamma`` at each epoch in ``milestones``."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be increasing")
        super().__init__(optimizer)
        self.milestones: List[int] = list(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if m <= self.last_epoch)
        return self.base_lr * self.gamma**passed

    def state_dict(self):
        state = super().state_dict()
        state.update({"milestones": list(self.milestones), "gamma": self.gamma})
        return state

    def load_state_dict(self, state) -> None:
        self.milestones = list(state["milestones"])
        self.gamma = float(state["gamma"])
        super().load_state_dict(state)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + (self.base_lr - self.eta_min) * 0.5 * (1 + math.cos(math.pi * progress))

    def state_dict(self):
        state = super().state_dict()
        state.update({"t_max": self.t_max, "eta_min": self.eta_min})
        return state

    def load_state_dict(self, state) -> None:
        self.t_max = int(state["t_max"])
        self.eta_min = float(state["eta_min"])
        super().load_state_dict(state)
