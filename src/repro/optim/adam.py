"""Adam / AdamW optimizers."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; ``decoupled=True`` gives AdamW."""

    def __init__(
        self,
        named_params: Iterable[Tuple[str, Parameter]],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = False,
    ) -> None:
        super().__init__(named_params, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.decoupled = decoupled
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        b1, b2 = np.float32(self.betas[0]), np.float32(self.betas[1])
        lr = np.float32(self.lr)
        eps = np.float32(self.eps)
        wd = np.float32(self.weight_decay)
        bias1 = np.float32(1.0 - self.betas[0] ** t)
        bias2 = np.float32(1.0 - self.betas[1] ** t)
        for name, param in self.named_params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + wd * param.data
            m = self._slot(name, "exp_avg", param.data)
            v = self._slot(name, "exp_avg_sq", param.data)
            m = b1 * m + (np.float32(1.0) - b1) * grad
            v = b2 * v + (np.float32(1.0) - b2) * grad * grad
            self._set_slot(name, "exp_avg", m)
            self._set_slot(name, "exp_avg_sq", v)
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + eps)
            if self.weight_decay and self.decoupled:
                update = update + wd * param.data
            param.data = param.data - lr * update

    def _extra_state(self):
        return {
            "betas": self.betas,
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "decoupled": self.decoupled,
            "step_count": self._step_count,
        }

    def _load_extra_state(self, extra) -> None:
        if extra:
            self.betas = tuple(extra["betas"])  # type: ignore[assignment]
            self.eps = float(extra["eps"])
            self.weight_decay = float(extra["weight_decay"])
            self.decoupled = bool(extra["decoupled"])
            self._step_count = int(extra["step_count"])


class AdamW(Adam):
    """Decoupled weight-decay Adam (transformer default)."""

    def __init__(self, named_params, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.01) -> None:
        super().__init__(named_params, lr, betas, eps, weight_decay, decoupled=True)
