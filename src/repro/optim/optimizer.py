"""Optimizer base class with bitwise-serializable state.

Optimizer state (momentum buffers, Adam moments) is part of the "parameters"
third of the on-demand checkpoint (§3.2): one replica per EasyScale worker,
shared by all ESTs, updated only at global-step boundaries.  States are
keyed by parameter *name* (not object identity) so a checkpoint written by a
4-GPU run restores exactly into a 1-GPU run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base: named parameters, step/zero_grad, bitwise state dicts."""

    def __init__(self, named_params: Iterable[Tuple[str, Parameter]], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.named_params: List[Tuple[str, Parameter]] = list(named_params)
        if not self.named_params:
            raise ValueError("optimizer got an empty parameter list")
        names = [n for n, _ in self.named_params]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names passed to optimizer")
        self.lr = float(lr)
        self.state: Dict[str, Dict[str, np.ndarray]] = {}

    def zero_grad(self) -> None:
        for _, param in self.named_params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "lr": self.lr,
            "state": {
                name: {k: np.asarray(v).copy() for k, v in slots.items()}
                for name, slots in self.state.items()
            },
            "extra": self._extra_state(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.lr = float(state["lr"])
        self.state = {
            name: {k: np.asarray(v).copy() for k, v in slots.items()}
            for name, slots in state["state"].items()  # type: ignore[union-attr]
        }
        self._load_extra_state(state.get("extra", {}))

    def _extra_state(self) -> Dict[str, object]:
        return {}

    def _load_extra_state(self, extra: Dict[str, object]) -> None:
        pass

    def _slot(self, name: str, key: str, like: np.ndarray) -> np.ndarray:
        """Get-or-create a state buffer for parameter ``name``."""
        slots = self.state.setdefault(name, {})
        if key not in slots:
            slots[key] = np.zeros_like(like)
        return slots[key]

    def _set_slot(self, name: str, key: str, value: np.ndarray) -> None:
        self.state.setdefault(name, {})[key] = value
