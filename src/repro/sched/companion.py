"""The companion module: a database of scheduling plans per job (§3.4).

For a job with ``maxP`` ESTs and a capability profile ``C_i`` the
companion enumerates EST-to-GPU-type mappings, scores them with the
Eq. (1) model, and answers two queries for the intra-job scheduler:

- ``best_plans(available)`` — top-K feasible plans under the currently
  free GPUs (Role-1/Role-2 input);
- ``report_measurement(type, est, meas)`` — bias correction: when reported
  throughput diverges from the estimate, the database re-fits that type's
  capability and re-scores (the "actively update the database once it has
  monitored significant biases" behaviour).

Plans balance load by assigning ESTs proportionally to capability, with
floor/ceil integrality choices enumerated (the "quantum property of EST
allocation" the paper calls out).

Fast path
---------

The full enumeration is ``O(max_gpus_per_type^|types|)`` and the §3.4
proposal loop issues it once per (GPU-type × chunk) per round, so the
database memoizes aggressively:

- results are cached under the *normalized* availability vector (see
  :func:`~repro.sched.plancache.availability_key`), invalidated whenever
  the capability table's **generation** counter bumps — which every
  mutation path (``report_measurement``, ``apply_calibration``, direct
  item assignment) does automatically via :class:`_CapabilityTable`;
- top-K searches apply **dominance pruning**: a GPU-count vector whose
  aggregate capability ``Σ N_i·C_i`` — an upper bound on Eq. (1d)
  throughput, since waste ≥ 0 — cannot beat the current K-th best is
  never expanded into EST splits.  Visiting vectors in decreasing-bound
  order turns the check into an early exit;
- :meth:`best_plan_delta` scores a scale-out hypothesis ``owned +
  chunk×gtype`` incrementally: the hypothetical plan space is the owned
  space (already cached from Role-1) plus only the *slab* of vectors
  using more than the owned count of ``gtype``.

All three return **exactly** what the seed brute-force enumerator
(:meth:`enumerate_plans_reference`) returns — same plans, same ranking —
which the property suite in ``tests/sched/test_companion_fastpath.py``
asserts.  To make that contract exact under ties, ranking uses the total
order ``(-throughput, total_gpus, alloc)``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.sched.perfmodel import Plan, ScoredPlan, estimated_throughput
from repro.sched.plancache import MISS, PlanCache, availability_key


def _rank_key(scored: ScoredPlan) -> Tuple[float, int, Tuple[Tuple[str, int, int], ...]]:
    """Total order on scored plans: throughput desc, GPUs asc, alloc asc.

    The trailing ``alloc`` component makes ranking independent of
    enumeration order, so the cached/pruned search and the brute-force
    reference are comparable element-by-element.
    """
    return (-scored.throughput, scored.plan.total_gpus, scored.plan.alloc)


class _CapabilityTable(dict):
    """Capability dict that bumps the owner's cache generation on mutation.

    Call sites mutate the table directly (``companion.capability[t] = r``
    in :meth:`IntraJobScheduler.apply_calibration`, ``*=`` in
    :meth:`CompanionModule.report_measurement`), so invalidation must live
    on the container itself — no mutation path may leave a stale plan
    cache behind.
    """

    __slots__ = ("_owner",)

    def __init__(self, data: Mapping[str, float], owner: "CompanionModule") -> None:
        self._owner = owner
        super().__init__(data)

    def __setitem__(self, key: str, value: float) -> None:
        super().__setitem__(key, value)
        self._owner._bump_generation()

    def __delitem__(self, key: str) -> None:
        super().__delitem__(key)
        self._owner._bump_generation()

    def update(self, *args, **kwargs) -> None:  # type: ignore[override]
        super().update(*args, **kwargs)
        self._owner._bump_generation()

    def pop(self, *args):  # type: ignore[override]
        value = super().pop(*args)
        self._owner._bump_generation()
        return value

    def clear(self) -> None:
        super().clear()
        self._owner._bump_generation()

    def setdefault(self, key: str, default: float = None):  # type: ignore[override]
        if key not in self:
            self._owner._bump_generation()
        return super().setdefault(key, default)


class CompanionModule:
    """Plan database + capability profile for one job."""

    def __init__(
        self,
        max_p: int,
        capability: Mapping[str, float],
        homogeneous_only: bool = False,
        bias_threshold: float = 0.25,
        max_gpus_per_type: int = 16,
        correction_band: Tuple[float, float] = (0.5, 2.0),
        cache_size: int = 512,
    ) -> None:
        if max_p <= 0:
            raise ValueError("maxP must be positive")
        if not capability:
            raise ValueError("capability profile is empty")
        lo, hi = correction_band
        if not (0.0 < lo <= 1.0 <= hi):
            raise ValueError(
                f"correction band must satisfy 0 < lo <= 1 <= hi, got {correction_band}"
            )
        self.max_p = max_p
        self.homogeneous_only = homogeneous_only
        self.bias_threshold = bias_threshold
        self.max_gpus_per_type = max_gpus_per_type
        #: per-report multiplicative correction clamp: one garbage
        #: measurement (a stall mid-reconfiguration) may pull ``C_i`` by at
        #: most this factor, never collapse it toward 0 or infinity
        self.correction_band = (float(lo), float(hi))
        #: (gtype, estimate, measurement, clamped) tuples observed
        self.observations: List[Tuple[str, float, float, bool]] = []
        # --- fast path state (before the capability table, whose
        # constructor may bump the generation) ---
        self._generation = 0
        self._full_cache = PlanCache("companion_full", maxsize=cache_size)
        self._topk_cache = PlanCache("companion_topk", maxsize=cache_size)
        self._delta_cache = PlanCache("companion_delta", maxsize=cache_size)
        #: count vectors whose EST expansion the dominance bound skipped
        self.vectors_pruned = 0
        #: count vectors fully expanded and scored
        self.vectors_scored = 0
        self.capability: Dict[str, float] = _CapabilityTable(capability, self)

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Bumped on every capability mutation; keys cache validity."""
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1
        self._full_cache.invalidate()
        self._topk_cache.invalidate()
        self._delta_cache.invalidate()

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/invalidation/eviction counts for all three caches."""
        return {
            "full": self._full_cache.stats.as_dict(),
            "topk": self._topk_cache.stats.as_dict(),
            "delta": self._delta_cache.stats.as_dict(),
        }

    def _key(self, available: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
        return availability_key(
            available, self.capability, self.max_p, self.max_gpus_per_type
        )

    # ------------------------------------------------------------------
    # plan enumeration
    # ------------------------------------------------------------------
    def _candidate_counts(
        self, available: Mapping[str, int]
    ) -> Iterable[Dict[str, int]]:
        """Yield candidate GPU-count vectors under the availability caps."""
        types = [t for t in sorted(available) if available[t] > 0 and t in self.capability]
        if not types:
            return
        if self.homogeneous_only:
            for gtype in types:
                cap = min(available[gtype], self.max_p, self.max_gpus_per_type)
                for n in range(1, cap + 1):
                    yield {gtype: n}
            return
        ranges = [
            range(0, min(available[t], self.max_p, self.max_gpus_per_type) + 1) for t in types
        ]
        for counts in itertools.product(*ranges):
            if sum(counts) == 0 or sum(counts) > self.max_p:
                continue
            yield {t: c for t, c in zip(types, counts) if c > 0}

    def _ests_for_counts(self, counts: Mapping[str, int]) -> Iterable[Dict[str, int]]:
        """Proportional-to-capability EST split, floor/ceil enumerated."""
        types = sorted(counts)
        total_cap = sum(counts[t] * self.capability[t] for t in types)
        if total_cap <= 0:
            return
        ideal = {t: self.max_p * self.capability[t] / total_cap for t in types}
        choices = []
        for t in types:
            lo = max(1, int(ideal[t]))
            options = {lo, lo + 1}
            choices.append(sorted(options))
        for combo in itertools.product(*choices):
            yield {t: a for t, a in zip(types, combo)}

    def _score_counts(
        self, counts: Mapping[str, int], seen: set
    ) -> List[ScoredPlan]:
        """Expand one count vector into scored, feasible, deduped plans."""
        scored: List[ScoredPlan] = []
        for ests in self._ests_for_counts(counts):
            plan = Plan.build({t: (counts[t], ests[t]) for t in counts}, self.max_p)
            if not plan.is_feasible:
                continue
            if plan.alloc in seen:
                continue
            seen.add(plan.alloc)
            throughput = estimated_throughput(plan, self.capability)
            if throughput <= 0:
                continue
            scored.append(ScoredPlan(plan=plan, throughput=throughput))
        self.vectors_scored += 1
        return scored

    def enumerate_plans_reference(
        self, available: Mapping[str, int]
    ) -> List[ScoredPlan]:
        """The seed brute-force enumerator: no cache, no pruning.

        Kept as the equivalence oracle — the property suite and the
        fast-path benchmark compare every cached/pruned query against it.
        """
        scored: List[ScoredPlan] = []
        seen: set = set()
        for counts in self._candidate_counts(available):
            scored.extend(self._score_counts(counts, seen))
        scored.sort(key=_rank_key)
        return scored

    def enumerate_plans(self, available: Mapping[str, int]) -> List[ScoredPlan]:
        """All feasible scored plans under the given free-GPU counts."""
        key = self._key(available)
        cached = self._full_cache.get(key)
        if cached is not MISS:
            return list(cached)
        plans = self.enumerate_plans_reference(dict(key))
        self._full_cache.put(key, plans)
        return list(plans)

    def best_plans(self, available: Mapping[str, int], top_k: int = 3) -> List[ScoredPlan]:
        """Top-K plans; cached and dominance-pruned (see module docs)."""
        key = self._key(available)
        full = self._full_cache.get(key)
        if full is not MISS:
            return list(full[:top_k])
        cached = self._topk_cache.get((key, top_k))
        if cached is not MISS:
            return list(cached)
        plans = self._search_topk(key, top_k)
        self._topk_cache.put((key, top_k), plans)
        return list(plans)

    def best_plan(self, available: Mapping[str, int]) -> Optional[ScoredPlan]:
        plans = self.best_plans(available, top_k=1)
        return plans[0] if plans else None

    # ------------------------------------------------------------------
    # pruned / incremental search
    # ------------------------------------------------------------------
    def _upper_bound(self, counts: Mapping[str, int]) -> float:
        """Aggregate capability ``Σ N_i·C_i`` ≥ Eq. (1d) throughput."""
        return sum(n * self.capability[t] for t, n in counts.items())

    def _ordered_vectors(
        self, vectors: Iterable[Mapping[str, int]]
    ) -> List[Tuple[float, Tuple[Tuple[str, int], ...], Dict[str, int]]]:
        """Decorate count vectors with bounds, best-first (deterministic)."""
        decorated = [
            (self._upper_bound(counts), tuple(sorted(counts.items())), dict(counts))
            for counts in vectors
        ]
        decorated.sort(key=lambda item: (-item[0], item[1]))
        return decorated

    def _search_topk(
        self, key: Tuple[Tuple[str, int], ...], top_k: int
    ) -> List[ScoredPlan]:
        """Best-first top-K search with the dominance bound as early exit.

        Equivalent to ``enumerate_plans_reference(...)[:top_k]``: a vector
        is skipped only when its throughput upper bound is *strictly*
        below the current K-th best — a bound exactly equal to the floor
        must still be expanded because the ``(total_gpus, alloc)``
        tie-break can place one of its plans inside the top K.
        """
        available = dict(key)
        best: List[ScoredPlan] = []
        floor: Optional[float] = None
        seen: set = set()
        for bound, _, counts in self._ordered_vectors(self._candidate_counts(available)):
            if floor is not None and bound < floor:
                # vectors are bound-sorted: nothing below can recover
                self.vectors_pruned += 1
                if obs.is_enabled():
                    obs.metrics().counter("sched_plan_vectors_pruned_total").inc()
                break
            candidates = self._score_counts(counts, seen)
            if not candidates:
                continue
            best = sorted(best + candidates, key=_rank_key)[:top_k]
            if len(best) == top_k:
                floor = best[-1].throughput
        return best

    def best_plan_delta(
        self, owned: Mapping[str, int], gtype: str, chunk: int
    ) -> Optional[ScoredPlan]:
        """Best plan under ``owned + chunk×gtype``, scored incrementally.

        Exactly ``best_plan({**owned, gtype: owned.get(gtype, 0) + chunk})``
        — but instead of re-enumerating the full hypothetical space, it
        takes the better of (a) the cached best plan for ``owned`` and
        (b) the best plan in the *slab* of count vectors that use more
        than the owned count of ``gtype``; those two sets partition the
        hypothetical space.  The slab search reuses the dominance bound
        with the owned best as its initial floor.
        """
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        base = self.best_plan(owned)
        if gtype not in self.capability:
            # unknown types never enter the enumeration: no new space
            return base
        old_cap = min(int(owned.get(gtype, 0)), self.max_p, self.max_gpus_per_type)
        if owned.get(gtype, 0) <= 0:
            old_cap = 0
        new_cap = min(int(owned.get(gtype, 0)) + chunk, self.max_p, self.max_gpus_per_type)
        if new_cap <= old_cap:
            return base  # caps already saturated: identical plan space
        owned_key = self._key(owned)
        delta_key = (owned_key, gtype, old_cap, new_cap)
        cached = self._delta_cache.get(delta_key)
        if cached is not MISS:
            return cached
        best = base
        seen: set = set()
        slab = self._slab_vectors(owned, gtype, old_cap, new_cap)
        for bound, _, counts in self._ordered_vectors(slab):
            if best is not None and bound < best.throughput:
                self.vectors_pruned += 1
                if obs.is_enabled():
                    obs.metrics().counter("sched_plan_vectors_pruned_total").inc()
                break
            for candidate in self._score_counts(counts, seen):
                if best is None or _rank_key(candidate) < _rank_key(best):
                    best = candidate
        self._delta_cache.put(delta_key, best)
        return best

    def _slab_vectors(
        self, owned: Mapping[str, int], gtype: str, old_cap: int, new_cap: int
    ) -> Iterable[Dict[str, int]]:
        """Count vectors with ``old_cap < n_gtype <= new_cap``.

        These are exactly the hypothetical-space vectors absent from the
        owned space (every other type keeps its owned cap).
        """
        lo = max(old_cap + 1, 1)
        if self.homogeneous_only:
            for n in range(lo, new_cap + 1):
                yield {gtype: n}
            return
        others = [
            t
            for t in sorted(owned)
            if t != gtype and owned[t] > 0 and t in self.capability
        ]
        ranges = [
            range(0, min(owned[t], self.max_p, self.max_gpus_per_type) + 1)
            for t in others
        ]
        for n in range(lo, new_cap + 1):
            if n > self.max_p:
                break
            for counts in itertools.product(*ranges):
                if n + sum(counts) > self.max_p:
                    continue
                vector = {t: c for t, c in zip(others, counts) if c > 0}
                vector[gtype] = n
                yield vector

    # ------------------------------------------------------------------
    # bias correction
    # ------------------------------------------------------------------
    def report_measurement(self, gtype: str, estimated: float, measured: float) -> bool:
        """Record an (estimate, measurement) pair; re-fit on large bias.

        The multiplicative correction ``measured/estimated`` is clamped to
        :attr:`correction_band` (default ``[0.5, 2.0]``): a single garbage
        measurement — e.g. a stall during reconfiguration — can bias
        ``C_i`` by at most one band step instead of collapsing it toward
        zero and poisoning every future plan.  Clamped reports are flagged
        in :attr:`observations`.  Returns True if the capability profile
        was updated.
        """
        if gtype not in self.capability:
            raise KeyError(f"unknown GPU type {gtype!r}")
        clamped = False
        updated = False
        if estimated > 0:
            bias = abs(measured - estimated) / estimated
            if bias > self.bias_threshold and measured > 0:
                correction = measured / estimated
                lo, hi = self.correction_band
                if correction < lo or correction > hi:
                    clamped = True
                    correction = min(max(correction, lo), hi)
                self.capability[gtype] *= correction
                updated = True
        self.observations.append((gtype, estimated, measured, clamped))
        return updated
