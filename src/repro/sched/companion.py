"""The companion module: a database of scheduling plans per job (§3.4).

For a job with ``maxP`` ESTs and a capability profile ``C_i`` the
companion enumerates EST-to-GPU-type mappings, scores them with the
Eq. (1) model, and answers two queries for the intra-job scheduler:

- ``best_plans(available)`` — top-K feasible plans under the currently
  free GPUs (Role-1/Role-2 input);
- ``update_capability(type, measured)`` — bias correction: when reported
  throughput diverges from the estimate, the database re-fits that type's
  capability and re-scores (the "actively update the database once it has
  monitored significant biases" behaviour).

Plans balance load by assigning ESTs proportionally to capability, with
floor/ceil integrality choices enumerated (the "quantum property of EST
allocation" the paper calls out).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sched.perfmodel import Plan, ScoredPlan, estimated_throughput


class CompanionModule:
    """Plan database + capability profile for one job."""

    def __init__(
        self,
        max_p: int,
        capability: Mapping[str, float],
        homogeneous_only: bool = False,
        bias_threshold: float = 0.25,
        max_gpus_per_type: int = 16,
    ) -> None:
        if max_p <= 0:
            raise ValueError("maxP must be positive")
        if not capability:
            raise ValueError("capability profile is empty")
        self.max_p = max_p
        self.capability: Dict[str, float] = dict(capability)
        self.homogeneous_only = homogeneous_only
        self.bias_threshold = bias_threshold
        self.max_gpus_per_type = max_gpus_per_type
        #: (estimate, measurement) pairs observed, for bias diagnostics
        self.observations: List[Tuple[str, float, float]] = []

    # ------------------------------------------------------------------
    # plan enumeration
    # ------------------------------------------------------------------
    def _candidate_counts(self, available: Mapping[str, int]) -> Iterable[Dict[str, int]]:
        """Yield candidate GPU-count vectors under the availability caps."""
        types = [t for t in sorted(available) if available[t] > 0 and t in self.capability]
        if not types:
            return
        if self.homogeneous_only:
            for gtype in types:
                cap = min(available[gtype], self.max_p, self.max_gpus_per_type)
                for n in range(1, cap + 1):
                    yield {gtype: n}
            return
        ranges = [
            range(0, min(available[t], self.max_p, self.max_gpus_per_type) + 1) for t in types
        ]
        for counts in itertools.product(*ranges):
            if sum(counts) == 0 or sum(counts) > self.max_p:
                continue
            yield {t: c for t, c in zip(types, counts) if c > 0}

    def _ests_for_counts(self, counts: Mapping[str, int]) -> Iterable[Dict[str, int]]:
        """Proportional-to-capability EST split, floor/ceil enumerated."""
        types = sorted(counts)
        total_cap = sum(counts[t] * self.capability[t] for t in types)
        if total_cap <= 0:
            return
        ideal = {t: self.max_p * self.capability[t] / total_cap for t in types}
        choices = []
        for t in types:
            lo = max(1, int(ideal[t]))
            options = {lo, lo + 1}
            choices.append(sorted(options))
        for combo in itertools.product(*choices):
            yield {t: a for t, a in zip(types, combo)}

    def enumerate_plans(self, available: Mapping[str, int]) -> List[ScoredPlan]:
        """All feasible scored plans under the given free-GPU counts."""
        scored: List[ScoredPlan] = []
        seen = set()
        for counts in self._candidate_counts(available):
            for ests in self._ests_for_counts(counts):
                plan = Plan.build({t: (counts[t], ests[t]) for t in counts}, self.max_p)
                if not plan.is_feasible:
                    continue
                if plan.alloc in seen:
                    continue
                seen.add(plan.alloc)
                throughput = estimated_throughput(plan, self.capability)
                if throughput <= 0:
                    continue
                scored.append(ScoredPlan(plan=plan, throughput=throughput))
        scored.sort(key=lambda s: (-s.throughput, s.plan.total_gpus))
        return scored

    def best_plans(self, available: Mapping[str, int], top_k: int = 3) -> List[ScoredPlan]:
        return self.enumerate_plans(available)[:top_k]

    def best_plan(self, available: Mapping[str, int]) -> Optional[ScoredPlan]:
        plans = self.best_plans(available, top_k=1)
        return plans[0] if plans else None

    # ------------------------------------------------------------------
    # bias correction
    # ------------------------------------------------------------------
    def report_measurement(self, gtype: str, estimated: float, measured: float) -> bool:
        """Record an (estimate, measurement) pair; re-fit on large bias.

        Returns True if the capability profile was updated.
        """
        if gtype not in self.capability:
            raise KeyError(f"unknown GPU type {gtype!r}")
        self.observations.append((gtype, estimated, measured))
        if estimated <= 0:
            return False
        bias = abs(measured - estimated) / estimated
        if bias > self.bias_threshold and measured > 0:
            correction = measured / estimated
            self.capability[gtype] *= correction
            return True
        return False
