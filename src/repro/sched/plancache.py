"""Memoized plan storage for the companion database (§3.4 fast path).

The §3.4 proposal loop queries the companion once per (GPU-type × chunk)
per job per round; at Fig-8 cluster scale that is thousands of calls into
an ``O(max_gpus_per_type^|types|)`` enumeration.  Almost all of them
repeat: the free-GPU vector changes slowly, and a job's capability table
changes only when calibration or bias correction rewrites it.

:class:`PlanCache` is the shared memo store behind
:meth:`~repro.sched.companion.CompanionModule.enumerate_plans` /
``best_plans`` / ``best_plan_delta``:

- keys are *normalized* availability vectors (per-type counts clamped to
  ``min(available, maxP, max_gpus_per_type)``, zero/unknown types
  dropped), so availability beyond the enumeration caps hits the same
  entry;
- the owning companion invalidates the whole store whenever its
  capability-table **generation** bumps (``apply_calibration``,
  ``report_measurement``, or any direct mutation);
- bounded size with FIFO eviction — the availability-key space is tiny in
  practice, but a pathological caller can never leak memory;
- hit/miss/invalidation/eviction counts kept locally *and* mirrored into
  the :mod:`repro.obs` metrics registry when observability is enabled.

The cache stores only immutable :class:`~repro.sched.perfmodel.ScoredPlan`
values; list values are copied on the way out so callers can never corrupt
an entry.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro import obs

#: distinguishes "not cached" from a cached ``None`` (e.g. a delta query
#: that legitimately has no feasible plan)
MISS = object()


class PlanCacheStats:
    """Plain-data counters for one cache (picklable, printable)."""

    __slots__ = ("hits", "misses", "invalidations", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCacheStats({self.as_dict()})"


class PlanCache:
    """Bounded FIFO memo store with observability counters.

    ``name`` labels the metrics series (``sched_plan_cache_*_total``)
    so the full-enumeration, top-K, and delta caches stay distinguishable
    on a dashboard.
    """

    def __init__(self, name: str, maxsize: int = 512) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._store: Dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable) -> Any:
        """The cached value, or :data:`MISS`."""
        value = self._store.get(key, MISS)
        if value is MISS:
            self.stats.misses += 1
            if obs.is_enabled():
                obs.metrics().counter(
                    "sched_plan_cache_misses_total", cache=self.name
                ).inc()
        else:
            self.stats.hits += 1
            if obs.is_enabled():
                obs.metrics().counter(
                    "sched_plan_cache_hits_total", cache=self.name
                ).inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key not in self._store and len(self._store) >= self.maxsize:
            # FIFO: drop the oldest insertion (dicts preserve order)
            self._store.pop(next(iter(self._store)))
            self.stats.evictions += 1
            if obs.is_enabled():
                obs.metrics().counter(
                    "sched_plan_cache_evictions_total", cache=self.name
                ).inc()
        self._store[key] = value

    def invalidate(self) -> None:
        """Drop every entry (capability-table generation bumped)."""
        if self._store:
            self._store.clear()
        self.stats.invalidations += 1
        if obs.is_enabled():
            obs.metrics().counter(
                "sched_plan_cache_invalidations_total", cache=self.name
            ).inc()


def availability_key(
    available: Any,
    capability: Any,
    max_p: int,
    max_gpus_per_type: int,
) -> Tuple[Tuple[str, int], ...]:
    """Normalize a free-GPU mapping into a canonical, hashable cache key.

    Mirrors ``CompanionModule._candidate_counts`` exactly: types with zero
    availability or no capability entry are dropped, and each count is
    clamped to the enumeration cap ``min(available, maxP,
    max_gpus_per_type)`` — two availability vectors that enumerate the
    same plan space map to the same key.
    """
    return tuple(
        (t, min(int(available[t]), max_p, max_gpus_per_type))
        for t in sorted(available)
        if available[t] > 0 and t in capability
    )
