"""AIMaster: the per-job control loop of the implementation section (§4).

The paper's AIMaster runs next to each job and performs three functions:
"collecting performance profiling reported by EasyScale runtime through an
RPC library; submitting resource proposals; monitoring resource allocation
timeout ... and containing a policy controller to calculate and submit
incremental resource requests".

This module reproduces that control loop over the intra-job scheduler and
companion database:

- :class:`ThroughputMonitor` ingests the runtime's per-step throughput
  reports (the RPC payload) and maintains a robust moving estimate;
- :class:`AIMaster` closes the loop: it feeds measurements into the
  companion's bias correction, detects post-reconfiguration slowdowns and
  triggers the Role-3 fallback, expires proposals that the cluster
  scheduler has not granted within a timeout, and re-plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.engine import WorkerAssignment
from repro.sched.intra import IntraJobScheduler, ResourceProposal, plan_to_assignment


class ThroughputMonitor:
    """EMA throughput estimate from runtime reports (the RPC sink)."""

    def __init__(self, alpha: float = 0.3, warmup_reports: int = 3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.warmup_reports = warmup_reports
        self._value: Optional[float] = None
        self._count = 0

    def report(self, minibatches_per_second: float) -> None:
        if minibatches_per_second < 0:
            raise ValueError("throughput cannot be negative")
        self._count += 1
        if self._value is None:
            self._value = minibatches_per_second
        else:
            self._value = (
                self.alpha * minibatches_per_second + (1 - self.alpha) * self._value
            )

    @property
    def ready(self) -> bool:
        """Enough reports to act on (avoid reacting to warm-up jitter)."""
        return self._count >= self.warmup_reports

    @property
    def value(self) -> Optional[float]:
        return self._value

    def reset(self) -> None:
        """Called on reconfiguration: old measurements describe old plans."""
        self._value = None
        self._count = 0


@dataclass
class PendingProposal:
    proposal: ResourceProposal
    submitted_at: float


class AIMaster:
    """Per-job controller: profiling ingestion, proposals, timeouts, fallback."""

    def __init__(
        self,
        scheduler: IntraJobScheduler,
        proposal_timeout_s: float = 300.0,
        monitor: Optional[ThroughputMonitor] = None,
    ) -> None:
        if proposal_timeout_s <= 0:
            raise ValueError("proposal_timeout_s must be positive")
        self.scheduler = scheduler
        self.proposal_timeout_s = proposal_timeout_s
        self.monitor = monitor or ThroughputMonitor()
        self.pending: List[PendingProposal] = []
        #: count of proposals dropped for timing out (observability)
        self.timed_out = 0
        #: count of Role-3 fallbacks triggered by measured slowdowns
        self.fallbacks = 0
        #: count of fault-driven preemptions this job absorbed
        self.preemptions = 0

    # ------------------------------------------------------------------
    # RPC surface (called by the EasyScale runtime)
    # ------------------------------------------------------------------
    def report_step_throughput(self, minibatches_per_second: float) -> None:
        """One training-step throughput report from the runtime."""
        self.monitor.report(minibatches_per_second)

    # ------------------------------------------------------------------
    # control loop
    # ------------------------------------------------------------------
    def tick(
        self,
        now: float,
        owned: Mapping[str, int],
        cluster_free: Mapping[str, int],
    ) -> List[ResourceProposal]:
        """One controller iteration; returns proposals to submit.

        Order of operations mirrors the paper: ingest measurements (bias
        correction + slowdown fallback), expire stale proposals, re-plan
        on current resources, generate new proposals.
        """
        self._apply_measurements(owned)
        self._expire_proposals(now)
        self.scheduler.apply_best_plan(owned)
        proposals = self.scheduler.propose(owned, cluster_free)
        for proposal in proposals:
            self.pending.append(PendingProposal(proposal=proposal, submitted_at=now))
        return proposals

    def on_grant(self, now: float, owned: Mapping[str, int]) -> Optional[WorkerAssignment]:
        """The cluster scheduler granted something: reschedule (Role-3)."""
        self.pending.clear()
        self.monitor.reset()
        return self.scheduler.on_decision(owned)

    def on_join(self, now: float, owned: Mapping[str, int]) -> Optional[WorkerAssignment]:
        """New cluster capacity appeared (a host joined or rejoined).

        Replan on current ownership like a grant, but keep pending
        proposals alive — the join answers none of them (the cluster got
        bigger; the job's asks are still outstanding and now likelier to
        be granted) — and keep the throughput monitor: the allocation
        itself did not change, so its measurements still apply.
        """
        return self.scheduler.on_decision(owned)

    def on_preempt(self, now: float, owned: Mapping[str, int]) -> Optional[WorkerAssignment]:
        """GPUs were taken away by a fault, not a scheduling decision.

        Same replan path as a grant — the EST assignment must move onto
        the survivors — but pending proposals are kept alive: the job
        still wants the capacity it asked for (more so, now).  Old
        throughput measurements describe the dead allocation, so the
        monitor resets.
        """
        self.monitor.reset()
        self.preemptions += 1
        return self.scheduler.on_decision(owned)

    def _apply_measurements(self, owned: Mapping[str, int]) -> None:
        if not self.monitor.ready or self.monitor.value is None:
            return
        measured = self.monitor.value
        estimated = self.scheduler.current_throughput()
        if estimated <= 0:
            return
        # Role-3 tail: if the reconfigured plan underperforms its
        # predecessor, revert and release the extra GPUs — unless the
        # predecessor no longer fits what the job currently owns
        if self.scheduler.on_slowdown(measured, estimated, owned=owned):
            self.fallbacks += 1
            self.monitor.reset()
            return
        # otherwise fold the bias into the per-type capability profile
        plan = self.scheduler.current_plan
        if plan is None:
            return
        for gtype, n, a in plan.alloc:
            # attribute the aggregate bias proportionally to each type's
            # contribution (single-type plans get exact attribution)
            share = n * self.scheduler.companion.capability[gtype]
            total = sum(
                m * self.scheduler.companion.capability[t] for t, m, _ in plan.alloc
            )
            if total <= 0:
                continue
            est_share = estimated * share / total / max(n, 1)
            meas_share = measured * share / total / max(n, 1)
            self.scheduler.companion.report_measurement(gtype, est_share, meas_share)

    def _expire_proposals(self, now: float) -> None:
        kept: List[PendingProposal] = []
        for pending in self.pending:
            if now - pending.submitted_at > self.proposal_timeout_s:
                self.timed_out += 1
            else:
                kept.append(pending)
        self.pending = kept

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def current_assignment(self) -> Optional[WorkerAssignment]:
        return self.scheduler.current_assignment()
