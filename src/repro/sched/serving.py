"""Online-serving co-location simulation (Figs. 1 and 16, §5.3).

The production cluster serves online inference with a strong diurnal
pattern: the gap between idle and peak GPU demand reaches ~2,000 GPUs
(Fig. 1).  EasyScale jobs run as non-production (best-effort) tenants on
the idle GPUs: when serving demand spikes they *scale in within seconds*
(on-demand checkpoint, no failure), and when servers leave they fill the
freed GPUs back up within minutes.

:func:`simulate_colocation` replays two days at minute granularity —
day 1 without EasyScale, day 2 with it — and reports the paper's headline
production metrics: GPU allocation-ratio uplift (+17.1%), average SM
utilization uplift (+62.1 points of relative improvement), preemption
count (~362/day) with zero job failures, and sub-5-minute refill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.rng import derive_seed

MINUTES_PER_DAY = 1440


@dataclass
class ServingLoadModel:
    """Diurnal serving demand in GPUs over minutes."""

    total_gpus: int = 3000
    base_fraction: float = 0.35
    peak_fraction: float = 0.85
    noise_fraction: float = 0.03
    #: minute of peak demand (e.g. 820 ≈ 13:40 local)
    peak_minute: int = 820
    seed: int = 0

    def demand(self, minute: float) -> int:
        """Serving GPUs needed at a given absolute minute."""
        phase = 2 * np.pi * ((minute - self.peak_minute) % MINUTES_PER_DAY) / MINUTES_PER_DAY
        mid = (self.base_fraction + self.peak_fraction) / 2
        amp = (self.peak_fraction - self.base_fraction) / 2
        level = mid + amp * np.cos(phase)
        rng = np.random.Generator(
            np.random.PCG64(derive_seed(self.seed, "serving", int(minute)))
        )
        noisy = level + float(rng.normal(0, self.noise_fraction))
        gpus = int(round(np.clip(noisy, 0.0, 1.0) * self.total_gpus))
        return min(gpus, self.total_gpus)

    def series(self, minutes: int = 2 * MINUTES_PER_DAY) -> np.ndarray:
        return np.array([self.demand(m) for m in range(minutes)], dtype=np.int64)


@dataclass
class ColocationStats:
    """Per-minute series + summary of the two-day experiment."""

    minutes: np.ndarray
    serving_alloc: np.ndarray
    training_alloc: np.ndarray
    utilization: np.ndarray
    preemptions_day2: int
    failures_day2: int
    scale_in_latency_s: float
    refill_minutes: float

    @property
    def total_alloc(self) -> np.ndarray:
        return self.serving_alloc + self.training_alloc

    def day_slice(self, day: int) -> slice:
        return slice(day * MINUTES_PER_DAY, (day + 1) * MINUTES_PER_DAY)

    def alloc_ratio(self, day: int, total_gpus: int) -> float:
        sl = self.day_slice(day)
        return float(self.total_alloc[sl].mean() / total_gpus)

    def mean_utilization(self, day: int) -> float:
        sl = self.day_slice(day)
        return float(self.utilization[sl].mean())


def simulate_colocation(
    total_gpus: int = 3000,
    seed: int = 0,
    serving_sm_util: float = 0.22,
    training_sm_util: float = 0.92,
    scale_in_latency_s: float = 4.0,
    refill_minutes: float = 4.0,
    training_demand_gpus: int = 900,
    sla_headroom_gpus: int = 32,
    gpus_per_job: int = 8,
) -> ColocationStats:
    """Replay day-1 (serving only) and day-2 (serving + EasyScale).

    SM utilization is modelled per GPU class: serving GPUs run at low
    average utilization (over-provisioned for latency SLAs), training GPUs
    near saturation — the source of the paper's utilization uplift.
    ``training_demand_gpus`` caps how many idle GPUs the elastic tenant
    can productively use at once (its own job backlog);
    ``sla_headroom_gpus`` is the free buffer the elastic tenant always
    leaves for instantaneous serving bursts, so minute-level noise does not
    cause churn; preemptions are counted per affected job (~``gpus_per_job``
    GPUs each).
    """
    load = ServingLoadModel(total_gpus=total_gpus, seed=seed)
    minutes = np.arange(2 * MINUTES_PER_DAY)
    serving = load.series(2 * MINUTES_PER_DAY)

    training = np.zeros_like(serving)
    utilization = np.zeros(2 * MINUTES_PER_DAY, dtype=np.float64)
    preemptions = 0
    current_training = 0

    for m in range(2 * MINUTES_PER_DAY):
        day2 = m >= MINUTES_PER_DAY
        idle = total_gpus - serving[m]
        if day2:
            target = min(max(idle - sla_headroom_gpus, 0), training_demand_gpus)
            if idle < current_training:
                # hard conflict with serving: scale in immediately
                # (within seconds); one preemption per affected job
                shed = current_training - idle
                preemptions += max(1, int(np.ceil(shed / gpus_per_job)))
                current_training = idle
            elif target < current_training:
                # soft pressure (headroom shrank): shed without preemption
                # accounting — jobs scale in at the next step boundary
                current_training = target
            elif target > current_training:
                # refill gradually: full backlog restored in refill_minutes
                ramp = max(1, int(np.ceil((target - current_training) / refill_minutes)))
                current_training = min(target, current_training + ramp)
        else:
            current_training = 0
        training[m] = current_training
        busy_util = serving[m] * serving_sm_util + training[m] * training_sm_util
        utilization[m] = busy_util / max(serving[m] + training[m], 1)

    return ColocationStats(
        minutes=minutes,
        serving_alloc=serving,
        training_alloc=training,
        utilization=utilization,
        preemptions_day2=preemptions,
        failures_day2=0,  # elastic jobs scale in; Sync-SGD never aborts
        scale_in_latency_s=scale_in_latency_s,
        refill_minutes=refill_minutes,
    )
