"""Inter-job (cluster) scheduler (§3.4): greedy proposal arbitration.

The cluster scheduler evaluates the resource proposals submitted by all
intra-job schedulers against the free-resource table and grants greedily:

- higher **speedup per GPU** first (most cluster-wide throughput per
  granted device);
- ties broken toward the proposal with **more GPUs** (drain free pools
  faster);
- a job receives at most one grant per round (its intra-job scheduler
  re-proposes after rescheduling).

Free resources fluctuate because EasyScale co-locates with non-elastic
high-priority jobs (online serving): :meth:`InterJobScheduler.reclaim`
revokes GPUs from elastic jobs when serving demand spikes, smallest
speedup-per-GPU victims first.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs import flightrec
from repro.sched.intra import IntraJobScheduler, ResourceProposal
from repro.sched.plancache import availability_key


@dataclass(frozen=True)
class Grant:
    job_id: str
    gtype: str
    gpus: int


class InterJobScheduler:
    """Greedy speedup-per-GPU arbitration over submitted proposals."""

    def __init__(self) -> None:
        self.grant_log: List[Grant] = []
        #: incremental-arbitration memo, shared across *all* jobs of the
        #: same class: the key folds the companion's full parameterization
        #: (capability-table contents, caps, plan-shape flags, proposal
        #: menu) with the clamped ownership and free vectors — every
        #: input that Role-2 proposal generation depends on
        self._proposal_memo: Dict[tuple, List[ResourceProposal]] = {}
        #: second-level memo for propose() misses: per-job-class caches of
        #: the inner best_plan_delta searches, keyed by (clamped owned,
        #: gtype, chunk) — two proposal passes that differ only in their
        #: free vectors still share every plan search they have in common
        self._delta_memo: Dict[tuple, Dict[tuple, object]] = {}
        self.proposal_memo_hits = 0
        self.proposal_memo_misses = 0

    # ------------------------------------------------------------------
    # incremental Role-2: only re-score jobs whose availability changed
    # ------------------------------------------------------------------
    def proposals_for(
        self,
        agent: IntraJobScheduler,
        owned: Mapping[str, int],
        free: Mapping[str, int],
    ) -> List[ResourceProposal]:
        """Role-2 proposals with class-level availability memoization.

        :meth:`IntraJobScheduler.propose` is — apart from the ``job_id``
        stamped into each proposal — a pure function of (a) the
        companion's parameterization (capability-table *contents*, which
        calibration mutates, plus ``maxP`` / per-type caps / plan-shape
        flag) and the agent's proposal menu, (b) the job's ownership
        vector clamped to the enumeration caps (:func:`availability_key`
        — raw counts beyond the caps cannot change any plan score), and
        (c) how many chunks of the sorted scale-out menu fit each free
        pool — the per-type *fit count*, not the exact free count.  The
        memo key is exactly that tuple, so it is shared across every job
        of the
        same *class*: a saturated 3,000-GPU queue holds hundreds of
        pending zero-ownership jobs per workload/size class, and one plan
        search serves all of them (the cached proposals are re-stamped
        with the asking job's id).  ``current_plan``, which feeds the
        speedup filter, is itself a deterministic function of the same
        clamped ownership and capability table, so it needs no key term.

        Memo hits skip the agent's ``sched.propose`` flight-recorder
        entry (forensic telemetry, not part of the :class:`EventLog`
        equivalence surface).
        """
        companion = agent.companion
        owned_key = availability_key(
            owned, companion.capability, companion.max_p, companion.max_gpus_per_type
        )
        # propose() reads the free pool only through "which chunks of the
        # sorted menu fit this type" (the chunk loop breaks at the first
        # chunk > free; per-chunk scores never see the exact count), so
        # the key folds each type down to its fit count — free counts of
        # 5, 6, and 7 against menu (1, 2, 4, 8) are all the same pool
        chunks = agent.scaleout_chunks
        free_key = tuple(
            (t, fits)
            for t, v in sorted(free.items())
            if t in companion.capability and (fits := bisect_right(chunks, int(v))) > 0
        )
        key = (
            tuple(sorted(companion.capability.items())),
            companion.max_p,
            companion.max_gpus_per_type,
            companion.homogeneous_only,
            agent.scaleout_chunks,
            agent.top_k,
            owned_key,
            free_key,
        )
        cached = self._proposal_memo.get(key)
        if cached is not None:
            self.proposal_memo_hits += 1
            if obs.is_enabled():
                obs.metrics().counter(
                    "sched_proposal_memo_total", result="hit"
                ).inc()
            if cached and cached[0].job_id != agent.job_id:
                return [replace(p, job_id=agent.job_id) for p in cached]
            return list(cached)
        self.proposal_memo_misses += 1
        if obs.is_enabled():
            obs.metrics().counter("sched_proposal_memo_total", result="miss").inc()
        # key[:6] is the class identity (capability contents, caps, plan
        # shape, proposal menu) without the owned/free terms: the right
        # scope for sharing raw plan searches across proposal passes
        proposals = agent.propose(
            owned, free, delta_cache=self._delta_memo.setdefault(key[:6], {})
        )
        self._proposal_memo[key] = proposals
        return list(proposals)

    def arbitrate(
        self,
        proposals: Sequence[ResourceProposal],
        free: Mapping[str, int],
    ) -> List[Grant]:
        """Grant proposals against the free table; one grant per job/round."""
        remaining: Dict[str, int] = {k: int(v) for k, v in free.items()}
        # job_id/gtype close the total order: exact speedup ties must not
        # fall back to caller iteration order, or the grant log (and every
        # downstream simulator event) depends on proposal collection order
        ranked = sorted(
            proposals,
            key=lambda p: (-p.speedup_per_gpu, -p.extra_gpus, p.job_id, p.gtype),
        )
        granted: List[Grant] = []
        granted_jobs = set()
        for proposal in ranked:
            if proposal.job_id in granted_jobs:
                continue
            if proposal.speedup_per_gpu <= 0:
                continue
            available = remaining.get(proposal.gtype, 0)
            if proposal.extra_gpus > available:
                continue
            remaining[proposal.gtype] = available - proposal.extra_gpus
            grant = Grant(proposal.job_id, proposal.gtype, proposal.extra_gpus)
            granted.append(grant)
            granted_jobs.add(proposal.job_id)
            self.grant_log.append(grant)
            flightrec.record(
                "sched.grant", job=grant.job_id, gtype=grant.gtype, gpus=grant.gpus
            )
        return granted

    @staticmethod
    def reclaim(
        demand: Mapping[str, int],
        holdings: Mapping[str, Mapping[str, int]],
        priorities: Optional[Mapping[str, float]] = None,
    ) -> List[Grant]:
        """Revoke GPUs from elastic jobs to satisfy serving ``demand``.

        ``holdings[job][gtype]`` is what each elastic job currently holds;
        ``priorities[job]`` (higher = keep longer) defaults to holdings
        size, so the cheapest-to-shrink jobs shed GPUs first.  Returns
        negative grants (revocations).

        The victim order is a *total* order — ``(priority, job_id)``,
        exactly like :meth:`arbitrate`'s grant ranking — and demand types
        are processed sorted: exact-priority ties must not fall back to
        the caller's dict insertion order, or the revocation stream (and
        every downstream simulator event) would depend on how the caller
        happened to build its collections.
        """
        revocations: List[Grant] = []
        for gtype in sorted(demand):
            needed = demand[gtype]
            if needed <= 0:
                continue
            victims = sorted(
                (job for job in holdings if holdings[job].get(gtype, 0) > 0),
                key=lambda j: ((priorities or {}).get(j, sum(holdings[j].values())), j),
            )
            left = needed
            for job in victims:
                if left <= 0:
                    break
                take = min(holdings[job].get(gtype, 0), left)
                if take > 0:
                    revocations.append(Grant(job_id=job, gtype=gtype, gpus=-take))
                    left -= take
                    flightrec.record(
                        "sched.reclaim", job=job, gtype=gtype, gpus=take
                    )
        return revocations
