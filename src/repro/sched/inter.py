"""Inter-job (cluster) scheduler (§3.4): greedy proposal arbitration.

The cluster scheduler evaluates the resource proposals submitted by all
intra-job schedulers against the free-resource table and grants greedily:

- higher **speedup per GPU** first (most cluster-wide throughput per
  granted device);
- ties broken toward the proposal with **more GPUs** (drain free pools
  faster);
- a job receives at most one grant per round (its intra-job scheduler
  re-proposes after rescheduling).

Free resources fluctuate because EasyScale co-locates with non-elastic
high-priority jobs (online serving): :meth:`InterJobScheduler.reclaim`
revokes GPUs from elastic jobs when serving demand spikes, smallest
speedup-per-GPU victims first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import flightrec
from repro.sched.intra import ResourceProposal


@dataclass(frozen=True)
class Grant:
    job_id: str
    gtype: str
    gpus: int


class InterJobScheduler:
    """Greedy speedup-per-GPU arbitration over submitted proposals."""

    def __init__(self) -> None:
        self.grant_log: List[Grant] = []

    def arbitrate(
        self,
        proposals: Sequence[ResourceProposal],
        free: Mapping[str, int],
    ) -> List[Grant]:
        """Grant proposals against the free table; one grant per job/round."""
        remaining: Dict[str, int] = {k: int(v) for k, v in free.items()}
        # job_id/gtype close the total order: exact speedup ties must not
        # fall back to caller iteration order, or the grant log (and every
        # downstream simulator event) depends on proposal collection order
        ranked = sorted(
            proposals,
            key=lambda p: (-p.speedup_per_gpu, -p.extra_gpus, p.job_id, p.gtype),
        )
        granted: List[Grant] = []
        granted_jobs = set()
        for proposal in ranked:
            if proposal.job_id in granted_jobs:
                continue
            if proposal.speedup_per_gpu <= 0:
                continue
            available = remaining.get(proposal.gtype, 0)
            if proposal.extra_gpus > available:
                continue
            remaining[proposal.gtype] = available - proposal.extra_gpus
            grant = Grant(proposal.job_id, proposal.gtype, proposal.extra_gpus)
            granted.append(grant)
            granted_jobs.add(proposal.job_id)
            self.grant_log.append(grant)
            flightrec.record(
                "sched.grant", job=grant.job_id, gtype=grant.gtype, gpus=grant.gpus
            )
        return granted

    @staticmethod
    def reclaim(
        demand: Mapping[str, int],
        holdings: Mapping[str, Mapping[str, int]],
        priorities: Optional[Mapping[str, float]] = None,
    ) -> List[Grant]:
        """Revoke GPUs from elastic jobs to satisfy serving ``demand``.

        ``holdings[job][gtype]`` is what each elastic job currently holds;
        ``priorities[job]`` (higher = keep longer) defaults to holdings
        size, so the cheapest-to-shrink jobs shed GPUs first.  Returns
        negative grants (revocations).
        """
        revocations: List[Grant] = []
        for gtype, needed in demand.items():
            if needed <= 0:
                continue
            victims = sorted(
                (job for job in holdings if holdings[job].get(gtype, 0) > 0),
                key=lambda j: (priorities or {}).get(j, sum(holdings[j].values())),
            )
            left = needed
            for job in victims:
                if left <= 0:
                    break
                take = min(holdings[job].get(gtype, 0), left)
                if take > 0:
                    revocations.append(Grant(job_id=job, gtype=gtype, gpus=-take))
                    left -= take
        return revocations
