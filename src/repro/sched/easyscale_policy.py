"""The EasyScale scheduling policy for the cluster simulator (§3.4 + §5.2).

Wires the per-job :class:`~repro.sched.intra.IntraJobScheduler` (backed by
a companion plan database) and the global
:class:`~repro.sched.inter.InterJobScheduler` into the simulator:

- every job may start with **zero** GPUs (no gang requirement) and grows
  opportunistically through granted proposals;
- ``EasyScale-homo`` restricts every companion to homogeneous plans;
- ``EasyScale-heter`` allows heterogeneous plans, except for conv-heavy
  jobs, which the D2-eligibility scan confines to homogeneous GPUs
  (§3.3's automatic model analysis).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.sched.companion import CompanionModule
from repro.sched.inter import InterJobScheduler
from repro.sched.intra import IntraJobScheduler, ResourceProposal
from repro.sched.perfmodel import estimated_throughput
from repro.sched.plancache import availability_key
from repro.sched.simulator import ClusterSimulator, JobRuntime, SchedulingPolicy


class EasyScalePolicy(SchedulingPolicy):
    """Proposal-driven elastic scheduling (homo or heter)."""

    # Role-1 replans and Role-2 proposals are pure functions of ownership
    # vectors, the free pool, and companion generations; a pass that
    # granted nothing (no events) left all of those untouched
    fixpoint_reschedule = True

    def __init__(
        self,
        heterogeneous: bool,
        max_ests_cap: int = 16,
        restrict_conv_heavy: bool = False,
        capability_scale: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.heterogeneous = heterogeneous
        self.max_ests_cap = max_ests_cap
        #: per-GPU-type multipliers applied to every job's static
        #: capability table — the hook through which profiler-calibrated
        #: rates reach the simulator (``trace-sim --calibrate``): a 0.8
        #: entry for ``t4`` means "T4s measured 20% slower than the prior"
        self.capability_scale = {
            k.lower(): float(v) for k, v in (capability_scale or {}).items()
        }
        for gtype, factor in self.capability_scale.items():
            if factor <= 0:
                raise ValueError(f"capability scale for {gtype} must be positive")
        #: when True, conv-heavy (vendor-kernel-reliant) jobs are confined
        #: to homogeneous plans even under the heterogeneous policy — the
        #: conservative D2 deployment mode; the trace experiment of §5.2
        #: runs all Table-1 workloads heterogeneously (they were all ported
        #: with D2 support), so the default is off
        self.restrict_conv_heavy = restrict_conv_heavy
        self.name = "easyscale-heter" if heterogeneous else "easyscale-homo"
        self.inter = InterJobScheduler()

    # ------------------------------------------------------------------
    def on_job_arrival(self, sim: ClusterSimulator, runtime: JobRuntime) -> None:
        job = runtime.job
        # the automatic D2 scan can confine vendor-kernel-reliant jobs to
        # homogeneous GPUs (restrict_conv_heavy); otherwise every ported
        # workload may use heterogeneous plans under the heter policy
        homogeneous_only = (not self.heterogeneous) or (
            self.restrict_conv_heavy and job.conv_heavy
        )
        capability = dict(job.capability)
        for gtype, factor in self.capability_scale.items():
            if gtype in capability:
                capability[gtype] *= factor
        companion = CompanionModule(
            max_p=job.requested_gpus,
            capability=capability,
            homogeneous_only=homogeneous_only,
        )
        runtime.agent = IntraJobScheduler(job.job_id, companion)

    # ------------------------------------------------------------------
    def reschedule(self, sim: ClusterSimulator, now: float) -> None:
        # the simulator's active set is the seed filter under the heap and
        # reference cores, and an incrementally maintained list under the
        # batched core — identical contents either way
        active = [r for r in sim.active_jobs() if r.agent is not None]
        # under the batched core, Role-1 replans and Role-2 proposals go
        # through availability-keyed memos: only jobs whose clamped
        # ownership/free vectors or capability generation changed are
        # re-scored
        incremental = getattr(sim, "incremental_scheduling", False)

        # Role-1: re-plan everyone on current ownership (idempotent); the
        # incremental path skips jobs whose plan inputs are unchanged —
        # their rate/current_plan are already the values a re-plan would
        # produce, because apply_best_plan is deterministic in them
        for runtime in active:
            if incremental and runtime.agent.applied_plan_key == self._plan_key(runtime):
                continue
            self._apply_plan(runtime)

        # Role-2 + inter-job arbitration, iterated until the free pool is
        # drained or nobody wants more
        for _ in range(64):  # bounded: each round grants >=1 GPU
            free = sim.free_by_type()
            if sum(free.values()) == 0:
                break
            proposals: List[ResourceProposal] = []
            for runtime in active:
                if runtime.status == "done":
                    continue
                if incremental:
                    proposals.extend(
                        self.inter.proposals_for(runtime.agent, runtime.owned, free)
                    )
                else:
                    proposals.extend(runtime.agent.propose(runtime.owned, free))
            grants = self.inter.arbitrate(proposals, free)
            if not grants:
                break
            by_job = {r.job.job_id: r for r in active}
            for grant in grants:
                runtime = by_job[grant.job_id]
                sim.grant(runtime, grant.gtype, grant.gpus)
                self._apply_plan(runtime)

    # ------------------------------------------------------------------
    def on_preempt(self, sim: ClusterSimulator, runtime: JobRuntime, now: float) -> None:
        """Elastic jobs shrink instead of dying: replan immediately on the
        surviving GPUs (an EST assignment exists for any ownership, even a
        single GPU), and a healthy reallocation clears any injected
        slowdown — the degraded device was part of what was taken."""
        runtime.fault_slowdown = 1.0
        if runtime.agent is not None:
            self._apply_plan(runtime)
            if runtime.total_owned == 0 and runtime.status == "running":
                # zero GPUs is a legal elastic state: the job idles at rate
                # 0 until the next round grants it capacity again
                runtime.rate = 0.0

    # ------------------------------------------------------------------
    @staticmethod
    def _plan_key(runtime: JobRuntime) -> tuple:
        """Everything :meth:`_apply_plan`'s outcome depends on."""
        companion = runtime.agent.companion
        return (
            availability_key(
                runtime.owned,
                companion.capability,
                companion.max_p,
                companion.max_gpus_per_type,
            ),
            companion.generation,
        )

    def _apply_plan(self, runtime: JobRuntime) -> None:
        scored = runtime.agent.apply_best_plan(runtime.owned)
        runtime.rate = scored.throughput if scored else 0.0
        runtime.agent.applied_plan_key = self._plan_key(runtime)
