"""Intra-job scheduler (§3.4): EST-to-GPU mapping and resource proposals.

Three roles, verbatim from the paper:

- **Role-1** — under the job's current GPUs, query the companion database
  and apply the top-1 configuration (highest estimated throughput);
- **Role-2** — explore scale-out: for incremental homogeneous GPU chunks,
  compute the estimated speedup and submit the top-K as resource
  proposals to the inter-job scheduler;
- **Role-3** — when a scheduling decision arrives, scale in/out
  immediately, reschedule ESTs (Role-1 again), and generate new proposals
  (Role-2 again).  If measured throughput regresses after a grant, fall
  back to the previous allocation and release the new GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.engine import WorkerAssignment
from repro.hw.gpu import gpu_type
from repro.obs import flightrec
from repro.sched.companion import CompanionModule
from repro.sched.perfmodel import Plan, ScoredPlan, estimated_throughput
from repro.sched.plancache import availability_key


@dataclass(frozen=True)
class ResourceProposal:
    """A scale-out request: 'give job X ``extra`` more GPUs of ``gtype``'."""

    job_id: str
    gtype: str
    extra_gpus: int
    current_throughput: float
    proposed_throughput: float
    proposed_plan: Plan

    @property
    def speedup(self) -> float:
        if self.current_throughput <= 0:
            return float("inf") if self.proposed_throughput > 0 else 0.0
        return self.proposed_throughput / self.current_throughput

    @property
    def speedup_per_gpu(self) -> float:
        gain = self.proposed_throughput - self.current_throughput
        return gain / self.extra_gpus if self.extra_gpus > 0 else 0.0


def plan_to_assignment(plan: Plan) -> WorkerAssignment:
    """Concretize a plan into per-worker EST lists.

    ESTs (virtual ranks 0..maxP-1) are dealt to GPUs in plan order, each
    GPU taking up to its ``A_i`` quota; over-provisioned slots beyond maxP
    simply go unused, and a GPU left with zero ESTs is dropped (its grant
    is wasted capacity the waste term already charged for).
    """
    gpus = []
    est_map: List[List[int]] = []
    cursor = 0
    for gtype_name, n, a in plan.alloc:
        for _ in range(n):
            take = min(a, plan.max_p - cursor)
            if take <= 0:
                continue
            gpus.append(gpu_type(_canonical(gtype_name)))
            est_map.append(list(range(cursor, cursor + take)))
            cursor += take
    if cursor != plan.max_p:
        raise ValueError(
            f"plan capacity {plan.n_est_capacity} failed to place {plan.max_p} ESTs"
        )
    return WorkerAssignment(gpus=tuple(gpus), est_map=tuple(tuple(s) for s in est_map))


def _canonical(name: str) -> str:
    return {"v100": "V100", "p100": "P100", "t4": "T4"}.get(name.lower(), name)


class IntraJobScheduler:
    """Per-job scheduling agent backed by a companion module."""

    def __init__(
        self,
        job_id: str,
        companion: CompanionModule,
        # chunk sizes explored for scale-out proposals; the larger chunks
        # matter because EST integrality creates plateaus (e.g. going from
        # 8 to 12 GPUs for a 16-EST job adds only over-provisioning waste,
        # while 8 -> 16 doubles throughput)
        scaleout_chunks: Sequence[int] = (1, 2, 4, 8, 16),
        top_k: int = 3,
    ) -> None:
        self.job_id = job_id
        self.companion = companion
        self.scaleout_chunks = scaleout_chunks
        self.top_k = top_k
        self.current_plan: Optional[Plan] = None
        self._previous_plan: Optional[Plan] = None
        #: the (clamped ownership, capability generation) key the current
        #: plan/rate were last computed from — lets the incremental
        #: scheduling path skip Role-1 replans whose inputs are unchanged
        self.applied_plan_key: Optional[tuple] = None

    @property
    def scaleout_chunks(self) -> Tuple[int, ...]:
        return self._scaleout_chunks

    @scaleout_chunks.setter
    def scaleout_chunks(self, chunks: Sequence[int]) -> None:
        """Normalize the proposal menu: sorted ascending, deduplicated.

        :meth:`propose` early-exits the chunk loop as soon as a chunk
        exceeds the free pool; with an unsorted menu that silently skipped
        every remaining (smaller) chunk, so ordering is enforced here —
        including for callers that assign the attribute directly.
        """
        normalized = tuple(sorted(set(int(c) for c in chunks)))
        if not normalized:
            raise ValueError("scaleout_chunks must not be empty")
        if normalized[0] <= 0:
            raise ValueError(f"scale-out chunks must be positive, got {chunks}")
        self._scaleout_chunks = normalized

    # ------------------------------------------------------------------
    # Role-1
    # ------------------------------------------------------------------
    def apply_best_plan(self, owned: Mapping[str, int]) -> Optional[ScoredPlan]:
        """Pick the best configuration for the GPUs the job currently owns."""
        if sum(owned.values()) == 0:
            self._previous_plan, self.current_plan = self.current_plan, None
            return None
        best = self.companion.best_plan(owned)
        if best is None:
            self._previous_plan, self.current_plan = self.current_plan, None
            return None
        self._previous_plan = self.current_plan
        self.current_plan = best.plan
        return best

    def apply_calibration(self, calibrated: Mapping[str, float]) -> Dict[str, float]:
        """Adopt profiler-calibrated capabilities ``C_i`` (mini-batches/s).

        The online profiler (``repro.obs.profiler``) refines the static
        analytical table with EWMA-smoothed observed rates; feeding them
        back here makes every subsequent :meth:`apply_best_plan` /
        :meth:`propose` score plans against reality instead of the prior.
        Only types the companion already knows are updated (a job cannot
        gain hardware support from a measurement), and non-positive rates
        are ignored.  Returns the superseded table for fallback.
        """
        previous = dict(self.companion.capability)
        for gtype, rate in calibrated.items():
            key = gtype.lower()
            if key in self.companion.capability and rate > 0:
                self.companion.capability[key] = float(rate)
        return previous

    def current_assignment(self) -> Optional[WorkerAssignment]:
        if self.current_plan is None:
            return None
        return plan_to_assignment(self.current_plan)

    def current_throughput(self) -> float:
        if self.current_plan is None:
            return 0.0
        return estimated_throughput(self.current_plan, self.companion.capability)

    # ------------------------------------------------------------------
    # Role-2
    # ------------------------------------------------------------------
    def propose(
        self,
        owned: Mapping[str, int],
        cluster_free: Mapping[str, int],
        delta_cache: Optional[Dict[tuple, Optional[ScoredPlan]]] = None,
    ) -> List[ResourceProposal]:
        """Generate scale-out proposals with incremental homogeneous GPUs.

        ``delta_cache``, when given, memoizes the inner
        :meth:`CompanionModule.best_plan_delta` searches keyed by the
        clamped ownership vector plus the probed ``(gtype, chunk)`` slab.
        The caller owns the cache and its scope: the incremental
        inter-job path hands over a per-job-class dict (keyed by the full
        companion parameterization, so calibration invalidates it), which
        lets two proposal passes that differ only in their *free* vectors
        still share every plan search they have in common.
        """
        current_tp = self.current_throughput()
        owned_key: Optional[tuple] = None
        if delta_cache is not None:
            owned_key = availability_key(
                owned,
                self.companion.capability,
                self.companion.max_p,
                self.companion.max_gpus_per_type,
            )
        proposals: List[ResourceProposal] = []
        for gtype, free in sorted(cluster_free.items()):
            if gtype not in self.companion.capability or free <= 0:
                continue
            for chunk in self.scaleout_chunks:
                if chunk > free:
                    break  # menu is sorted ascending: larger chunks won't fit either
                # incremental scoring: the hypothetical space is the owned
                # space (cached from Role-1) plus the new-count slab only
                if delta_cache is None:
                    best = self.companion.best_plan_delta(owned, gtype, chunk)
                else:
                    cache_key = (owned_key, gtype, chunk)
                    try:
                        best = delta_cache[cache_key]
                    except KeyError:
                        best = self.companion.best_plan_delta(owned, gtype, chunk)
                        delta_cache[cache_key] = best
                if best is None:
                    continue
                if best.throughput <= current_tp * 1.001:
                    continue  # no meaningful speedup: don't hoard GPUs
                proposals.append(
                    ResourceProposal(
                        job_id=self.job_id,
                        gtype=gtype,
                        extra_gpus=chunk,
                        current_throughput=current_tp,
                        proposed_throughput=best.throughput,
                        proposed_plan=best.plan,
                    )
                )
        proposals.sort(key=lambda p: (-p.speedup_per_gpu, -p.extra_gpus))
        kept = proposals[: self.top_k]
        if kept:
            flightrec.record(
                "sched.propose",
                job=self.job_id,
                proposals=[(p.gtype, p.extra_gpus) for p in kept],
            )
        return kept

    # ------------------------------------------------------------------
    # Role-3
    # ------------------------------------------------------------------
    def on_decision(self, owned: Mapping[str, int]) -> Optional[WorkerAssignment]:
        """React to a grant/revocation: re-plan on the new ownership."""
        best = self.apply_best_plan(owned)
        assignment = plan_to_assignment(best.plan) if best else None
        flightrec.record(
            "sched.decision",
            job=self.job_id,
            owned=dict(owned),
            gpus=[g.name for g in assignment.gpus] if assignment is not None else None,
        )
        return assignment

    def on_slowdown(
        self,
        measured: float,
        estimated: float,
        owned: Optional[Mapping[str, int]] = None,
    ) -> bool:
        """Fallback check after a reconfiguration (Role-3 tail).

        Returns True when the job should revert to its previous plan —
        i.e. the measured throughput came in below the previous plan's.

        When ``owned`` is given, the previous plan is first validated
        against the job's *current* ownership: GPUs may have been revoked
        since that plan was active, in which case reverting would assign
        ESTs to hardware the job no longer holds.  A stale previous plan
        is discarded and the job simply re-plans on what it owns.
        """
        if self._previous_plan is None:
            return False
        if owned is not None and not self._plan_fits(self._previous_plan, owned):
            # stale: fall through to a fresh Role-1 plan on current GPUs
            self._previous_plan = None
            self.apply_best_plan(owned)
            return False
        previous_tp = estimated_throughput(self._previous_plan, self.companion.capability)
        if measured < previous_tp:
            self.current_plan = self._previous_plan
            self._previous_plan = None
            return True
        return False

    @staticmethod
    def _plan_fits(plan: Plan, owned: Mapping[str, int]) -> bool:
        """Whether ``owned`` still covers every GPU the plan allocates."""
        return all(plan.gpus_of(t) <= owned.get(t, 0) for t, _, _ in plan.alloc)
