"""Serving-aware scheduling: elastic training under a high-priority tenant.

§5.3's mechanics inside the discrete-event simulator: an online-serving
tenant's GPU demand varies over time; serving has guaranteed quota
(production priority), EasyScale jobs are best-effort.  At every decision
point the policy first satisfies serving demand — revoking GPUs from
elastic jobs via :meth:`InterJobScheduler.reclaim` if the free pool cannot
cover it — then lets the elastic jobs fill whatever is left.

Preempted elastic jobs *scale in*; they never fail (the §2.1 contrast:
gang-scheduled Sync-SGD jobs abort when any worker is revoked).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.inter import InterJobScheduler
from repro.sched.simulator import ClusterSimulator, JobRuntime


class ServingColocationPolicy(EasyScalePolicy):
    """EasyScale policy co-located with a serving tenant.

    ``serving_demand(now)`` returns GPUs the serving tenant needs *per
    type* at a given time (e.g. derived from
    :class:`~repro.sched.serving.ServingLoadModel`).  The serving tenant
    is modelled as reservations held by a pseudo-job.
    """

    SERVING_JOB_ID = "__serving__"

    # serving demand varies with simulated time, so rescheduling is never
    # skippable: a quiet-looking decision point may still need to revoke
    # or return GPUs for the serving tenant
    fixpoint_reschedule = False

    def __init__(
        self,
        serving_demand: Callable[[float], Dict[str, int]],
        heterogeneous: bool = True,
    ) -> None:
        super().__init__(heterogeneous=heterogeneous)
        self.name = "easyscale-colocated"
        self.serving_demand = serving_demand
        self.preemptions = 0
        self.failures = 0  # stays zero: elastic jobs shrink, never die
        self._serving_held: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def reschedule(self, sim: ClusterSimulator, now: float) -> None:
        self._serve_first(sim, now)
        super().reschedule(sim, now)

    def _serve_first(self, sim: ClusterSimulator, now: float) -> None:
        demand = {k.lower(): int(v) for k, v in self.serving_demand(now).items()}
        # release serving GPUs no longer needed
        for gtype, held in list(self._serving_held.items()):
            needed = demand.get(gtype, 0)
            if held > needed:
                surplus = held - needed
                canonical = _canonical(gtype)
                gpus = [
                    g
                    for g in sim.cluster.owned_by(self.SERVING_JOB_ID)
                    if g.type.name == canonical
                ][:surplus]
                sim.cluster.release(self.SERVING_JOB_ID, gpus)
                self._serving_held[gtype] = needed

        # acquire what serving now needs, reclaiming from elastic jobs
        for gtype, needed in demand.items():
            held = self._serving_held.get(gtype, 0)
            if needed <= held:
                continue
            shortfall = needed - held
            free = sim.free_by_type().get(gtype, 0)
            if free < shortfall:
                self._reclaim_from_elastic(sim, now, gtype, shortfall - free)
                free = sim.free_by_type().get(gtype, 0)
            take = min(shortfall, free)
            if take > 0:
                sim.cluster.allocate(self.SERVING_JOB_ID, _canonical(gtype), take)
                self._serving_held[gtype] = held + take

    def _reclaim_from_elastic(
        self, sim: ClusterSimulator, now: float, gtype: str, amount: int
    ) -> None:
        candidates = [
            r
            for r in sim.active_jobs()
            if r.status == "running" and r.owned.get(gtype, 0) > 0
        ]
        holdings = {r.job.job_id: dict(r.owned) for r in candidates}
        if not holdings:
            return
        revocations = InterJobScheduler.reclaim({gtype: amount}, holdings)
        by_id = {r.job.job_id: r for r in candidates}
        for grant in revocations:
            runtime = by_id[grant.job_id]
            sim.revoke(runtime, grant.gtype, -grant.gpus)
            self.preemptions += 1
            # the job scales in; with zero GPUs left it suspends (rate 0)
            self._apply_plan(runtime)


def _canonical(name: str) -> str:
    return {"v100": "V100", "p100": "P100", "t4": "T4"}.get(name.lower(), name)
