"""Workload trace generation for the §5.2 trace experiment.

Job arrival follows a Microsoft-Philly-like pattern (bursty Poisson), the
job mix covers Table 1, GPU demand is skewed small with a heavy multi-GPU
tail, and runtimes are log-normally distributed ("down-sampled from our
production training jobs").  Every job is expressed in *work units* —
aggregate mini-batches — so the same trace is schedulable by YARN-CS
(gang, fixed allocation) and both EasyScale configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.registry import TABLE1, WORKLOADS, WorkloadSpec
from repro.utils.rng import derive_seed


@dataclass
class TraceJob:
    """One submitted training job, policy-agnostic."""

    job_id: str
    workload: str
    arrival_time: float
    #: gang request: number of GPUs (= nEST/maxP for EasyScale)
    requested_gpus: int
    #: gang request: GPU type (YARN-CS allocates exactly this type)
    requested_type: str
    #: total aggregate mini-batches to process
    total_work: float

    def __post_init__(self) -> None:
        if self.requested_gpus <= 0:
            raise ValueError("requested_gpus must be positive")
        if self.total_work <= 0:
            raise ValueError("total_work must be positive")

    @property
    def spec(self) -> WorkloadSpec:
        return WORKLOADS[self.workload]

    @property
    def capability(self) -> Dict[str, float]:
        return dict(self.spec.throughput)

    @property
    def conv_heavy(self) -> bool:
        return self.spec.conv_heavy

    def requested_rate(self) -> float:
        """Mini-batches/s at exactly the requested gang allocation."""
        return self.requested_gpus * self.capability[self.requested_type]


#: GPU-count demand distribution (Philly-like: mostly small, heavy tail)
GPU_DEMAND = [(1, 0.30), (2, 0.25), (4, 0.25), (8, 0.15), (16, 0.05)]


def generate_trace(
    num_jobs: int = 40,
    seed: int = 0,
    mean_interarrival_s: float = 60.0,
    mean_duration_s: float = 900.0,
    burst_fraction: float = 0.3,
    type_weights: Optional[Dict[str, float]] = None,
    demand: Optional[Sequence[Tuple[int, float]]] = None,
    duration_sigma: float = 0.8,
    max_duration_factor: float = 8.0,
) -> List[TraceJob]:
    """Generate a reproducible job trace.

    ``burst_fraction`` of jobs arrive in tight bursts (1/10 the normal
    gap), mimicking the paper's Philly-style arrival pattern; durations
    are log-normal around ``mean_duration_s`` *at the requested gang
    allocation*, converted to work units via the workload's capability.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    rng = np.random.Generator(np.random.PCG64(derive_seed(seed, "trace")))
    weights = type_weights or {"v100": 0.6, "p100": 0.25, "t4": 0.15}
    type_names = sorted(weights)
    type_probs = np.array([weights[t] for t in type_names])
    type_probs = type_probs / type_probs.sum()

    demand_dist = list(demand) if demand is not None else GPU_DEMAND
    demand_values = [d for d, _ in demand_dist]
    demand_probs = np.array([p for _, p in demand_dist])
    demand_probs = demand_probs / demand_probs.sum()

    jobs: List[TraceJob] = []
    t = 0.0
    sigma = duration_sigma  # lognormal shape: long runtime tail
    mu = np.log(mean_duration_s) - sigma**2 / 2
    for i in range(num_jobs):
        burst = rng.random() < burst_fraction
        gap = rng.exponential(mean_interarrival_s / 10 if burst else mean_interarrival_s)
        t += float(gap)
        workload = TABLE1[int(rng.integers(0, len(TABLE1)))]
        gpus = int(demand_values[int(rng.choice(len(demand_values), p=demand_probs))])
        gtype = str(type_names[int(rng.choice(len(type_names), p=type_probs))])
        duration = float(rng.lognormal(mu, sigma))
        duration = min(max(duration, 60.0), max_duration_factor * mean_duration_s)
        spec = WORKLOADS[workload]
        work = duration * gpus * spec.throughput[gtype]
        jobs.append(
            TraceJob(
                job_id=f"job-{i:03d}",
                workload=workload,
                arrival_time=t,
                requested_gpus=gpus,
                requested_type=gtype,
                total_work=work,
            )
        )
    return jobs
