"""Workload trace generation for the §5.2 trace experiment.

Job arrival follows a Microsoft-Philly-like pattern (bursty Poisson), the
job mix covers Table 1, GPU demand is skewed small with a heavy multi-GPU
tail, and runtimes are log-normally distributed ("down-sampled from our
production training jobs").  Every job is expressed in *work units* —
aggregate mini-batches — so the same trace is schedulable by YARN-CS
(gang, fixed allocation) and both EasyScale configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.registry import TABLE1, WORKLOADS, WorkloadSpec
from repro.utils.rng import derive_seed


@dataclass
class TraceJob:
    """One submitted training job, policy-agnostic."""

    job_id: str
    workload: str
    arrival_time: float
    #: gang request: number of GPUs (= nEST/maxP for EasyScale)
    requested_gpus: int
    #: gang request: GPU type (YARN-CS allocates exactly this type)
    requested_type: str
    #: total aggregate mini-batches to process
    total_work: float

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(
                f"job {self.job_id!r}: arrival_time must be >= 0, got {self.arrival_time}"
            )
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"job {self.job_id!r}: unknown workload {self.workload!r}"
            )
        if self.requested_type not in WORKLOADS[self.workload].throughput:
            raise ValueError(
                f"job {self.job_id!r}: requested_type {self.requested_type!r} is not "
                f"in workload {self.workload!r}'s capability table"
            )
        if self.requested_gpus <= 0:
            raise ValueError("requested_gpus must be positive")
        if self.total_work <= 0:
            raise ValueError("total_work must be positive")

    @property
    def spec(self) -> WorkloadSpec:
        return WORKLOADS[self.workload]

    @property
    def capability(self) -> Dict[str, float]:
        return dict(self.spec.throughput)

    @property
    def conv_heavy(self) -> bool:
        return self.spec.conv_heavy

    def requested_rate(self) -> float:
        """Mini-batches/s at exactly the requested gang allocation."""
        return self.requested_gpus * self.capability[self.requested_type]


#: GPU-count demand distribution (Philly-like: mostly small, heavy tail)
GPU_DEMAND = [(1, 0.30), (2, 0.25), (4, 0.25), (8, 0.15), (16, 0.05)]

#: demand mix for production-scale traces: the same Philly skew with a
#: fatter multi-node tail (32- and 64-GPU jobs exist on 3,000-GPU pools)
PRODUCTION_DEMAND = [
    (1, 0.25),
    (2, 0.20),
    (4, 0.20),
    (8, 0.15),
    (16, 0.10),
    (32, 0.06),
    (64, 0.04),
]


def _mix_distributions(
    type_weights: Optional[Dict[str, float]],
    demand: Optional[Sequence[Tuple[int, float]]],
    default_demand: Sequence[Tuple[int, float]],
) -> Tuple[List[str], np.ndarray, List[int], np.ndarray]:
    """Normalise the GPU-type and GPU-count mixes into sampling tables."""
    weights = type_weights or {"v100": 0.6, "p100": 0.25, "t4": 0.15}
    type_names = sorted(weights)
    type_probs = np.array([weights[t] for t in type_names])
    type_probs = type_probs / type_probs.sum()
    demand_dist = list(demand) if demand is not None else list(default_demand)
    demand_values = [d for d, _ in demand_dist]
    demand_probs = np.array([p for _, p in demand_dist])
    demand_probs = demand_probs / demand_probs.sum()
    return type_names, type_probs, demand_values, demand_probs


def generate_trace(
    num_jobs: int = 40,
    seed: int = 0,
    mean_interarrival_s: float = 60.0,
    mean_duration_s: float = 900.0,
    burst_fraction: float = 0.3,
    type_weights: Optional[Dict[str, float]] = None,
    demand: Optional[Sequence[Tuple[int, float]]] = None,
    duration_sigma: float = 0.8,
    max_duration_factor: float = 8.0,
) -> List[TraceJob]:
    """Generate a reproducible job trace.

    ``burst_fraction`` of jobs arrive in tight bursts (1/10 the normal
    gap), mimicking the paper's Philly-style arrival pattern; durations
    are log-normal around ``mean_duration_s`` *at the requested gang
    allocation*, converted to work units via the workload's capability.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    rng = np.random.Generator(np.random.PCG64(derive_seed(seed, "trace")))
    type_names, type_probs, demand_values, demand_probs = _mix_distributions(
        type_weights, demand, GPU_DEMAND
    )

    jobs: List[TraceJob] = []
    t = 0.0
    sigma = duration_sigma  # lognormal shape: long runtime tail
    mu = np.log(mean_duration_s) - sigma**2 / 2
    for i in range(num_jobs):
        burst = rng.random() < burst_fraction
        gap = rng.exponential(mean_interarrival_s / 10 if burst else mean_interarrival_s)
        t += float(gap)
        jobs.append(
            _sample_job(
                rng,
                i,
                t,
                type_names,
                type_probs,
                demand_values,
                demand_probs,
                mu,
                sigma,
                mean_duration_s,
                max_duration_factor,
            )
        )
    return jobs


def _sample_job(
    rng: np.random.Generator,
    index: int,
    arrival: float,
    type_names: List[str],
    type_probs: np.ndarray,
    demand_values: List[int],
    demand_probs: np.ndarray,
    mu: float,
    sigma: float,
    mean_duration_s: float,
    max_duration_factor: float,
    duration: Optional[float] = None,
) -> TraceJob:
    """Draw one job's (workload, demand, type, duration) tuple.

    The draw order — ``integers``, ``choice`` (demand), ``choice``
    (type), ``lognormal`` — is frozen: :func:`generate_trace`'s output
    for a given seed is part of the repo's determinism surface (bench
    fingerprints, recorded trajectories).  When ``duration`` is given
    (heavy-tail traces draw Pareto durations up front) the lognormal
    draw is skipped.
    """
    workload = TABLE1[int(rng.integers(0, len(TABLE1)))]
    gpus = int(demand_values[int(rng.choice(len(demand_values), p=demand_probs))])
    gtype = str(type_names[int(rng.choice(len(type_names), p=type_probs))])
    if duration is None:
        duration = float(rng.lognormal(mu, sigma))
        duration = min(max(duration, 60.0), max_duration_factor * mean_duration_s)
    spec = WORKLOADS[workload]
    work = duration * gpus * spec.throughput[gtype]
    return TraceJob(
        job_id=f"job-{index:03d}",
        workload=workload,
        arrival_time=arrival,
        requested_gpus=gpus,
        requested_type=gtype,
        total_work=work,
    )


def diurnal_trace(
    num_jobs: int = 2000,
    seed: int = 0,
    days: int = 30,
    mean_duration_s: float = 4 * 3600.0,
    trough_level: float = 0.2,
    peak_hour: float = 14.0,
    burst_fraction: float = 0.15,
    type_weights: Optional[Dict[str, float]] = None,
    demand: Optional[Sequence[Tuple[int, float]]] = None,
    duration_sigma: float = 0.8,
    max_duration_factor: float = 8.0,
) -> List[TraceJob]:
    """A month-long production-shaped trace with a day/night cycle.

    Arrivals follow a non-homogeneous Poisson process (thinning): the
    intensity is a cosine peaking at ``peak_hour`` local time and
    bottoming out at ``trough_level`` of the peak rate overnight — the
    shape of the production cluster traces the paper samples from.
    ``burst_fraction`` of candidate arrivals use a 20x tighter gap
    (submission scripts firing sweeps).  The base rate is calibrated so
    that ``num_jobs`` jobs span roughly ``days`` days.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if days <= 0:
        raise ValueError("days must be positive")
    if not 0.0 < trough_level <= 1.0:
        raise ValueError("trough_level must be in (0, 1]")
    rng = np.random.Generator(np.random.PCG64(derive_seed(seed, "diurnal-trace")))
    type_names, type_probs, demand_values, demand_probs = _mix_distributions(
        type_weights, demand, PRODUCTION_DEMAND
    )
    sigma = duration_sigma
    mu = np.log(mean_duration_s) - sigma**2 / 2
    # thinning accepts with probability intensity(t) in [trough, 1], whose
    # time average is trough + (1-trough)/2; calibrate the candidate rate
    # so the accepted count lands on num_jobs over the requested horizon
    mean_intensity = trough_level + (1.0 - trough_level) / 2.0
    base_gap = days * 86400.0 * mean_intensity / num_jobs
    jobs: List[TraceJob] = []
    t = 0.0
    while len(jobs) < num_jobs:
        burst = rng.random() < burst_fraction
        gap = rng.exponential(base_gap / 20.0 if burst else base_gap)
        t += float(gap)
        hour = (t / 3600.0) % 24.0
        phase = 2.0 * np.pi * (hour - peak_hour) / 24.0
        intensity = trough_level + (1.0 - trough_level) * 0.5 * (1.0 + np.cos(phase))
        if rng.random() >= intensity:
            continue  # thinned: candidate point falls in a quiet hour
        jobs.append(
            _sample_job(
                rng,
                len(jobs),
                t,
                type_names,
                type_probs,
                demand_values,
                demand_probs,
                mu,
                sigma,
                mean_duration_s,
                max_duration_factor,
            )
        )
    return jobs


def heavy_tail_trace(
    num_jobs: int = 400,
    seed: int = 0,
    mean_interarrival_s: float = 120.0,
    min_duration_s: float = 300.0,
    alpha: float = 1.5,
    max_duration_s: float = 14 * 86400.0,
    burst_fraction: float = 0.3,
    type_weights: Optional[Dict[str, float]] = None,
    demand: Optional[Sequence[Tuple[int, float]]] = None,
) -> List[TraceJob]:
    """A trace whose runtimes are Pareto-distributed (no lognormal cap).

    Most jobs finish in minutes but a small fraction run for days — the
    regime that stresses long-horizon event scheduling (stale-completion
    invalidation, month-long heaps).  GPU demand defaults to
    :data:`PRODUCTION_DEMAND` (up to 64-GPU jobs).
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.Generator(np.random.PCG64(derive_seed(seed, "heavy-tail-trace")))
    type_names, type_probs, demand_values, demand_probs = _mix_distributions(
        type_weights, demand, PRODUCTION_DEMAND
    )
    jobs: List[TraceJob] = []
    t = 0.0
    for i in range(num_jobs):
        burst = rng.random() < burst_fraction
        gap = rng.exponential(
            mean_interarrival_s / 10 if burst else mean_interarrival_s
        )
        t += float(gap)
        duration = min(
            min_duration_s * (1.0 + float(rng.pareto(alpha))), max_duration_s
        )
        jobs.append(
            _sample_job(
                rng,
                i,
                t,
                type_names,
                type_probs,
                demand_values,
                demand_probs,
                0.0,
                0.0,
                0.0,
                0.0,
                duration=duration,
            )
        )
    return jobs
