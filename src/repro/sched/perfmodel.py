"""The analytical performance model of §3.4 (Equations 1a–1d).

A *plan* allocates ``N_i`` GPUs of type ``i``, each hosting ``A_i`` ESTs.
With per-GPU workload capability ``C_i`` (mini-batches/second), the model
computes:

- ``nEST = Σ N_i·A_i  ≥ maxP``                                   (1a)
- ``f_overload = max_{i, N_i>0} A_i / C_i``                       (1b)
  — the slowest GPU's time to finish its local steps; Sync-SGD makes it
  the global step time, so everyone else idles against it;
- ``waste = Σ_{i, N_i>0} N_i·(C_i − A_i/f_overload)
           + (nEST − maxP)/f_overload``                           (1c)
  — capability stranded by load imbalance, plus over-provisioned EST
  slots that exist only to satisfy integrality;
- ``throughput = Σ N_i·C_i − waste``                              (1d)

A perfectly balanced homogeneous plan has zero waste and throughput equal
to the aggregate capability; mixing a slow GPU type with too many ESTs
drives ``f_overload`` up and strands the fast GPUs' capability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class Plan:
    """An EST-to-GPU-type mapping: ``alloc[type] = (N_i, A_i)``."""

    alloc: Tuple[Tuple[str, int, int], ...]  # (gpu_type, N_i, A_i), sorted
    max_p: int

    @classmethod
    def build(cls, alloc: Mapping[str, Tuple[int, int]], max_p: int) -> "Plan":
        if max_p <= 0:
            raise ValueError("maxP must be positive")
        entries = []
        for gtype, (n, a) in sorted(alloc.items()):
            if n < 0 or a < 0:
                raise ValueError(f"negative allocation for {gtype}")
            if n > 0 and a == 0:
                raise ValueError(f"{gtype}: GPUs allocated but zero ESTs per GPU")
            if n > 0:
                entries.append((gtype, n, a))
        if not entries:
            raise ValueError("plan allocates no GPUs")
        return cls(alloc=tuple(entries), max_p=max_p)

    @property
    def n_est_capacity(self) -> int:
        """Eq. (1a): total EST slots across all allocated GPUs."""
        return sum(n * a for _, n, a in self.alloc)

    @property
    def total_gpus(self) -> int:
        return sum(n for _, n, _ in self.alloc)

    def gpus_of(self, gtype: str) -> int:
        for name, n, _ in self.alloc:
            if name == gtype:
                return n
        return 0

    def ests_per_gpu(self, gtype: str) -> int:
        for name, _, a in self.alloc:
            if name == gtype:
                return a
        return 0

    @property
    def is_feasible(self) -> bool:
        return self.n_est_capacity >= self.max_p

    @property
    def is_homogeneous(self) -> bool:
        return len(self.alloc) == 1


def overload_factor(plan: Plan, capability: Mapping[str, float]) -> float:
    """Eq. (1b): the bottleneck GPU's seconds-per-global-step."""
    worst = 0.0
    for gtype, n, a in plan.alloc:
        c = capability[gtype]
        if c <= 0:
            raise ValueError(f"capability of {gtype} must be positive, got {c}")
        worst = max(worst, a / c)
    if worst <= 0:
        raise ValueError("plan has no work assigned")
    return worst


#: magnitude below which a negative waste is float round-off, not a model
#: error: the Eq. (1c) subtraction ``C_i - A_i/f`` can land a few ulps
#: under zero when ``f == A_i/C_i`` doesn't round-trip exactly
_WASTE_EPS = 1e-9


def waste(plan: Plan, capability: Mapping[str, float]) -> float:
    """Eq. (1c): stranded capability from imbalance + over-provisioning."""
    if not plan.is_feasible:
        raise ValueError(
            f"infeasible plan: capacity {plan.n_est_capacity} < maxP {plan.max_p}"
        )
    f = overload_factor(plan, capability)
    imbalance = sum(
        n * (capability[gtype] - a / f) for gtype, n, a in plan.alloc
    )
    over_provision = (plan.n_est_capacity - plan.max_p) / f
    total = imbalance + over_provision
    if -_WASTE_EPS < total < 0.0:
        return 0.0
    return total


def observed_waste(
    plan: Plan, capability: Mapping[str, float], f_observed: float
) -> float:
    """Eq. (1c) evaluated at a *measured* overload factor.

    The online profiler substitutes the observed seconds-per-global-step
    for the analytical Eq. (1b) bottleneck, yielding the waste the plan
    actually incurred rather than the waste the model predicted.
    """
    if f_observed <= 0:
        raise ValueError(f"observed overload factor must be positive, got {f_observed}")
    imbalance = sum(
        n * (capability[gtype] - a / f_observed) for gtype, n, a in plan.alloc
    )
    over_provision = (plan.n_est_capacity - plan.max_p) / f_observed
    total = imbalance + over_provision
    if -_WASTE_EPS < total < 0.0:
        return 0.0
    return total


def estimated_throughput(plan: Plan, capability: Mapping[str, float]) -> float:
    """Eq. (1d): aggregate mini-batches/second after subtracting waste."""
    aggregate = sum(n * capability[gtype] for gtype, n, _ in plan.alloc)
    return aggregate - waste(plan, capability)


@dataclass(frozen=True)
class ScoredPlan:
    plan: Plan
    throughput: float

    @property
    def throughput_per_gpu(self) -> float:
        return self.throughput / plan_gpus(self.plan)


def plan_gpus(plan: Plan) -> int:
    """Total GPUs a plan allocates (convenience for scoring)."""
    return plan.total_gpus


def score_plan(plan: Plan, capability: Mapping[str, float]) -> ScoredPlan:
    """Attach the Eq. (1d) throughput estimate to a plan."""
    return ScoredPlan(plan=plan, throughput=estimated_throughput(plan, capability))
