"""Historical capability profiles for companion warm starts (§3.4).

"When a job runs for the first time, the companion module initializes the
database using historical data."  The history store keeps per-workload
measured capability profiles (mini-batches/s per GPU type) across job
lifetimes, persisted as JSON, so a new job's companion starts from what
the cluster actually delivered last time instead of the registry's static
estimates — and contributes its own measurements back on completion.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional


class HistoryStore:
    """Per-workload capability profiles with JSON persistence."""

    def __init__(self) -> None:
        self._profiles: Dict[str, Dict[str, float]] = {}
        #: how many jobs contributed to each profile (for weighted merge)
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, workload: str) -> Optional[Dict[str, float]]:
        """The stored capability profile, or None on a cold start."""
        profile = self._profiles.get(workload)
        return dict(profile) if profile else None

    def capability_for(
        self, workload: str, default: Mapping[str, float]
    ) -> Dict[str, float]:
        """Warm-start profile: history where available, default elsewhere."""
        merged = dict(default)
        merged.update(self._profiles.get(workload, {}))
        return merged

    def jobs_seen(self, workload: str) -> int:
        return self._counts.get(workload, 0)

    # ------------------------------------------------------------------
    # contribution
    # ------------------------------------------------------------------
    def record(self, workload: str, measured: Mapping[str, float]) -> None:
        """Fold one job's measured per-type capability into the history.

        Uses a running mean per GPU type, so outlier jobs don't overwrite
        the profile.
        """
        for gtype, value in measured.items():
            if value <= 0:
                raise ValueError(f"measured capability must be positive, got {value}")
        count = self._counts.get(workload, 0)
        profile = self._profiles.setdefault(workload, {})
        for gtype, value in measured.items():
            if gtype in profile:
                profile[gtype] = (profile[gtype] * count + float(value)) / (count + 1)
            else:
                profile[gtype] = float(value)
        self._counts[workload] = count + 1

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        payload = {"profiles": self._profiles, "counts": self._counts}
        path = os.fspath(path)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "HistoryStore":
        store = cls()
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        store._profiles = {
            wl: {g: float(v) for g, v in prof.items()}
            for wl, prof in payload.get("profiles", {}).items()
        }
        store._counts = {wl: int(c) for wl, c in payload.get("counts", {}).items()}
        return store
