"""Discrete-event cluster simulator for the trace experiments (§5.2).

The simulator advances time between *decision points* — job arrivals,
predicted completions, and periodic scheduling rounds — accruing each
running job's progress at its current estimated throughput in between.
Scheduling itself is delegated to a pluggable :class:`SchedulingPolicy`
(YARN-CS gang scheduling, or the EasyScale intra-/inter-job scheduler
pair), so the three bars of Fig. 14 run the identical trace through
identical machinery.

Reconfiguration is not free: a job whose allocation changed pauses for
``reconfig_delay`` seconds (on-demand checkpoint + restart), matching the
paper's "scale in seconds" granularity.

Three event cores share one iteration body: :meth:`ClusterSimulator.run`
drives a single ``heapq`` priority queue of arrival/fault/round/completion
events (lazily invalidated, ``(time, seq)``-ordered),
:meth:`ClusterSimulator.run_batched` adds a NumPy structure-of-arrays
mirror of the running jobs on top of the same queue (vectorized
``advance``/``predicted_completion``, an incrementally maintained active
set, and memoized inter-job arbitration), while
:meth:`ClusterSimulator.run_reference` keeps the original linear
candidate scan as the equivalence oracle — all three produce identical
:class:`EventLog` streams for the same trace (elementwise float64 NumPy
arithmetic is IEEE-identical to the scalar CPython arithmetic it mirrors,
so the batched core is bit-exact, not merely close).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.hw.cluster import Cluster
from repro.sched.trace import TraceJob
from repro.utils.events import EventLog


@dataclass
class JobRuntime:
    """Mutable per-job state inside the simulator."""

    job: TraceJob
    remaining_work: float
    owned: Dict[str, int] = field(default_factory=dict)
    status: str = "pending"  # pending | running | done
    rate: float = 0.0
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    #: progress paused until this time (checkpoint/restart cost)
    reconfig_until: float = 0.0
    #: injected degradation factor (>= 1): modeled time only, like the
    #: engine-level worker slowdown — the policy's rate estimate is
    #: divided by it until the job is rescheduled onto healthy GPUs
    fault_slowdown: float = 1.0
    #: faults that hit this job (kind, time) — JCT forensics
    faults: List[Tuple[str, float]] = field(default_factory=list)
    #: policy-private state (e.g. the intra-job scheduler)
    agent: object = None
    #: heap-core bookkeeping: version stamp of the newest completion event
    #: pushed for this job (stale heap entries fail the stamp check) and
    #: the exact time value that entry carries
    _eta_stamp: int = 0
    _eta_pushed: Optional[float] = None

    @property
    def total_owned(self) -> int:
        return sum(self.owned.values())

    @property
    def effective_rate(self) -> float:
        return self.rate / self.fault_slowdown if self.rate > 0 else 0.0

    def advance(self, t_from: float, t_to: float) -> None:
        """Accrue progress over [t_from, t_to) at the current rate."""
        if self.status != "running" or self.effective_rate <= 0:
            return
        effective_from = max(t_from, self.reconfig_until)
        dt = t_to - effective_from
        if dt > 0:
            self.remaining_work = max(0.0, self.remaining_work - self.effective_rate * dt)

    def predicted_completion(self, now: float) -> Optional[float]:
        if self.status != "running" or self.effective_rate <= 0:
            return None
        start = max(now, self.reconfig_until)
        return start + self.remaining_work / self.effective_rate


class SchedulingPolicy:
    """Reallocates GPUs at every decision point."""

    name = "abstract"

    #: True when :meth:`reschedule` is a deterministic function of the
    #: simulator/cluster/job state alone (never of ``now``), and a call
    #: that emitted no :class:`EventLog` events made no observable state
    #: change — i.e. the state is a *fixed point* of rescheduling.  The
    #: batched event core then skips the policy entirely at decision
    #: points where nothing observable changed since such a call, which
    #: is most periodic rounds of a month-long trace.  Policies whose
    #: decisions read the clock (e.g. time-varying serving demand) must
    #: leave this False.
    fixpoint_reschedule = False

    def on_job_arrival(self, sim: "ClusterSimulator", runtime: JobRuntime) -> None:
        """Hook for per-job setup (e.g. build an intra-job scheduler)."""

    def reschedule(self, sim: "ClusterSimulator", now: float) -> None:
        raise NotImplementedError

    def on_preempt(self, sim: "ClusterSimulator", runtime: JobRuntime, now: float) -> None:
        """React to a job losing GPUs to a fault (default: wait for the
        next scheduling round).  Gang schedulers must requeue here; elastic
        policies can replan immediately on the shrunken ownership."""

    def on_join(self, sim: "ClusterSimulator", now: float, gtype: str, count: int) -> None:
        """React to new capacity joining the cluster (membership: a host
        finished warming, or a blacklist expired).  Default: wait for the
        next scheduling round, which already sees the larger free pool."""

    def on_slowdown(self, sim: "ClusterSimulator", runtime: JobRuntime, now: float, factor: float) -> None:
        """React to a job's throughput degrading by ``factor`` (a fault
        slowed its workers).  Default: the degraded rate already feeds the
        next round's estimates, so do nothing."""


@dataclass
class SimResult:
    """Outcome of one simulated trace run."""

    policy: str
    jobs: List[JobRuntime]
    events: EventLog
    makespan: float
    #: (time, total allocated GPUs) step series
    allocation_timeline: List[Tuple[float, int]]
    #: fault-injection outcome (zero when no plan was attached)
    preemptions: int = 0
    #: restart/checkpoint pauses charged to recoveries
    recovery_seconds: float = 0.0
    #: progress re-done because an abrupt fault lost un-checkpointed work
    lost_work_seconds: float = 0.0

    @property
    def completed(self) -> List[JobRuntime]:
        return [j for j in self.jobs if j.status == "done"]

    @property
    def average_jct(self) -> float:
        finished = self.completed
        if not finished:
            return float("inf")
        return sum(j.completion_time - j.job.arrival_time for j in finished) / len(finished)

    @property
    def jcts(self) -> List[float]:
        return [
            j.completion_time - j.job.arrival_time for j in self.completed
        ]


class ClusterSimulator:
    """Run one trace under one policy on one cluster."""

    WORK_EPS = 1e-6

    def __init__(
        self,
        cluster: Cluster,
        jobs: Sequence[TraceJob],
        policy: SchedulingPolicy,
        reconfig_delay: float = 15.0,
        round_interval: float = 120.0,
        faults: Optional[object] = None,
        checkpoint_interval: float = 600.0,
        membership: Optional[object] = None,
    ) -> None:
        if reconfig_delay < 0 or round_interval <= 0:
            raise ValueError("invalid simulator timing parameters")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.cluster = cluster
        self.policy = policy
        self.reconfig_delay = reconfig_delay
        self.round_interval = round_interval
        #: jobs checkpoint every this many simulated seconds; an abrupt
        #: fault loses the progress made since the last boundary
        self.checkpoint_interval = checkpoint_interval
        self.fault_injector = None
        if faults is not None:
            from repro.faults.injector import SimFaultInjector

            self.fault_injector = SimFaultInjector(faults)
        self.membership = None
        if membership is not None:
            from repro.hw.cluster import Machine
            from repro.hw.gpu import gpu_type
            from repro.membership.discovery import SimMembershipDriver

            self.membership = SimMembershipDriver(membership)
            # the plan's initial roster is extra capacity on top of the
            # base cluster, added before the capacity event below so the
            # saved stream self-describes the true starting inventory
            for spec in membership.initial_hosts:
                cluster.add_machine(
                    Machine.build(
                        spec.host_id, gpu_type(_canonical(spec.gtype)), spec.slots
                    )
                )
        self.preemptions = 0
        self.recovery_seconds = 0.0
        self.lost_work_seconds = 0.0
        self._extra_restart_delay = 0.0
        self._checkpoints_corrupt = 0
        self.runtimes = [
            JobRuntime(job=j, remaining_work=j.total_work)
            for j in sorted(jobs, key=lambda j: j.arrival_time)
        ]
        # mirror simulator events into the span tracer when observability
        # is on, so trace-sim runs export one merged timeline
        self.events = EventLog(tracer=obs.tracer() if obs.is_enabled() else None)
        self.now = 0.0
        self._timeline: List[Tuple[float, int]] = []
        #: index into ``runtimes`` of the next not-yet-admitted arrival
        #: (runtimes are sorted by arrival time above)
        self._arrival_cursor = 0
        #: batched-core working set (arrived, not yet done, arrival order);
        #: ``None`` under the heap/reference cores, which keep the seed's
        #: full-list scans
        self._active: Optional[List[JobRuntime]] = None
        #: set by :meth:`run_batched`: policies may route Role-2 proposal
        #: generation through the inter-scheduler's availability-keyed memo
        self.incremental_scheduling = False
        #: batched core: True while the last reschedule emitted no events
        #: and nothing observable changed since (fixpoint policies only)
        self._quiescent = False
        # lead the log with the cluster's per-type capacity so a saved
        # event stream is self-describing (the utilization report derives
        # idle GPU-seconds from it without access to the Cluster object)
        self.events.emit(
            0.0,
            "cluster_capacity",
            **{name.lower(): cluster.total(name) for name in cluster.type_names()},
        )

    # ------------------------------------------------------------------
    # allocation helpers used by policies
    # ------------------------------------------------------------------
    def grant(self, runtime: JobRuntime, gtype: str, count: int) -> None:
        """Allocate ``count`` GPUs of a type to a job (with restart cost)."""
        canonical = _canonical(gtype)
        self.cluster.allocate(runtime.job.job_id, canonical, count)
        runtime.owned[gtype] = runtime.owned.get(gtype, 0) + count
        runtime.reconfig_until = self.now + self.reconfig_delay
        if runtime.status == "pending":
            runtime.status = "running"
            runtime.start_time = self.now
        self.events.emit(
            self.now, "scale_out", job=runtime.job.job_id, gtype=gtype, gpus=count
        )

    def revoke(self, runtime: JobRuntime, gtype: str, count: int) -> None:
        canonical = _canonical(gtype)
        held = runtime.owned.get(gtype, 0)
        if count > held:
            raise ValueError(f"cannot revoke {count} {gtype} from {runtime.job.job_id}")
        gpus = [g for g in self.cluster.owned_by(runtime.job.job_id) if g.type.name == canonical]
        self.cluster.release(runtime.job.job_id, gpus[:count])
        runtime.owned[gtype] = held - count
        runtime.reconfig_until = self.now + self.reconfig_delay
        self.events.emit(
            self.now, "scale_in", job=runtime.job.job_id, gtype=gtype, gpus=count
        )

    def release_all(self, runtime: JobRuntime) -> None:
        self.cluster.release_all(runtime.job.job_id)
        runtime.owned = {}

    def free_by_type(self) -> Dict[str, int]:
        return {k.lower(): v for k, v in self.cluster.free_by_type().items()}

    def active_jobs(self) -> List[JobRuntime]:
        """Arrived, unfinished jobs in arrival order — the policies' working set.

        The batched core maintains this list incrementally (append on
        arrival, prune on completion), so month-long traces never rescan
        thousands of finished jobs per decision point; the heap and
        reference cores derive it with the seed's full scan.  ``runtimes``
        is sorted by arrival time and the arrival cursor admits strictly
        in that order, so both forms produce the identical list.
        """
        if self._active is not None:
            return self._active
        return [
            r
            for r in self.runtimes
            if r.status in ("pending", "running") and r.job.arrival_time <= self.now
        ]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _fault_victim(self, event, arrived: List[JobRuntime]) -> Optional[JobRuntime]:
        """The job a fault hits: the explicit ``job:<id>`` target, else the
        running job holding the most GPUs (ties broken by job id) — the
        statistically likeliest victim of a node loss, and deterministic."""
        target = event.target_job()
        running = [r for r in arrived if r.status == "running"]
        if target is not None:
            for runtime in arrived:
                if runtime.job.job_id == target and runtime.status != "done":
                    return runtime
            return None
        if not running:
            return None
        return max(running, key=lambda r: (r.total_owned, r.job.job_id))

    def _lost_work_seconds(self, runtime: JobRuntime) -> float:
        """Progress seconds lost to an abrupt fault: time since the last
        periodic checkpoint boundary (one extra interval per corrupted
        checkpoint), capped at the job's total running time."""
        if runtime.start_time is None:
            return 0.0
        elapsed = max(0.0, self.now - runtime.start_time)
        lost = (self.now - runtime.start_time) % self.checkpoint_interval
        lost += self._checkpoints_corrupt * self.checkpoint_interval
        self._checkpoints_corrupt = 0
        return min(lost, elapsed)

    def preempt(
        self,
        runtime: JobRuntime,
        count: int,
        gtype: Optional[str] = None,
        abrupt: bool = True,
        kind: str = "node_preempt",
    ) -> None:
        """Forcibly remove ``count`` GPUs from a job (fault path).

        Unlike :meth:`revoke` — a *scheduling* decision with an on-demand
        checkpoint — an abrupt preemption also loses the progress made
        since the last periodic checkpoint.  Emits a structured
        ``preempt`` event and notifies the policy via ``on_preempt``.
        """
        removed: List[Tuple[str, int]] = []
        remaining = max(0, count)  # 0 = crash/restart without GPU loss
        # prefer the requested type, then drain largest holdings first
        order = sorted(runtime.owned, key=lambda t: (t != gtype, -runtime.owned[t], t))
        for owned_type in order:
            if remaining <= 0:
                break
            take = min(remaining, runtime.owned.get(owned_type, 0))
            if take <= 0:
                continue
            canonical = _canonical(owned_type)
            gpus = [
                g
                for g in self.cluster.owned_by(runtime.job.job_id)
                if g.type.name == canonical
            ]
            self.cluster.release(runtime.job.job_id, gpus[:take])
            runtime.owned[owned_type] -= take
            removed.append((owned_type, take))
            remaining -= take

        lost = self._lost_work_seconds(runtime) if abrupt else 0.0
        if lost > 0:
            runtime.remaining_work += lost * runtime.effective_rate
            self.lost_work_seconds += lost
        delay = self.reconfig_delay + self._extra_restart_delay
        self._extra_restart_delay = 0.0
        runtime.reconfig_until = self.now + delay
        self.recovery_seconds += delay
        self.preemptions += 1
        runtime.faults.append((kind, self.now))
        for removed_type, taken in removed:
            self.events.emit(
                self.now,
                "preempt",
                job=runtime.job.job_id,
                gtype=removed_type,
                gpus=taken,
                fault=kind,
                abrupt=abrupt,
                lost_s=round(lost, 3),
            )
        if not removed:
            # crash without GPU loss still restarts the job
            self.events.emit(
                self.now,
                "preempt",
                job=runtime.job.job_id,
                gtype=None,
                gpus=0,
                fault=kind,
                abrupt=abrupt,
                lost_s=round(lost, 3),
            )
        if obs.is_enabled():
            obs.metrics().counter(
                "sim_preemptions_total", policy=self.policy.name, kind=kind
            ).inc()
        self.policy.on_preempt(self, runtime, self.now)

    def _apply_fault(self, event, arrived: List[JobRuntime]) -> None:
        if event.kind == "restart_delay":
            self._extra_restart_delay += float(event.magnitude)
            self.events.emit(self.now, "fault", fault=event.kind, magnitude=event.magnitude)
            return
        if event.kind == "checkpoint_corrupt":
            self._checkpoints_corrupt += 1
            self.events.emit(self.now, "fault", fault=event.kind, magnitude=event.magnitude)
            return
        victim = self._fault_victim(event, arrived)
        if victim is None:
            self.events.emit(self.now, "fault", fault=event.kind, wasted=True)
            return
        if event.kind == "slowdown":
            victim.fault_slowdown = max(victim.fault_slowdown, float(event.magnitude))
            victim.faults.append((event.kind, self.now))
            self.events.emit(
                self.now,
                "fault",
                fault=event.kind,
                job=victim.job.job_id,
                magnitude=event.magnitude,
            )
            self.policy.on_slowdown(self, victim, self.now, victim.fault_slowdown)
        elif event.kind == "worker_crash":
            self.preempt(victim, count=0, abrupt=True, kind=event.kind)
        elif event.kind == "gpu_revoke":
            self.preempt(
                victim, count=1, gtype=event.target_gtype(), abrupt=False, kind=event.kind
            )
        elif event.kind == "node_preempt":
            self.preempt(
                victim,
                count=max(1, int(event.magnitude)),
                gtype=event.target_gtype(),
                abrupt=True,
                kind=event.kind,
            )

    # ------------------------------------------------------------------
    # membership: hosts joining and leaving at decision points
    # ------------------------------------------------------------------
    def _evict_host_capacity(
        self, gtype: str, slots: int, arrived: List[JobRuntime], abrupt: bool, kind: str
    ) -> None:
        """Free ``slots`` GPUs of a leaving host's type, then remove them.

        Holders are preempted largest-first (ties by job id) — gracefully
        for drains/reclaims/blacklists (checkpoint at the boundary, zero
        lost work), abruptly for forceful removals (progress since the
        last periodic checkpoint is lost).
        """
        canonical = _canonical(gtype)
        while self.cluster.free_count(canonical) < slots:
            holders = [
                r
                for r in arrived
                if r.status == "running" and r.owned.get(gtype, 0) > 0
            ]
            if not holders:
                break
            victim = max(holders, key=lambda r: (r.owned.get(gtype, 0), r.job.job_id))
            need = slots - self.cluster.free_count(canonical)
            take = min(need, victim.owned.get(gtype, 0))
            self.preempt(victim, take, gtype, abrupt=abrupt, kind=kind)
        self.cluster.remove_free(canonical, min(slots, self.cluster.free_count(canonical)))

    def _apply_membership(self, action, arrived: List[JobRuntime]) -> None:
        """Apply one due membership action to registry, cluster, policy."""
        from repro.hw.cluster import Machine
        from repro.hw.gpu import gpu_type
        from repro.membership.lifecycle import (
            ACTIVE,
            BLACKLISTED,
            DRAINING,
            REMOVED,
            WARMING,
        )

        registry = self.membership.registry
        host = registry.get(action.host_id)
        op = action.op
        was_serving = host.serving

        def emit(kind: str) -> None:
            self.events.emit(
                self.now, kind, host=host.host_id, gtype=host.gtype, gpus=host.slots
            )

        if op == "announce":
            registry.transition(host.host_id, WARMING)
            emit("host_announce")
        elif op in ("join", "rejoin"):
            if op == "join" and host.state != WARMING:
                return  # already promoted (ready raced its warm-up deadline)
            if op == "rejoin" and host.state != BLACKLISTED:
                return  # removed while blacklisted: the expiry is moot
            registry.transition(host.host_id, ACTIVE)
            self.cluster.add_machine(
                Machine.build(
                    host.host_id, gpu_type(_canonical(host.gtype)), host.slots
                )
            )
            emit(f"host_{op}")
            self.policy.on_join(self, self.now, host.gtype, host.slots)
        elif op == "reclaim_notice":
            registry.transition(host.host_id, DRAINING)
            emit("host_reclaim_notice")
        elif op in ("drain", "reclaim"):
            if op == "drain":
                registry.transition(host.host_id, DRAINING)
            elif host.state != DRAINING:
                return  # removed during the notice window: nothing to reclaim
            registry.transition(host.host_id, REMOVED)
            if was_serving:
                self._evict_host_capacity(
                    host.gtype, host.slots, arrived, abrupt=False, kind=f"host_{op}"
                )
            emit(f"host_{op}")
        elif op == "blacklist":
            registry.transition(host.host_id, BLACKLISTED)
            if was_serving:
                self._evict_host_capacity(
                    host.gtype, host.slots, arrived, abrupt=False, kind="host_blacklist"
                )
            emit("host_blacklist")
        elif op == "forceful_remove":
            registry.transition(host.host_id, REMOVED)
            if was_serving:
                self._evict_host_capacity(
                    host.gtype, host.slots, arrived, abrupt=True, kind="host_remove"
                )
            emit("host_remove")

    # ------------------------------------------------------------------
    # main loop — shared decision-point body
    # ------------------------------------------------------------------
    def _iterate(self, t_next: float, arrived: List[JobRuntime]) -> None:
        """Process one decision point at ``t_next`` (both event cores).

        Accrues progress, admits due arrivals, applies due faults, marks
        completions, lets the policy reschedule, and records the
        allocation timeline — exactly the seed iteration body, so the
        heap core and the reference core emit identical event streams.
        """
        for runtime in arrived:
            runtime.advance(self.now, t_next)
        self.now = t_next

        self._admit_arrivals(arrived)

        if self.membership is not None:
            # membership precedes faults: a host that joins and a fault
            # that strikes at one decision point see consistent capacity
            for action in self.membership.due(self.now):
                self._apply_membership(action, arrived)

        if self.fault_injector is not None:
            for event in self.fault_injector.due(self.now):
                self._apply_fault(event, arrived)

        for runtime in arrived:
            if runtime.status == "running" and runtime.remaining_work <= self.WORK_EPS:
                self._complete(runtime)

        self.policy.reschedule(self, self.now)
        self._timeline.append((self.now, self.cluster.allocated_count()))

    def _admit_arrivals(self, arrived: List[JobRuntime]) -> bool:
        """Admit every arrival due at ``now``; True when any was admitted."""
        admitted = False
        while (
            self._arrival_cursor < len(self.runtimes)
            and self.runtimes[self._arrival_cursor].job.arrival_time <= self.now
        ):
            runtime = self.runtimes[self._arrival_cursor]
            self._arrival_cursor += 1
            arrived.append(runtime)
            admitted = True
            self.events.emit(self.now, "job_submit", job=runtime.job.job_id)
            self.policy.on_job_arrival(self, runtime)
        return admitted

    def _complete(self, runtime: JobRuntime) -> None:
        """Mark one running job finished (shared by all event cores)."""
        runtime.status = "done"
        runtime.completion_time = self.now
        runtime.rate = 0.0
        released = runtime.total_owned
        self.release_all(runtime)
        self.events.emit(
            self.now, "job_done", job=runtime.job.job_id, released=released
        )
        if obs.is_enabled() and runtime.start_time is not None:
            obs.tracer().add_span(
                f"job:{runtime.job.job_id}",
                start=runtime.start_time,
                end=self.now,
                cat="sched",
                track=runtime.job.job_id,
                policy=self.policy.name,
            )
            obs.metrics().counter(
                "sim_jobs_completed_total", policy=self.policy.name
            ).inc()

    def _iterate_batched(
        self, t_next: float, state: "_BatchedState", mutating: bool
    ) -> None:
        """One decision point on the batched core.

        Identical observable behavior to :meth:`_iterate`, but:

        - progress accrual runs vectorized over the persistent SoA
          mirror, written back to the job objects only when ``mutating``
          (an arrival, fault, or membership entry is due — scalar code is
          about to read/modify job state);
        - the completion scan reads the mirror on quiet points;
        - the policy is *skipped* at decision points where nothing
          observable changed since a reschedule that emitted no events —
          valid only for ``fixpoint_reschedule`` policies, whose
          rescheduling is a pure function of unchanged state (a skipped
          call would have been a no-op and emitted nothing, so the
          :class:`EventLog` is untouched).
        """
        arrived = self._active
        state.advance(self.now, t_next)
        self.now = t_next

        if mutating:
            state.writeback()
            changed = self._admit_arrivals(arrived)
            if self.membership is not None:
                for action in self.membership.due(self.now):
                    self._apply_membership(action, arrived)
                    changed = True
            if self.fault_injector is not None:
                for event in self.fault_injector.due(self.now):
                    self._apply_fault(event, arrived)
                    changed = True
            done = [
                r
                for r in arrived
                if r.status == "running" and r.remaining_work <= self.WORK_EPS
            ]
        else:
            changed = False
            # no mid-body mutation: the mirror's post-advance remaining
            # work is exact, and its job order is the arrival order the
            # scalar scan would have used
            done = state.completed_jobs()
        for runtime in done:
            self._complete(runtime)
        if done:
            changed = True
            arrived[:] = [r for r in arrived if r.status != "done"]

        if changed or not self._quiescent or not self.policy.fixpoint_reschedule:
            events_before = len(self.events)
            self.policy.reschedule(self, self.now)
            emitted = len(self.events) != events_before
            self._quiescent = self.policy.fixpoint_reschedule and not emitted
            if changed or emitted or not self.policy.fixpoint_reschedule:
                # job state moved outside the mirror (or the policy gives
                # no fixpoint guarantee): rebuild from the objects
                state.refresh(arrived)
        self._timeline.append((self.now, self.cluster.allocated_count()))

    def _result(self) -> SimResult:
        makespan = max(
            (r.completion_time for r in self.runtimes if r.completion_time is not None),
            default=0.0,
        )
        return SimResult(
            policy=self.policy.name,
            jobs=self.runtimes,
            events=self.events,
            makespan=makespan,
            allocation_timeline=self._timeline,
            preemptions=self.preemptions,
            recovery_seconds=self.recovery_seconds,
            lost_work_seconds=self.lost_work_seconds,
        )

    # ------------------------------------------------------------------
    # heap event core
    # ------------------------------------------------------------------
    def run(self, max_time: float = 10_000_000.0) -> SimResult:
        """Run the trace on the ``heapq`` event core.

        Arrival, fault, periodic-round, and predicted-completion events
        live in one priority queue ordered by ``(time, seq)`` — ``seq``
        is a monotone push counter, so ties are deterministic and never
        compare payloads.  Completion predictions are *lazily
        invalidated*: each push carries a per-job version stamp, and a
        popped entry whose stamp no longer matches (the job was
        rescheduled, slowed, preempted, or finished) is discarded.
        Entries at or before the last processed decision point are
        likewise discarded — the iteration body already handled
        everything due at that time, mirroring the seed semantics of
        batching coincident events into one decision point.

        Produces an :class:`EventLog` byte-for-byte identical to
        :meth:`run_reference` (asserted by the fast-path test suite): the
        freshest completion entry for a job is always the prediction the
        seed core would have computed at the previous decision point.

        A simulator instance is single-shot: call :meth:`run` *or*
        :meth:`run_reference`, once.
        """
        heap: List[Tuple[float, int, str, object]] = []
        seq = 0
        arrived: List[JobRuntime] = []

        for runtime in self.runtimes:
            heap.append((runtime.job.arrival_time, seq, "arrival", None))
            seq += 1
        if self.fault_injector is not None:
            # a fault at exactly t=0 is never its own decision point in the
            # seed core (candidates are strictly after `now`); it fires via
            # due() at the first real decision point, so don't enqueue it
            t = 0.0
            while True:
                t = self.fault_injector.next_time(t)
                if t is None:
                    break
                heap.append((t, seq, "fault", None))
                seq += 1
        if self.membership is not None:
            # same rule as faults: an action at exactly t=0 is never its
            # own decision point; it fires via due() at the first real one
            for t in self.membership.times():
                if t > 0.0:
                    heap.append((t, seq, "membership", None))
                    seq += 1
        heapq.heapify(heap)
        last_round_pushed: Optional[float] = None
        processed_until: Optional[float] = None

        while True:
            # pop until a live entry surfaces (lazy invalidation)
            t_next: Optional[float] = None
            while heap:
                time, _, kind, data = heapq.heappop(heap)
                if processed_until is not None and time <= processed_until:
                    continue  # this decision point already handled it
                if kind == "completion":
                    runtime, stamp = data  # type: ignore[misc]
                    if stamp != runtime._eta_stamp or runtime.status != "running":
                        continue  # superseded prediction
                elif kind == "round":
                    if not any(r.status == "running" for r in arrived):
                        continue  # seed only schedules rounds while work runs
                t_next = time
                break
            if t_next is None:
                break
            if t_next > max_time:
                break

            self._iterate(t_next, arrived)
            processed_until = t_next

            if self._arrival_cursor >= len(self.runtimes) and all(
                r.status == "done" for r in arrived
            ):
                break

            # refresh volatile events from the post-reschedule state — the
            # same state the seed core reads at its next iteration's top
            for runtime in arrived:
                eta = runtime.predicted_completion(self.now)
                if eta != runtime._eta_pushed:
                    runtime._eta_stamp += 1
                    runtime._eta_pushed = eta
                    if eta is not None:
                        heapq.heappush(
                            heap, (eta, seq, "completion", (runtime, runtime._eta_stamp))
                        )
                        seq += 1
            if any(r.status == "running" for r in arrived):
                next_round = (
                    int(self.now / self.round_interval) + 1
                ) * self.round_interval
                if next_round != last_round_pushed:
                    last_round_pushed = next_round
                    heapq.heappush(heap, (next_round, seq, "round", None))
                    seq += 1

        return self._result()

    # ------------------------------------------------------------------
    # batched event core (heap queue + vectorized decision points)
    # ------------------------------------------------------------------
    def run_batched(self, max_time: float = 10_000_000.0) -> SimResult:
        """Run the trace on the batched event core.

        Same priority queue, lazy invalidation, and decision-point
        semantics as :meth:`run`, with three scale enablers:

        - an incrementally maintained **active set** (append on arrival,
          prune on completion) replaces the seed's scan over every job
          ever admitted — month-long traces stop paying O(total jobs) per
          decision point;
        - a **structure-of-arrays mirror** of the running jobs turns
          per-job ``advance``/``predicted_completion``/completion checks
          into vectorized NumPy float64 expressions (elementwise IEEE
          ops: bit-identical to the scalar arithmetic);
        - runs of coincident events are **drained in one pass**: every
          queue entry at the chosen timestamp is consumed before the
          decision point executes, instead of being popped and discarded
          one iteration at a time;
        - ``incremental_scheduling`` is switched on, letting
          :class:`~repro.sched.easyscale_policy.EasyScalePolicy` reuse
          memoized Role-2 proposals for jobs whose availability key and
          capability-table generation did not change.

        Produces an :class:`EventLog` byte-for-byte identical to
        :meth:`run` and :meth:`run_reference` (asserted by the batched
        equivalence suite).  A simulator instance is single-shot.
        """
        heap: List[Tuple[float, int, str, object]] = []
        seq = 0
        self._active = []
        self.incremental_scheduling = True
        self._quiescent = False
        arrived = self._active
        runtimes = self.runtimes

        for runtime in runtimes:
            heap.append((runtime.job.arrival_time, seq, "arrival", None))
            seq += 1
        if self.fault_injector is not None:
            # t=0 faults/membership fire via due() at the first real
            # decision point, exactly as in run() — never enqueued
            t = 0.0
            while True:
                t = self.fault_injector.next_time(t)
                if t is None:
                    break
                heap.append((t, seq, "fault", None))
                seq += 1
        if self.membership is not None:
            for t in self.membership.times():
                if t > 0.0:
                    heap.append((t, seq, "membership", None))
                    seq += 1
        heapq.heapify(heap)
        last_round_pushed: Optional[float] = None
        processed_until: Optional[float] = None
        state = _BatchedState()
        #: generation counter for the single min-ETA completion entry;
        #: entries stamped with an older generation are stale predictions
        eta_gen = 0
        MUTATING = ("arrival", "fault", "membership")

        while True:
            t_next: Optional[float] = None
            mutating = False
            while heap:
                time, _, kind, data = heapq.heappop(heap)
                if processed_until is not None and time <= processed_until:
                    continue  # this decision point already handled it
                if kind == "completion":
                    if data != eta_gen:
                        continue  # superseded prediction
                elif kind == "round":
                    # statuses cannot change between the last refresh and
                    # this pop, so the mirror's liveness flag is exact
                    if not state.any_running:
                        continue
                t_next = time
                mutating = kind in MUTATING
                break
            if t_next is None:
                break
            if t_next > max_time:
                break
            # drain the whole run of coincident entries now: the decision
            # point below batches everything due at t_next regardless of
            # which entry surfaced it.  Every fault/membership time after
            # t=0 has a queue entry, so the drained kinds tell exactly
            # whether scalar mutation paths can fire at this point; the
            # first decision point is always treated as mutating because
            # t<=0 faults/membership fire via due() without an entry.
            while heap and heap[0][0] == t_next:
                kind = heapq.heappop(heap)[2]
                if kind in MUTATING:
                    mutating = True
            if processed_until is None:
                mutating = True
            elif (
                self._arrival_cursor < len(runtimes)
                and runtimes[self._arrival_cursor].job.arrival_time <= t_next
            ):
                mutating = True  # belt and braces: a due arrival always mutates

            self._iterate_batched(t_next, state, mutating)
            processed_until = t_next

            if self._arrival_cursor >= len(runtimes) and not arrived:
                break

            # one generation-stamped candidate for the earliest predicted
            # completion — the only future ETA that can become the next
            # decision point; everything is re-predicted after it fires
            eta = state.min_eta(self.now)
            if eta is not None:
                eta_gen += 1
                heapq.heappush(heap, (eta, seq, "completion", eta_gen))
                seq += 1
            if state.any_running:
                next_round = (
                    int(self.now / self.round_interval) + 1
                ) * self.round_interval
                if next_round != last_round_pushed:
                    last_round_pushed = next_round
                    heapq.heappush(heap, (next_round, seq, "round", None))
                    seq += 1

        state.writeback()
        if obs.is_enabled():
            obs.metrics().counter(
                "sim_batched_decision_points_total", policy=self.policy.name
            ).inc(len(self._timeline))
        return self._result()

    # ------------------------------------------------------------------
    # reference event core (the seed linear-scan loop)
    # ------------------------------------------------------------------
    def run_reference(self, max_time: float = 10_000_000.0) -> SimResult:
        """The seed O(n²) candidate-scan loop, kept as equivalence oracle.

        Rebuilds the full candidate-time list (head arrival, every running
        job's predicted completion, the next periodic round, the next
        fault) at every decision point and steps to the minimum.  The
        heap core must reproduce this loop's :class:`EventLog` exactly.
        """
        arrived: List[JobRuntime] = []

        while True:
            candidates: List[float] = []
            if self._arrival_cursor < len(self.runtimes):
                head = self.runtimes[self._arrival_cursor]
                candidates.append(max(head.job.arrival_time, self.now))
            for runtime in arrived:
                eta = runtime.predicted_completion(self.now)
                if eta is not None:
                    candidates.append(eta)
            if any(r.status == "running" for r in arrived):
                next_round = (int(self.now / self.round_interval) + 1) * self.round_interval
                candidates.append(next_round)
            if self.fault_injector is not None:
                fault_time = self.fault_injector.next_time(self.now)
                if fault_time is not None:
                    candidates.append(fault_time)
            if self.membership is not None:
                member_time = self.membership.next_time(self.now)
                if member_time is not None:
                    candidates.append(member_time)
            if not candidates:
                break
            t_next = min(candidates)
            if t_next > max_time:
                break

            self._iterate(t_next, arrived)

            if self._arrival_cursor >= len(self.runtimes) and all(
                r.status == "done" for r in arrived
            ):
                break

        return self._result()


class _BatchedState:
    """Structure-of-arrays mirror of the running jobs (batched core).

    The mirror is *persistent*: :meth:`advance` updates the remaining-work
    vector in place across decision points and only lazily writes the
    values back to the :class:`JobRuntime` objects (:meth:`writeback`)
    when scalar code is about to read them — so a quiescent periodic
    round costs a handful of vector ops, not a Python loop over every
    running job.  :meth:`refresh` rebuilds the mirror from the objects
    whenever job state changed outside it (arrivals, completions, faults,
    membership, grants).

    Every array op mirrors the scalar arithmetic of
    :meth:`JobRuntime.advance` / :meth:`JobRuntime.predicted_completion`
    elementwise in float64 — IEEE-identical (NumPy does not fuse or
    reassociate elementwise expressions), so fingerprints are bit-exact.
    """

    __slots__ = ("jobs", "remaining", "eff_rate", "reconfig", "any_running", "stale")

    def __init__(self) -> None:
        self.jobs: List[JobRuntime] = []
        self.remaining = np.empty(0, dtype=np.float64)
        self.eff_rate = np.empty(0, dtype=np.float64)
        self.reconfig = np.empty(0, dtype=np.float64)
        self.any_running = False
        #: True while the remaining-work vector is ahead of the objects
        self.stale = False

    def refresh(self, active: List[JobRuntime]) -> None:
        """Rebuild the mirror from the job objects (after syncing them)."""
        self.writeback()
        jobs = [r for r in active if r.status == "running"]
        self.jobs = jobs
        n = len(jobs)
        self.any_running = n > 0
        self.remaining = np.fromiter(
            (r.remaining_work for r in jobs), dtype=np.float64, count=n
        )
        rate = np.fromiter((r.rate for r in jobs), dtype=np.float64, count=n)
        slowdown = np.fromiter(
            (r.fault_slowdown for r in jobs), dtype=np.float64, count=n
        )
        self.reconfig = np.fromiter(
            (r.reconfig_until for r in jobs), dtype=np.float64, count=n
        )
        # JobRuntime.effective_rate: rate / fault_slowdown if rate > 0 else 0
        self.eff_rate = np.where(rate > 0.0, rate / np.where(rate > 0.0, slowdown, 1.0), 0.0)

    def writeback(self) -> None:
        """Scatter the advanced remaining-work values back to the objects."""
        if not self.stale:
            return
        for runtime, value in zip(self.jobs, self.remaining.tolist()):
            runtime.remaining_work = value
        self.stale = False

    def advance(self, t_from: float, t_to: float) -> None:
        """Vectorized :meth:`JobRuntime.advance` over the running jobs."""
        if not self.jobs:
            return
        dt = t_to - np.maximum(t_from, self.reconfig)
        mask = (self.eff_rate > 0.0) & (dt > 0.0)
        if not mask.any():
            return
        stepped = np.maximum(0.0, self.remaining - self.eff_rate * dt)
        np.copyto(self.remaining, stepped, where=mask)
        self.stale = True

    def completed_jobs(self) -> List[JobRuntime]:
        """Running jobs at/below the completion epsilon, in arrival order."""
        if not self.jobs:
            return []
        idx = np.nonzero(self.remaining <= ClusterSimulator.WORK_EPS)[0]
        return [self.jobs[i] for i in idx.tolist()]

    def min_eta(self, now: float) -> Optional[float]:
        """The earliest predicted completion strictly after ``now``.

        The batched core enqueues only this single candidate per decision
        point (generation-stamped, so older minima are discarded on pop)
        instead of one entry per running job: the next decision point is
        the *minimum* over all candidate times, and every later ETA is
        recomputed afresh once that point executes.  Per-element ETA math
        is identical to :meth:`JobRuntime.predicted_completion`, so the
        minimum is the exact float the reference core would have stepped
        to.  Predictions at or before ``now`` are not candidates, exactly
        like the reference core's strictly-future candidate scan.
        """
        if not self.jobs:
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            etas = np.maximum(now, self.reconfig) + self.remaining / self.eff_rate
        etas = np.where((self.eff_rate > 0.0) & (etas > now), etas, np.inf)
        earliest = float(etas.min())
        return earliest if earliest != float("inf") else None


def _canonical(name: str) -> str:
    return {"v100": "V100", "p100": "P100", "t4": "T4"}.get(name.lower(), name)
