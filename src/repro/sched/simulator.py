"""Discrete-event cluster simulator for the trace experiments (§5.2).

The simulator advances time between *decision points* — job arrivals,
predicted completions, and periodic scheduling rounds — accruing each
running job's progress at its current estimated throughput in between.
Scheduling itself is delegated to a pluggable :class:`SchedulingPolicy`
(YARN-CS gang scheduling, or the EasyScale intra-/inter-job scheduler
pair), so the three bars of Fig. 14 run the identical trace through
identical machinery.

Reconfiguration is not free: a job whose allocation changed pauses for
``reconfig_delay`` seconds (on-demand checkpoint + restart), matching the
paper's "scale in seconds" granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.hw.cluster import Cluster
from repro.sched.trace import TraceJob
from repro.utils.events import EventLog


@dataclass
class JobRuntime:
    """Mutable per-job state inside the simulator."""

    job: TraceJob
    remaining_work: float
    owned: Dict[str, int] = field(default_factory=dict)
    status: str = "pending"  # pending | running | done
    rate: float = 0.0
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    #: progress paused until this time (checkpoint/restart cost)
    reconfig_until: float = 0.0
    #: policy-private state (e.g. the intra-job scheduler)
    agent: object = None

    @property
    def total_owned(self) -> int:
        return sum(self.owned.values())

    def advance(self, t_from: float, t_to: float) -> None:
        """Accrue progress over [t_from, t_to) at the current rate."""
        if self.status != "running" or self.rate <= 0:
            return
        effective_from = max(t_from, self.reconfig_until)
        dt = t_to - effective_from
        if dt > 0:
            self.remaining_work = max(0.0, self.remaining_work - self.rate * dt)

    def predicted_completion(self, now: float) -> Optional[float]:
        if self.status != "running" or self.rate <= 0:
            return None
        start = max(now, self.reconfig_until)
        return start + self.remaining_work / self.rate


class SchedulingPolicy:
    """Reallocates GPUs at every decision point."""

    name = "abstract"

    def on_job_arrival(self, sim: "ClusterSimulator", runtime: JobRuntime) -> None:
        """Hook for per-job setup (e.g. build an intra-job scheduler)."""

    def reschedule(self, sim: "ClusterSimulator", now: float) -> None:
        raise NotImplementedError


@dataclass
class SimResult:
    """Outcome of one simulated trace run."""

    policy: str
    jobs: List[JobRuntime]
    events: EventLog
    makespan: float
    #: (time, total allocated GPUs) step series
    allocation_timeline: List[Tuple[float, int]]

    @property
    def completed(self) -> List[JobRuntime]:
        return [j for j in self.jobs if j.status == "done"]

    @property
    def average_jct(self) -> float:
        finished = self.completed
        if not finished:
            return float("inf")
        return sum(j.completion_time - j.job.arrival_time for j in finished) / len(finished)

    @property
    def jcts(self) -> List[float]:
        return [
            j.completion_time - j.job.arrival_time for j in self.completed
        ]


class ClusterSimulator:
    """Run one trace under one policy on one cluster."""

    WORK_EPS = 1e-6

    def __init__(
        self,
        cluster: Cluster,
        jobs: Sequence[TraceJob],
        policy: SchedulingPolicy,
        reconfig_delay: float = 15.0,
        round_interval: float = 120.0,
    ) -> None:
        if reconfig_delay < 0 or round_interval <= 0:
            raise ValueError("invalid simulator timing parameters")
        self.cluster = cluster
        self.policy = policy
        self.reconfig_delay = reconfig_delay
        self.round_interval = round_interval
        self.runtimes = [
            JobRuntime(job=j, remaining_work=j.total_work)
            for j in sorted(jobs, key=lambda j: j.arrival_time)
        ]
        # mirror simulator events into the span tracer when observability
        # is on, so trace-sim runs export one merged timeline
        self.events = EventLog(tracer=obs.tracer() if obs.is_enabled() else None)
        self.now = 0.0
        self._timeline: List[Tuple[float, int]] = []
        # lead the log with the cluster's per-type capacity so a saved
        # event stream is self-describing (the utilization report derives
        # idle GPU-seconds from it without access to the Cluster object)
        self.events.emit(
            0.0,
            "cluster_capacity",
            **{name.lower(): cluster.total(name) for name in cluster.type_names()},
        )

    # ------------------------------------------------------------------
    # allocation helpers used by policies
    # ------------------------------------------------------------------
    def grant(self, runtime: JobRuntime, gtype: str, count: int) -> None:
        """Allocate ``count`` GPUs of a type to a job (with restart cost)."""
        canonical = _canonical(gtype)
        self.cluster.allocate(runtime.job.job_id, canonical, count)
        runtime.owned[gtype] = runtime.owned.get(gtype, 0) + count
        runtime.reconfig_until = self.now + self.reconfig_delay
        if runtime.status == "pending":
            runtime.status = "running"
            runtime.start_time = self.now
        self.events.emit(
            self.now, "scale_out", job=runtime.job.job_id, gtype=gtype, gpus=count
        )

    def revoke(self, runtime: JobRuntime, gtype: str, count: int) -> None:
        canonical = _canonical(gtype)
        held = runtime.owned.get(gtype, 0)
        if count > held:
            raise ValueError(f"cannot revoke {count} {gtype} from {runtime.job.job_id}")
        gpus = [g for g in self.cluster.owned_by(runtime.job.job_id) if g.type.name == canonical]
        self.cluster.release(runtime.job.job_id, gpus[:count])
        runtime.owned[gtype] = held - count
        runtime.reconfig_until = self.now + self.reconfig_delay
        self.events.emit(
            self.now, "scale_in", job=runtime.job.job_id, gtype=gtype, gpus=count
        )

    def release_all(self, runtime: JobRuntime) -> None:
        self.cluster.release_all(runtime.job.job_id)
        runtime.owned = {}

    def free_by_type(self) -> Dict[str, int]:
        return {k.lower(): v for k, v in self.cluster.free_by_type().items()}

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_time: float = 10_000_000.0) -> SimResult:
        pending_arrivals = list(self.runtimes)
        arrived: List[JobRuntime] = []

        while True:
            candidates: List[float] = []
            if pending_arrivals:
                candidates.append(max(pending_arrivals[0].job.arrival_time, self.now))
            for runtime in arrived:
                eta = runtime.predicted_completion(self.now)
                if eta is not None:
                    candidates.append(eta)
            if any(r.status == "running" for r in arrived):
                next_round = (int(self.now / self.round_interval) + 1) * self.round_interval
                candidates.append(next_round)
            if not candidates:
                break
            t_next = min(candidates)
            if t_next > max_time:
                break

            for runtime in arrived:
                runtime.advance(self.now, t_next)
            self.now = t_next

            while pending_arrivals and pending_arrivals[0].job.arrival_time <= self.now:
                runtime = pending_arrivals.pop(0)
                arrived.append(runtime)
                self.events.emit(self.now, "job_submit", job=runtime.job.job_id)
                self.policy.on_job_arrival(self, runtime)

            for runtime in arrived:
                if runtime.status == "running" and runtime.remaining_work <= self.WORK_EPS:
                    runtime.status = "done"
                    runtime.completion_time = self.now
                    runtime.rate = 0.0
                    released = runtime.total_owned
                    self.release_all(runtime)
                    self.events.emit(
                        self.now, "job_done", job=runtime.job.job_id, released=released
                    )
                    if obs.is_enabled() and runtime.start_time is not None:
                        obs.tracer().add_span(
                            f"job:{runtime.job.job_id}",
                            start=runtime.start_time,
                            end=self.now,
                            cat="sched",
                            track=runtime.job.job_id,
                            policy=self.policy.name,
                        )
                        obs.metrics().counter(
                            "sim_jobs_completed_total", policy=self.policy.name
                        ).inc()

            self.policy.reschedule(self, self.now)
            self._timeline.append((self.now, self.cluster.allocated_count()))

            if not pending_arrivals and all(
                r.status == "done" for r in arrived
            ):
                break

        makespan = max(
            (r.completion_time for r in self.runtimes if r.completion_time is not None),
            default=0.0,
        )
        return SimResult(
            policy=self.policy.name,
            jobs=self.runtimes,
            events=self.events,
            makespan=makespan,
            allocation_timeline=self._timeline,
        )


def _canonical(name: str) -> str:
    return {"v100": "V100", "p100": "P100", "t4": "T4"}.get(name.lower(), name)
