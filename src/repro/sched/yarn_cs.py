"""YARN capacity scheduler baseline (FIFO gang scheduling).

The comparison point of §5.2: Apache YARN's capacity scheduler as used in
Microsoft Philly.  Strict FIFO — the head-of-queue job waits until its
*entire* gang (``requested_gpus`` of ``requested_type``) is free, holding
everything behind it; allocations are fixed for the job's lifetime.  Long
queueing under bursty arrivals is exactly what the elasticity of EasyScale
removes.
"""

from __future__ import annotations

from typing import List

from repro.sched.simulator import ClusterSimulator, JobRuntime, SchedulingPolicy


class YarnCapacityScheduler(SchedulingPolicy):
    """Strict-FIFO gang scheduling with same-type allocation."""

    name = "yarn-cs"
    # admission depends only on the queue and the free pool; a pass that
    # admitted nothing (no events) changes nothing and stays blocked until
    # the free pool or the queue changes
    fixpoint_reschedule = True

    def __init__(self) -> None:
        self._queue: List[JobRuntime] = []

    def on_job_arrival(self, sim: ClusterSimulator, runtime: JobRuntime) -> None:
        self._queue.append(runtime)

    def reschedule(self, sim: ClusterSimulator, now: float) -> None:
        # FIFO: admit from the head while the head's full gang fits.
        while self._queue:
            head = self._queue[0]
            if head.status == "done":
                self._queue.pop(0)
                continue
            gtype = head.job.requested_type
            free = sim.free_by_type().get(gtype, 0)
            if free < head.job.requested_gpus:
                return  # head blocks the queue: no backfill
            self._queue.pop(0)
            sim.grant(head, gtype, head.job.requested_gpus)
            # gang jobs don't pay the elastic restart cost at admission
            head.reconfig_until = now
            head.rate = head.job.requested_rate()

    def on_preempt(self, sim: ClusterSimulator, runtime: JobRuntime, now: float) -> None:
        """A gang job cannot run on a partial gang: release the remnant and
        requeue at the head (it keeps its FIFO seniority), waiting for the
        full gang to be free again."""
        if runtime.total_owned >= runtime.job.requested_gpus:
            return  # crash without GPU loss: restart cost already charged
        sim.release_all(runtime)
        runtime.status = "pending"
        runtime.rate = 0.0
        if runtime not in self._queue:
            self._queue.insert(0, runtime)
