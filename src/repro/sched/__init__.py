"""EasyScale scheduling: Eq. (1) model, companion DB, intra/inter-job
schedulers, discrete-event cluster simulator, and baselines."""

from repro.sched.perfmodel import (
    Plan,
    ScoredPlan,
    estimated_throughput,
    overload_factor,
    waste,
)
from repro.sched.aimaster import AIMaster, ThroughputMonitor
from repro.sched.companion import CompanionModule
from repro.sched.history import HistoryStore
from repro.sched.plancache import PlanCache, PlanCacheStats, availability_key
from repro.sched.intra import IntraJobScheduler, ResourceProposal, plan_to_assignment
from repro.sched.inter import Grant, InterJobScheduler
from repro.sched.simulator import ClusterSimulator, JobRuntime, SchedulingPolicy, SimResult
from repro.sched.yarn_cs import YarnCapacityScheduler
from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.colocation_policy import ServingColocationPolicy
from repro.sched.trace import (
    GPU_DEMAND,
    PRODUCTION_DEMAND,
    TraceJob,
    diurnal_trace,
    generate_trace,
    heavy_tail_trace,
)
from repro.sched.serving import (
    MINUTES_PER_DAY,
    ColocationStats,
    ServingLoadModel,
    simulate_colocation,
)

__all__ = [
    "Plan",
    "ScoredPlan",
    "overload_factor",
    "waste",
    "estimated_throughput",
    "CompanionModule",
    "HistoryStore",
    "PlanCache",
    "PlanCacheStats",
    "availability_key",
    "AIMaster",
    "ThroughputMonitor",
    "IntraJobScheduler",
    "ResourceProposal",
    "plan_to_assignment",
    "InterJobScheduler",
    "Grant",
    "ClusterSimulator",
    "JobRuntime",
    "SchedulingPolicy",
    "SimResult",
    "YarnCapacityScheduler",
    "EasyScalePolicy",
    "ServingColocationPolicy",
    "TraceJob",
    "generate_trace",
    "diurnal_trace",
    "heavy_tail_trace",
    "GPU_DEMAND",
    "PRODUCTION_DEMAND",
    "ServingLoadModel",
    "ColocationStats",
    "simulate_colocation",
    "MINUTES_PER_DAY",
]
