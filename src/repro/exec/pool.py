"""ProcessPoolBackend: real parallel worker execution, bitwise-equal to serial.

Each physical worker's per-step compute (one local step per hosted EST)
runs as one task in a persistent :mod:`multiprocessing` pool.  The
determinism argument, in the order things happen:

1. **Parent-side sequencing.**  Fault hooks and ``load_batch`` calls
   mutate parent state (injector exactly-once bookkeeping, loader
   round-robin cursors, queue consumption).  The backend runs them in
   the exact serial order — worker 0's ESTs, then worker 1's — *before*
   dispatching any compute, so that state evolves identically to the
   serial loop.
2. **Identical numerics in children.**  A child keeps a cached model
   replica (rebuilt deterministically from the workload spec + job seed,
   so its construction cost is paid once per process), loads the
   parent's ``state_dict`` for the step, and runs
   :func:`repro.core.worker.execute_local_step` — the same function the
   serial path calls — under the worker's dialect/policy and the EST's
   shipped RNG state.
3. **Per-bucket flat shipping is byte-pure.**  Children flatten
   gradients into the engine's current bucket layout; flatten/unflatten
   are pure byte moves (no arithmetic), so the reconstructed
   per-parameter gradients are bitwise what the serial path produced —
   whether the flat bytes travel by pickle through the pool's result
   queue (``transport="pickle"``) or by shared-memory slab
   (``transport="shm"``, the default; see :mod:`repro.exec.shm`).
4. **Fixed merge order.**  Results are assembled in *submission* order
   (worker 0 first), never completion order, and each worker's ESTs stay
   in local order.  The shm transport *collects* finished buckets in
   publication order — overlapping the parent's unflatten copies with
   still-running child compute — but collection fills a keyed staging
   map; the merge that the engine's reduction sees is always the
   submission order, so the association cannot depend on which child
   finished first.
5. **State write-back.**  Advanced RNG states are restored into the
   parent's EST objects, gradients are staged, and BN journal entries
   are re-bound (by module name) to the parent's layers so folding
   happens on the authoritative replica in virtual-rank order.  With a
   commit cadence (``batches_per_commit > 1``) the RNG/BN write-back is
   deferred: the backend banks each step's advanced RNG states and
   journal entries and applies them — in the exact per-step order the
   serial loop would have — at the next commit boundary, checkpoint, or
   explicit :meth:`commit`.  Between boundaries the parent's EST/BN
   state lags, but nothing reads it: children receive the banked RNG
   states, and BN running buffers are never read by training-mode
   forward.

What cannot be parallelized: policies that keep *process-global* mutable
kernel state — the autotuner's profiling counters and the "atomic"
scatter/reduce interleave counter.  Those counters live per process and
are deliberately not checkpointable (that is the non-determinism they
model), so a pool run could never replicate their serial evolution.  The
backend rejects such policies up front with a clear error.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import shutil
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs import flightrec
from repro.comm.bucketing import BucketAssignment
from repro.exec import shm as shm_mod
from repro.exec.base import ExecutionBackend, StepRequest
from repro.exec.shm import ShmTransport, SlabPlan, state_specs_of
from repro.hw.timing import context_switch_time, minibatch_time
from repro.utils.rng import RNGBundle

#: valid ``ProcessPoolBackend(transport=...)`` values
TRANSPORTS = ("shm", "pickle")

# ---------------------------------------------------------------------------
# child-process side
# ---------------------------------------------------------------------------

#: per-child replica cache: (workload name, seed) -> (model, named_params,
#: param-id->name, module-id->name).  Lives for the pool's lifetime.
_REPLICAS: Dict[Tuple[str, int], Tuple[Any, Dict[str, Any], Dict[int, str], Dict[int, str]]] = {}

#: the backend's bucket-publication queue (shm transport only), installed
#: by the pool initializer
_READY_QUEUE = None


def _child_init(variants: Dict[str, Any], ready_queue) -> None:
    """Pool initializer: re-hydrate user-registered D2 kernel variants and
    install the bucket-publication queue.

    Under the ``spawn`` start method the child's kernel registry holds
    only the built-in dialects; a D2 policy with ``custom_kernel`` set
    would fail its registry lookup.  The parent exports the custom
    entries at pool creation and every child re-installs them here.
    (Under ``fork`` the registry is inherited and this is a no-op.)
    """
    from repro.tensor.kernels import rehydrate_matmul_variants

    global _READY_QUEUE
    _READY_QUEUE = ready_queue
    rehydrate_matmul_variants(variants)


def _get_replica(spec, seed: int):
    from repro.utils.rng import derive_seed

    key = (spec.name, seed)
    cached = _REPLICAS.get(key)
    if cached is None:
        model = spec.build_model(RNGBundle(derive_seed(seed, "model")))
        named_params = dict(model.named_parameters())
        names_by_id = {id(p): n for n, p in named_params.items()}
        modules_by_id = {id(m): n for n, m in model.named_modules()}
        cached = (model, named_params, names_by_id, modules_by_id)
        _REPLICAS[key] = cached
    return cached


def _run_worker_task(task: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Execute one physical worker's local steps in a pool child.

    Returns one payload per EST, in local order: the loss, per-bucket
    gradient manifests (flat arrays under the pickle transport, slab
    publications under shm), the advanced RNG state, the BN journal
    keyed by module *name* (layer objects don't cross process
    boundaries), and — for vrank 0 on a reconstruction step — the
    gradient arrival order.

    Observability: the parent ships its :class:`~repro.obs.ObsConfig`
    snapshot with every task; the child bootstraps ``repro.obs`` from it
    (a per-process global the pool would otherwise leave disabled), spans
    its per-EST compute, and flushes per-pid shards the parent later
    merges.  Pure observation — none of it touches the numerics.
    """
    from repro.core.worker import execute_local_step

    obs.configure_from(task.get("obs"))
    flightrec.ensure_child()
    flight_dir = task.get("flight")
    try:
        return _run_worker_task_inner(task, execute_local_step)
    finally:
        # ship this child's flight-ring tail even when the task failed —
        # the parent's postmortem dump merges these shards
        if flight_dir is not None:
            try:
                flightrec.flush_shard(flight_dir)
            except OSError:  # pragma: no cover - scratch dir vanished
                pass


def _run_worker_task_inner(
    task: Dict[str, Any], execute_local_step
) -> List[Dict[str, Any]]:
    spec = task["spec"]
    model, named_params, names_by_id, modules_by_id = _get_replica(spec, task["seed"])
    desc = task.get("shm")
    if desc is not None:
        # zero-copy broadcast: the parent wrote its state into the slab
        # once for the whole step; load_state_dict copies out of the
        # read-only views into this child's replica
        model.load_state_dict(shm_mod.child_read_state(desc))
    else:
        model.load_state_dict(task["state"])
    layout = BucketAssignment.from_state(task["layout"])
    seq = task.get("seq")
    out: List[Dict[str, Any]] = []
    for vrank, rng_state, x, y in task["ests"]:
        rng = RNGBundle(0)
        rng.set_state(rng_state)
        arrival: Optional[List[str]] = (
            [] if (task["need_arrival"] and vrank == 0) else None
        )
        flightrec.record(
            "exec.child_local_step",
            worker=task.get("worker", -1),
            vrank=vrank,
            gpu=task.get("gpu", "?"),
            dialect=task["dialect"],
        )
        with obs.span(
            "exec.child_local_step",
            cat="exec",
            worker=task.get("worker", -1),
            vrank=vrank,
            gpu=task.get("gpu", "?"),
        ):
            loss, grads, journal = execute_local_step(
                model,
                spec,
                rng,
                x,
                y,
                dialect=task["dialect"],
                policy=task["policy"],
                micro_batches=task["micro_batches"],
                named_params=named_params,
                arrival_sink=arrival,
                param_names_by_id=names_by_id,
            )
        if obs.is_enabled():
            obs.metrics().counter(
                "exec_child_local_steps_total", gpu=task.get("gpu", "?")
            ).inc()
        buckets: List[Tuple[Tuple[str, ...], Optional[np.ndarray]]] = []
        for bucket_idx, names in enumerate(layout.buckets):
            present = tuple(n for n in names if n in grads)
            if desc is not None:
                # shm transport: flatten straight into this vrank's slab
                # region, then publish through the queue — the queue send
                # is the cross-process happens-before for the slab bytes
                elems = sum(int(grads[n].size) for n in present)
                if present:
                    sub = BucketAssignment([list(present)])
                    sub.flatten_bucket_into(
                        0, grads, shm_mod.child_grad_view(desc, vrank, bucket_idx, elems)
                    )
                _READY_QUEUE.put((seq, vrank, bucket_idx, present, elems))
                buckets.append((present, None))
            elif present:
                sub = BucketAssignment([list(present)])
                buckets.append((present, sub.flatten_bucket(0, grads)))
            else:
                buckets.append(((), None))
        out.append(
            {
                "vrank": vrank,
                "loss": loss,
                "buckets": buckets,
                "rng": rng.get_state(),
                "journal": [
                    (modules_by_id[id(layer)], mean, var) for layer, mean, var in journal
                ],
                "arrival": arrival,
            }
        )
    obs.flush_shard()
    return out


# ---------------------------------------------------------------------------
# parent-process side
# ---------------------------------------------------------------------------


class ProcessPoolBackend(ExecutionBackend):
    """Run each physical worker's step compute in a persistent process pool.

    ``max_workers`` caps the slot row (default 4).  Slots are placement
    units, not throughput units: one child per *physical worker*, created
    lazily as worker ids appear, even on a single-core machine — the
    children idle between steps, and per-process isolation (replica
    cache, obs shard, trace lane) is the point.  ``start_method``
    defaults to ``fork`` where available — cheapest, and it inherits
    registered kernels — falling back to ``spawn``, where
    :func:`_child_init` re-hydrates them.

    ``transport`` selects how the heavy per-step payloads travel:
    ``"shm"`` (default) broadcasts model state and collects flat gradient
    buckets through :class:`~repro.exec.shm.ShmTransport` slabs —
    zero-copy, with per-bucket collection overlapped against still-running
    child compute; ``"pickle"`` is the original result-queue path, kept
    for benchmarking and as the fallback where shared memory is
    unavailable.  Both are bitwise-identical by construction (the flat
    bytes are the same; only the carrier differs).

    Placement is *sticky*: the pool is a row of single-child slots and
    physical worker ``w`` always dispatches to slot ``w % max_workers``.
    A shared task queue would let one hot child drain every task (tiny
    steps finish before sibling processes wake), which both defeats the
    per-child replica cache — a cold child rebuilds the model — and
    collapses the trace into one process lane.  Sticky slots give each
    child exactly one replica build and a stable pid lane in the merged
    Chrome trace.

    The pool is created lazily on the first step and survives engine
    rebuilds (reconfigure / fault recovery): pass the same backend object
    to every engine and ``close()`` it once at the end of the job.  The
    shm slabs survive rebuilds the same way and are re-keyed
    automatically when the bucket layout (or the model's state plan)
    changes; ``close()`` unlinks them exactly once.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        transport: str = "shm",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; available: {TRANSPORTS}"
            )
        if transport == "shm" and not shm_mod.shm_available():  # pragma: no cover
            flightrec.record("exec.shm_unavailable", fallback="pickle")
            transport = "pickle"
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.max_workers = int(max_workers or 4)
        self.transport = transport
        self._pool = None
        #: shm slab set (lazily built on the first shm-transport step)
        self._shm: Optional[ShmTransport] = None
        #: bucket-publication queue shared by every slot's child
        self._ready_queue = None
        #: per-step sequence number tagged onto every publication, so a
        #: step aborted mid-collection can never leak stale buckets into
        #: the next step's drain loop
        self._seq = 0
        #: deferred commit-cadence state: vrank -> advanced RNG state, and
        #: (module name, mean, var) BN entries in exact serial fold order
        self._pending_rng: Dict[int, Any] = {}
        self._pending_journal: List[Tuple[str, np.ndarray, np.ndarray]] = []
        #: parent-side refs from the most recent step, so commit() can
        #: flush pending state without a request in hand
        self._last_ests: Dict[int, Any] = {}
        self._last_layers: Dict[str, Any] = {}
        #: scratch directory for the children's per-pid obs shards; created
        #: lazily the first time a step runs with observability enabled
        self._shard_dir: Optional[str] = None
        #: scratch directory for the children's flight-recorder shards;
        #: created on the first step regardless of the obs switch (the
        #: flight recorder is always on) and registered with the parent's
        #: recorder so a postmortem dump merges child history
        self._flight_dir: Optional[str] = None

    # -- lifecycle ------------------------------------------------------
    def _ensure_slot(self, index: int):
        """Lazily create slot ``index`` (a one-child pool) and return it.

        The row (``self._pool``) is one list object for the backend's
        lifetime once any slot exists, so callers may hold its identity
        across engine rebuilds.
        """
        if self._pool is None:
            self._pool = []
        if self.transport == "shm" and self._ready_queue is None:
            self._ready_queue = self._ctx.Queue()
        while len(self._pool) <= index:
            from repro.tensor.kernels import export_matmul_variants

            self._pool.append(
                self._ctx.Pool(
                    processes=1,
                    initializer=_child_init,
                    initargs=(export_matmul_variants(), self._ready_queue),
                )
            )
        return self._pool[index]

    def collect_observability(self) -> int:
        """Merge the children's span/metric shards into the parent's obs.

        Child spans arrive stamped with their pid (one Chrome process
        lane per pool worker) and child metrics gain a ``pid`` label.
        Shards are consumed on merge, so calling this after every few
        steps or once at ``close()`` yields the same totals.  Collection
        is keyed on the shard directory existing, NOT on the obs switch:
        shards written while observability was on must survive the parent
        turning it off between the last step and ``close()``.
        """
        if self._shard_dir is None:
            return 0
        return obs.collect_shards(self._shard_dir)

    def close(self) -> None:
        self.commit()
        if self._pool is not None:
            # drain outstanding tasks' shards before tearing the slots down
            for slot in self._pool:
                slot.close()
            for slot in self._pool:
                slot.join()
            self._pool = None
        if self._ready_queue is not None:
            self._ready_queue.close()
            self._ready_queue.join_thread()
            self._ready_queue = None
        if self._shm is not None:
            # children are gone (slots joined above): unlink exactly once
            self._shm.close()
            self._shm = None
        self.collect_observability()
        if self._shard_dir is not None:
            shutil.rmtree(self._shard_dir, ignore_errors=True)
            self._shard_dir = None
        if self._flight_dir is not None:
            # fold the children's remaining flight history into the
            # parent ring before dropping the scratch directory
            try:
                flightrec.collect_shards(self._flight_dir)
            except OSError:  # pragma: no cover - scratch dir vanished
                pass
            flightrec.detach_shard_dir(self._flight_dir)
            shutil.rmtree(self._flight_dir, ignore_errors=True)
            self._flight_dir = None

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            if sys.is_finalizing():
                # interpreter shutdown: module globals (obs, shutil, the
                # mp machinery) may already be torn down — close() would
                # raise through them, and the OS reclaims pools and shm
                # anyway (the parent's resource tracker unlinks slabs)
                return
            self.close()
        except Exception:
            pass

    # -- commit cadence --------------------------------------------------
    def commit(self) -> None:
        """Flush deferred RNG/BN write-back (no-op when nothing pends).

        Applies the banked per-step BN journal entries to the parent's
        layers in the exact order the serial loop would have folded them,
        and restores each EST's latest advanced RNG state — after which
        the parent's state is bitwise what per-step write-back would have
        produced.  Called by the engine at checkpoint/eval boundaries and
        at the end of ``train_steps``/``train_epochs``.
        """
        for name, mean, var in self._pending_journal:
            self._last_layers[name].fold_stats(mean, var)
        self._pending_journal = []
        for vrank, rng_state in self._pending_rng.items():
            self._last_ests[vrank].rng.set_state(rng_state)
        self._pending_rng = {}

    def discard_pending(self) -> None:
        """Drop deferred write-back without applying it (restore path).

        A checkpoint restore rewinds the engine past the steps whose
        write-back is banked here; applying them afterwards would corrupt
        the restored state, so the engine discards on every restore.
        """
        self._pending_journal = []
        self._pending_rng = {}

    # -- validation -----------------------------------------------------
    @staticmethod
    def _check_policy(worker) -> None:
        policy = worker.policy
        if not policy.disable_autotune or not policy.deterministic_algorithms:
            raise ValueError(
                "ProcessPoolBackend requires a kernel policy with "
                "disable_autotune=True and deterministic_algorithms=True: "
                "autotuner warm-up counters and atomic-kernel interleave "
                "counters are process-global and uncheckpointable, so their "
                "serial evolution cannot be replicated across pool children "
                f"(worker {worker.worker_id} has {policy})"
            )

    # -- execution ------------------------------------------------------
    def run_step(self, request: StepRequest) -> List["LocalStepResult"]:  # noqa: F821
        for worker in request.workers:
            self._check_policy(worker)

        # Phase 1 (parent, serial order): fault hooks + batch loads.
        # These mutate injector/loader state and may raise a FaultSignal;
        # nothing has been dispatched yet when they do.
        need_arrival = request.arrival_sink is not None
        obs_snapshot = None
        if obs.is_enabled():
            if self._shard_dir is None:
                self._shard_dir = tempfile.mkdtemp(prefix="repro-obs-shards-")
            obs_snapshot = obs.config_snapshot(shard_dir=self._shard_dir)
        if self._flight_dir is None:
            self._flight_dir = tempfile.mkdtemp(prefix="repro-flight-shards-")
            flightrec.attach_shard_dir(self._flight_dir)
        layout_state = request.layout.to_state()
        est_by_vrank = {
            est.vrank: est for worker in request.workers for est in worker.ests
        }
        tasks = []
        for worker in request.workers:
            ests = []
            for est in worker.ests:
                if worker.fault_hook is not None:
                    worker.fault_hook(worker.worker_id, est.vrank)
                x, y = request.load_batch(est.vrank)
                # mid-cadence, the authoritative RNG stream is the banked
                # one, not the (stale) parent EST object's
                rng_state = self._pending_rng.get(est.vrank, None)
                if rng_state is None:
                    rng_state = est.rng.get_state()
                ests.append((est.vrank, rng_state, x, y))
            tasks.append(
                {
                    "spec": request.spec,
                    "seed": request.seed,
                    "dialect": worker.gpu.dialect,
                    "policy": worker.policy,
                    "micro_batches": worker.micro_batches,
                    "ests": ests,
                    "layout": layout_state,
                    "need_arrival": need_arrival,
                    "worker": worker.worker_id,
                    "gpu": worker.gpu.name,
                    "obs": obs_snapshot,
                    "flight": self._flight_dir,
                }
            )

        # Phase 2: broadcast state (slab write or per-task pickle), then
        # dispatch everything (worker w -> slot w % max_workers)
        self._seq += 1
        if self.transport == "shm":
            grads_by_vrank = self._dispatch_shm(request, tasks, est_by_vrank)
        else:
            grads_by_vrank = self._dispatch_pickle(request, tasks)
        handles = [
            self._ensure_slot(task["worker"] % self.max_workers).apply_async(
                _run_worker_task, (task,)
            )
            for task in tasks
        ]

        if self.transport == "shm":
            self._collect_buckets(request, handles, est_by_vrank, grads_by_vrank)

        results = self._assemble(request, handles, est_by_vrank, grads_by_vrank)
        if obs.is_enabled():
            registry = obs.metrics()
            registry.counter("exec_steps_total", backend=self.name).inc()
            registry.counter("exec_pool_tasks_total", backend=self.name).inc(len(tasks))
        return results

    # -- phase 2 helpers: broadcast -------------------------------------
    def _dispatch_shm(self, request, tasks, est_by_vrank) -> Dict[int, Dict[str, np.ndarray]]:
        """Write state into the slab once and attach descriptors to tasks."""
        if self._shm is None:
            self._shm = ShmTransport()
        live_state = {n: p.data for n, p in request.named_params.items()}
        for name, buf in request.model.named_buffers():
            live_state[name] = np.asarray(buf)
        plan = SlabPlan(
            request.layout.layout_key(),
            {n: p.data.size for n, p in request.named_params.items()},
            state_specs_of(live_state),
            list(est_by_vrank),
        )
        if self._shm.ensure(plan):
            flightrec.record(
                "exec.shm_rebuild",
                buckets=plan.num_buckets,
                state_bytes=plan.state_nbytes,
                grad_bytes=plan.grad_nbytes,
                slots=len(plan.vranks),
            )
            if obs.is_enabled():
                obs.metrics().counter(
                    "exec_shm_slab_rebuilds_total", backend=self.name
                ).inc()
        with obs.span(
            "exec.state_broadcast", cat="exec", backend=self.name,
            transport=self.transport,
        ):
            nbytes = self._shm.write_state(live_state)
        if obs.is_enabled():
            obs.metrics().counter(
                "exec_shm_bytes_total", direction="broadcast"
            ).inc(nbytes)
        desc = self._shm.descriptor()
        for task in tasks:
            task["shm"] = desc
            task["seq"] = self._seq
        return {}

    def _dispatch_pickle(self, request, tasks) -> Dict[int, Dict[str, np.ndarray]]:
        """Attach a pickled state copy to every task (original transport)."""
        state = request.model.state_dict()
        state_nbytes = sum(np.asarray(v).nbytes for v in state.values())
        for task in tasks:
            task["state"] = state
        if obs.is_enabled():
            obs.metrics().counter(
                "exec_pickle_bytes_total", payload="state"
            ).inc(state_nbytes * len(tasks))
        return {}

    # -- phase 3: overlapped shm collection ------------------------------
    def _collect_buckets(self, request, handles, est_by_vrank, grads_by_vrank) -> None:
        """Drain bucket publications as children produce them.

        Children publish each finished (vrank, bucket) through the ready
        queue the moment its slab region is written; the parent unflattens
        it immediately — overlapping its own copy-out with the remaining
        child compute instead of blocking on whole-worker ``handle.get()``.
        Publications land in a keyed map, so arrival order never reaches
        the caller: :meth:`_assemble` walks submission order regardless.
        """
        param_shapes = {n: p.data.shape for n, p in request.named_params.items()}
        expected = len(est_by_vrank) * self._shm.plan.num_buckets
        got = 0
        shm_bytes = 0
        with obs.span(
            "exec.overlap_collect", cat="exec", backend=self.name,
            buckets=expected,
        ):
            while got < expected:
                try:
                    seq, vrank, bucket_idx, names, elems = self._ready_queue.get(
                        timeout=0.05
                    )
                except queue_mod.Empty:
                    # surface a failed child task instead of spinning; a
                    # successful-but-early handle is a cached no-op get()
                    for handle in handles:
                        if handle.ready():
                            handle.get()
                    continue
                if seq != self._seq:
                    continue  # stale publication from an aborted step
                got += 1
                if not names:
                    continue
                with obs.span(
                    "exec.collect_bucket", cat="exec", vrank=vrank,
                    bucket=bucket_idx, elems=elems,
                ):
                    flat = self._shm.read_bucket(vrank, bucket_idx, elems)
                    sub = BucketAssignment([list(names)])
                    grads_by_vrank.setdefault(vrank, {}).update(
                        sub.unflatten_bucket(0, flat, param_shapes)
                    )
                shm_bytes += elems * 4
        if obs.is_enabled() and shm_bytes:
            obs.metrics().counter(
                "exec_shm_bytes_total", direction="gradients"
            ).inc(shm_bytes)

    # -- phase 4: fixed-order assembly + write-back ----------------------
    def _assemble(self, request, handles, est_by_vrank, grads_by_vrank):
        from repro.core.worker import LocalStepResult

        param_shapes = {n: p.data.shape for n, p in request.named_params.items()}
        parent_layers = dict(request.model.named_modules())
        self._last_ests = dict(est_by_vrank)
        self._last_layers = parent_layers
        if request.commit:
            # fold the banked (earlier-step) journal entries and RNG
            # states BEFORE this step's own write-back, preserving the
            # serial per-step order end to end
            self.commit()
        arrival_seen = (
            set(request.arrival_sink) if request.arrival_sink is not None else None
        )
        pickle_bytes = 0
        step_journal: Dict[int, list] = {}
        results: List[LocalStepResult] = []
        for worker, handle in zip(request.workers, handles):
            with obs.span(
                "exec.worker_task",
                cat="exec",
                backend=self.name,
                worker=worker.worker_id,
                gpu=worker.gpu.name,
            ):
                payloads = handle.get()
            per_batch = minibatch_time(worker.spec, worker.gpu, worker.policy) * worker.slowdown
            switch = context_switch_time(worker.spec, worker.gpu) * worker.slowdown
            for position, payload in enumerate(payloads):
                vrank = payload["vrank"]
                grads = grads_by_vrank.get(vrank, {})
                for names, flat in payload["buckets"]:
                    if flat is None:
                        continue  # shm transport: already collected
                    sub = BucketAssignment([list(names)])
                    grads.update(sub.unflatten_bucket(0, flat, param_shapes))
                    pickle_bytes += flat.nbytes
                est = est_by_vrank[vrank]
                if request.commit:
                    est.rng.set_state(payload["rng"])
                else:
                    self._pending_rng[vrank] = payload["rng"]
                est.staged_grads = grads
                if payload["arrival"] is not None and request.arrival_sink is not None:
                    # seen-set merge: the sink stays an ordered list, but
                    # membership checks no longer rescan it per parameter
                    for name in payload["arrival"]:
                        if name not in arrival_seen:
                            arrival_seen.add(name)
                            request.arrival_sink.append(name)
                journal = [
                    (name, mean, var) for name, mean, var in payload["journal"]
                ]
                if not request.commit:
                    step_journal[vrank] = journal
                results.append(
                    LocalStepResult(
                        vrank=vrank,
                        loss=payload["loss"],
                        grads=grads,
                        bn_journal=(
                            [
                                (parent_layers[name], mean, var)
                                for name, mean, var in journal
                            ]
                            if request.commit
                            else []
                        ),
                        compute_time=per_batch,
                        exposed_copy_time=(
                            switch if position < len(payloads) - 1 else 0.0
                        ),
                    )
                )
        if not request.commit:
            # bank this step's journal in the order the engine would have
            # folded it: ascending virtual rank within the step
            for vrank in sorted(step_journal):
                self._pending_journal.extend(step_journal[vrank])
        if obs.is_enabled() and pickle_bytes:
            obs.metrics().counter(
                "exec_pickle_bytes_total", payload="gradients"
            ).inc(pickle_bytes)
        return results
