"""ProcessPoolBackend: real parallel worker execution, bitwise-equal to serial.

Each physical worker's per-step compute (one local step per hosted EST)
runs as one task in a persistent :mod:`multiprocessing` pool.  The
determinism argument, in the order things happen:

1. **Parent-side sequencing.**  Fault hooks and ``load_batch`` calls
   mutate parent state (injector exactly-once bookkeeping, loader
   round-robin cursors, queue consumption).  The backend runs them in
   the exact serial order — worker 0's ESTs, then worker 1's — *before*
   dispatching any compute, so that state evolves identically to the
   serial loop.
2. **Identical numerics in children.**  A child keeps a cached model
   replica (rebuilt deterministically from the workload spec + job seed,
   so its construction cost is paid once per process), loads the
   parent's ``state_dict`` for the step, and runs
   :func:`repro.core.worker.execute_local_step` — the same function the
   serial path calls — under the worker's dialect/policy and the EST's
   shipped RNG state.
3. **Per-bucket flat shipping.**  Children flatten gradients into the
   engine's current bucket layout and ship flat float32 buffers; the
   parent unflattens them.  Flatten/unflatten are pure byte moves
   (no arithmetic), so the reconstructed per-parameter gradients are
   bitwise what the serial path produced.
4. **Fixed merge order.**  Results are collected in *submission* order
   (worker 0 first), never completion order, and each worker's ESTs stay
   in local order — the engine's virtual-rank sort then sees exactly the
   serial sequence, so the reduction association cannot depend on which
   child finished first.
5. **State write-back.**  Advanced RNG states are restored into the
   parent's EST objects, gradients are staged, and BN journal entries
   are re-bound (by module name) to the parent's layers so folding
   happens on the authoritative replica in virtual-rank order.

What cannot be parallelized: policies that keep *process-global* mutable
kernel state — the autotuner's profiling counters and the "atomic"
scatter/reduce interleave counter.  Those counters live per process and
are deliberately not checkpointable (that is the non-determinism they
model), so a pool run could never replicate their serial evolution.  The
backend rejects such policies up front with a clear error.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs import flightrec
from repro.comm.bucketing import BucketAssignment
from repro.exec.base import ExecutionBackend, StepRequest
from repro.hw.timing import context_switch_time, minibatch_time
from repro.utils.rng import RNGBundle

# ---------------------------------------------------------------------------
# child-process side
# ---------------------------------------------------------------------------

#: per-child replica cache: (workload name, seed) -> (model, named_params,
#: param-id->name, module-id->name).  Lives for the pool's lifetime.
_REPLICAS: Dict[Tuple[str, int], Tuple[Any, Dict[str, Any], Dict[int, str], Dict[int, str]]] = {}


def _child_init(variants: Dict[str, Any]) -> None:
    """Pool initializer: re-hydrate user-registered D2 kernel variants.

    Under the ``spawn`` start method the child's kernel registry holds
    only the built-in dialects; a D2 policy with ``custom_kernel`` set
    would fail its registry lookup.  The parent exports the custom
    entries at pool creation and every child re-installs them here.
    (Under ``fork`` the registry is inherited and this is a no-op.)
    """
    from repro.tensor.kernels import rehydrate_matmul_variants

    rehydrate_matmul_variants(variants)


def _get_replica(spec, seed: int):
    from repro.utils.rng import derive_seed

    key = (spec.name, seed)
    cached = _REPLICAS.get(key)
    if cached is None:
        model = spec.build_model(RNGBundle(derive_seed(seed, "model")))
        named_params = dict(model.named_parameters())
        names_by_id = {id(p): n for n, p in named_params.items()}
        modules_by_id = {id(m): n for n, m in model.named_modules()}
        cached = (model, named_params, names_by_id, modules_by_id)
        _REPLICAS[key] = cached
    return cached


def _run_worker_task(task: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Execute one physical worker's local steps in a pool child.

    Returns one payload per EST, in local order: the loss, per-bucket
    flat gradients (layout-ordered), the advanced RNG state, the BN
    journal keyed by module *name* (layer objects don't cross process
    boundaries), and — for vrank 0 on a reconstruction step — the
    gradient arrival order.

    Observability: the parent ships its :class:`~repro.obs.ObsConfig`
    snapshot with every task; the child bootstraps ``repro.obs`` from it
    (a per-process global the pool would otherwise leave disabled), spans
    its per-EST compute, and flushes per-pid shards the parent later
    merges.  Pure observation — none of it touches the numerics.
    """
    from repro.core.worker import execute_local_step

    obs.configure_from(task.get("obs"))
    flightrec.ensure_child()
    flight_dir = task.get("flight")
    try:
        return _run_worker_task_inner(task, execute_local_step)
    finally:
        # ship this child's flight-ring tail even when the task failed —
        # the parent's postmortem dump merges these shards
        if flight_dir is not None:
            try:
                flightrec.flush_shard(flight_dir)
            except OSError:  # pragma: no cover - scratch dir vanished
                pass


def _run_worker_task_inner(
    task: Dict[str, Any], execute_local_step
) -> List[Dict[str, Any]]:
    spec = task["spec"]
    model, named_params, names_by_id, modules_by_id = _get_replica(spec, task["seed"])
    model.load_state_dict(task["state"])
    layout = BucketAssignment.from_state(task["layout"])
    out: List[Dict[str, Any]] = []
    for vrank, rng_state, x, y in task["ests"]:
        rng = RNGBundle(0)
        rng.set_state(rng_state)
        arrival: Optional[List[str]] = (
            [] if (task["need_arrival"] and vrank == 0) else None
        )
        flightrec.record(
            "exec.child_local_step",
            worker=task.get("worker", -1),
            vrank=vrank,
            gpu=task.get("gpu", "?"),
            dialect=task["dialect"],
        )
        with obs.span(
            "exec.child_local_step",
            cat="exec",
            worker=task.get("worker", -1),
            vrank=vrank,
            gpu=task.get("gpu", "?"),
        ):
            loss, grads, journal = execute_local_step(
                model,
                spec,
                rng,
                x,
                y,
                dialect=task["dialect"],
                policy=task["policy"],
                micro_batches=task["micro_batches"],
                named_params=named_params,
                arrival_sink=arrival,
                param_names_by_id=names_by_id,
            )
        if obs.is_enabled():
            obs.metrics().counter(
                "exec_child_local_steps_total", gpu=task.get("gpu", "?")
            ).inc()
        buckets: List[Tuple[Tuple[str, ...], Optional[np.ndarray]]] = []
        for bucket_idx, names in enumerate(layout.buckets):
            present = [n for n in names if n in grads]
            if not present:
                buckets.append(((), None))
                continue
            sub = BucketAssignment([present])
            buckets.append((tuple(present), sub.flatten_bucket(0, grads)))
        out.append(
            {
                "vrank": vrank,
                "loss": loss,
                "buckets": buckets,
                "rng": rng.get_state(),
                "journal": [
                    (modules_by_id[id(layer)], mean, var) for layer, mean, var in journal
                ],
                "arrival": arrival,
            }
        )
    obs.flush_shard()
    return out


# ---------------------------------------------------------------------------
# parent-process side
# ---------------------------------------------------------------------------


class ProcessPoolBackend(ExecutionBackend):
    """Run each physical worker's step compute in a persistent process pool.

    ``max_workers`` caps the slot row (default 4).  Slots are placement
    units, not throughput units: one child per *physical worker*, created
    lazily as worker ids appear, even on a single-core machine — the
    children idle between steps, and per-process isolation (replica
    cache, obs shard, trace lane) is the point.  ``start_method``
    defaults to ``fork`` where available — cheapest, and it inherits
    registered kernels — falling back to ``spawn``, where
    :func:`_child_init` re-hydrates them.

    Placement is *sticky*: the pool is a row of single-child slots and
    physical worker ``w`` always dispatches to slot ``w % max_workers``.
    A shared task queue would let one hot child drain every task (tiny
    steps finish before sibling processes wake), which both defeats the
    per-child replica cache — a cold child rebuilds the model — and
    collapses the trace into one process lane.  Sticky slots give each
    child exactly one replica build and a stable pid lane in the merged
    Chrome trace.

    The pool is created lazily on the first step and survives engine
    rebuilds (reconfigure / fault recovery): pass the same backend object
    to every engine and ``close()`` it once at the end of the job.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.max_workers = int(max_workers or 4)
        self._pool = None
        #: scratch directory for the children's per-pid obs shards; created
        #: lazily the first time a step runs with observability enabled
        self._shard_dir: Optional[str] = None
        #: scratch directory for the children's flight-recorder shards;
        #: created on the first step regardless of the obs switch (the
        #: flight recorder is always on) and registered with the parent's
        #: recorder so a postmortem dump merges child history
        self._flight_dir: Optional[str] = None

    # -- lifecycle ------------------------------------------------------
    def _ensure_slot(self, index: int):
        """Lazily create slot ``index`` (a one-child pool) and return it.

        The row (``self._pool``) is one list object for the backend's
        lifetime once any slot exists, so callers may hold its identity
        across engine rebuilds.
        """
        if self._pool is None:
            self._pool = []
        while len(self._pool) <= index:
            from repro.tensor.kernels import export_matmul_variants

            self._pool.append(
                self._ctx.Pool(
                    processes=1,
                    initializer=_child_init,
                    initargs=(export_matmul_variants(),),
                )
            )
        return self._pool[index]

    def collect_observability(self) -> int:
        """Merge the children's span/metric shards into the parent's obs.

        Child spans arrive stamped with their pid (one Chrome process
        lane per pool worker) and child metrics gain a ``pid`` label.
        Shards are consumed on merge, so calling this after every few
        steps or once at ``close()`` yields the same totals.
        """
        if self._shard_dir is None or not obs.is_enabled():
            return 0
        return obs.collect_shards(self._shard_dir)

    def close(self) -> None:
        if self._pool is not None:
            # drain outstanding tasks' shards before tearing the slots down
            for slot in self._pool:
                slot.close()
            for slot in self._pool:
                slot.join()
            self._pool = None
        self.collect_observability()
        if self._shard_dir is not None:
            shutil.rmtree(self._shard_dir, ignore_errors=True)
            self._shard_dir = None
        if self._flight_dir is not None:
            # fold the children's remaining flight history into the
            # parent ring before dropping the scratch directory
            try:
                flightrec.collect_shards(self._flight_dir)
            except OSError:  # pragma: no cover - scratch dir vanished
                pass
            flightrec.detach_shard_dir(self._flight_dir)
            shutil.rmtree(self._flight_dir, ignore_errors=True)
            self._flight_dir = None

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- validation -----------------------------------------------------
    @staticmethod
    def _check_policy(worker) -> None:
        policy = worker.policy
        if not policy.disable_autotune or not policy.deterministic_algorithms:
            raise ValueError(
                "ProcessPoolBackend requires a kernel policy with "
                "disable_autotune=True and deterministic_algorithms=True: "
                "autotuner warm-up counters and atomic-kernel interleave "
                "counters are process-global and uncheckpointable, so their "
                "serial evolution cannot be replicated across pool children "
                f"(worker {worker.worker_id} has {policy})"
            )

    # -- execution ------------------------------------------------------
    def run_step(self, request: StepRequest) -> List["LocalStepResult"]:  # noqa: F821
        from repro.core.worker import LocalStepResult

        for worker in request.workers:
            self._check_policy(worker)

        # Phase 1 (parent, serial order): fault hooks + batch loads.
        # These mutate injector/loader state and may raise a FaultSignal;
        # nothing has been dispatched yet when they do.
        state = request.model.state_dict()
        layout_state = request.layout.to_state()
        need_arrival = request.arrival_sink is not None
        obs_snapshot = None
        if obs.is_enabled():
            if self._shard_dir is None:
                self._shard_dir = tempfile.mkdtemp(prefix="repro-obs-shards-")
            obs_snapshot = obs.config_snapshot(shard_dir=self._shard_dir)
        if self._flight_dir is None:
            self._flight_dir = tempfile.mkdtemp(prefix="repro-flight-shards-")
            flightrec.attach_shard_dir(self._flight_dir)
        tasks = []
        for worker in request.workers:
            ests = []
            for est in worker.ests:
                if worker.fault_hook is not None:
                    worker.fault_hook(worker.worker_id, est.vrank)
                x, y = request.load_batch(est.vrank)
                ests.append((est.vrank, est.rng.get_state(), x, y))
            tasks.append(
                {
                    "spec": request.spec,
                    "seed": request.seed,
                    "state": state,
                    "dialect": worker.gpu.dialect,
                    "policy": worker.policy,
                    "micro_batches": worker.micro_batches,
                    "ests": ests,
                    "layout": layout_state,
                    "need_arrival": need_arrival,
                    "worker": worker.worker_id,
                    "gpu": worker.gpu.name,
                    "obs": obs_snapshot,
                    "flight": self._flight_dir,
                }
            )

        # Phase 2: dispatch everything (worker w -> slot w % max_workers),
        # then collect in SUBMISSION order — completion order never
        # reaches the caller.
        handles = [
            self._ensure_slot(task["worker"] % self.max_workers).apply_async(
                _run_worker_task, (task,)
            )
            for task in tasks
        ]

        param_shapes = {n: p.data.shape for n, p in request.named_params.items()}
        parent_layers = dict(request.model.named_modules())
        est_by_vrank = {
            est.vrank: est for worker in request.workers for est in worker.ests
        }
        results: List[LocalStepResult] = []
        for worker, handle in zip(request.workers, handles):
            with obs.span(
                "exec.worker_task",
                cat="exec",
                backend=self.name,
                worker=worker.worker_id,
                gpu=worker.gpu.name,
            ):
                payloads = handle.get()
            per_batch = minibatch_time(worker.spec, worker.gpu, worker.policy) * worker.slowdown
            switch = context_switch_time(worker.spec, worker.gpu) * worker.slowdown
            for position, payload in enumerate(payloads):
                grads: Dict[str, np.ndarray] = {}
                for names, flat in payload["buckets"]:
                    if flat is None:
                        continue
                    sub = BucketAssignment([list(names)])
                    grads.update(sub.unflatten_bucket(0, flat, param_shapes))
                est = est_by_vrank[payload["vrank"]]
                est.rng.set_state(payload["rng"])
                est.staged_grads = grads
                if payload["arrival"] is not None and request.arrival_sink is not None:
                    for name in payload["arrival"]:
                        if name not in request.arrival_sink:
                            request.arrival_sink.append(name)
                results.append(
                    LocalStepResult(
                        vrank=payload["vrank"],
                        loss=payload["loss"],
                        grads=grads,
                        bn_journal=[
                            (parent_layers[name], mean, var)
                            for name, mean, var in payload["journal"]
                        ],
                        compute_time=per_batch,
                        exposed_copy_time=(
                            switch if position < len(payloads) - 1 else 0.0
                        ),
                    )
                )
        if obs.is_enabled():
            registry = obs.metrics()
            registry.counter("exec_steps_total", backend=self.name).inc()
            registry.counter("exec_pool_tasks_total", backend=self.name).inc(len(tasks))
        return results
