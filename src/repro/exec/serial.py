"""SerialBackend: the engine's historical in-process worker loop, extracted."""

from __future__ import annotations

from typing import List

from repro import obs
from repro.exec.base import ExecutionBackend, StepRequest


class SerialBackend(ExecutionBackend):
    """Step every physical worker sequentially in the calling process.

    This is byte-for-byte the loop the engine ran before backends
    existed — it delegates to ``EasyScaleWorker.run_global_step``, which
    interleaves fault hooks, batch loading, and compute per EST.  It is
    the default backend and the reference the process pool is tested
    against.
    """

    name = "serial"

    def run_step(self, request: StepRequest) -> List["LocalStepResult"]:  # noqa: F821
        results = []
        for worker in request.workers:
            results.extend(
                worker.run_global_step(
                    request.model,
                    load_batch=request.load_batch,
                    named_params=request.named_params,
                    arrival_sink=request.arrival_sink,
                    param_names_by_id=request.param_names_by_id,
                )
            )
        if obs.is_enabled():
            obs.metrics().counter("exec_steps_total", backend=self.name).inc()
        return results
