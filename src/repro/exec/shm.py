"""Zero-copy shared-memory transport for the process-pool backend.

The pickle transport ships the full model ``state_dict`` *to* every pool
child and every flat gradient bucket *back* through the pool's result
queue — two serialization passes whose cost grows linearly with model
size and worker count.  This module replaces both directions with
``multiprocessing.shared_memory`` slabs:

- one **state slab**, written once per step by the parent and read by
  every child (the broadcast direction collapses from one pickled copy
  per task to a single memcpy into the slab);
- one **gradient slab per virtual-rank slot**, sized from the bucket
  layout exactly like a :class:`~repro.comm.bucketing.FlatBufferCache`
  buffer row, written by the child that hosts the vrank this step and
  read by the parent.

Ownership is one-writer-per-region and phase-alternating
(:meth:`SlabPlan.ownership`): the parent writes the state slab only
between dispatches, children write their gradient regions only while
their task runs, and a reader never touches a region until the writer
has published it — the parent publishes by dispatching the task, a child
publishes each bucket through the backend's ready-queue (an OS pipe,
which gives the cross-process happens-before that a bare flag in shared
memory would not).  Both sides hand out **read-only** views to the
non-owner, so an ownership violation fails loudly instead of corrupting
gradients.

Lifecycle: slabs are keyed by :meth:`SlabPlan.key` — bucket layout,
state-array specs, and vrank set — and rebuilt wholesale when the key
changes (the one-time DDP arrival-order rebuild, a D0 restore, an engine
rebuild with a different model).  The parent unlinks every slab exactly
once in :meth:`ShmTransport.close`; children attach by name and
explicitly *untrack* their attachments so the ``resource_tracker`` never
double-unlinks (or warns about) a segment the parent owns — required
under both ``fork`` and ``spawn`` start methods on Python < 3.13, where
``SharedMemory`` has no ``track=False``.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - present on every supported platform since 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    _shared_memory = None


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this build."""
    return _shared_memory is not None


#: (name, dtype string, shape) — the identity of one state-dict array
ArraySpec = Tuple[str, str, Tuple[int, ...]]

#: process-wide counter so two transports in one process never collide
_SLAB_SERIAL = 0

#: float32 gradient element size in bytes
_F32 = 4

#: region offsets are aligned so every view is at least 8-byte aligned
_ALIGN = 8


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def state_specs_of(state: Mapping[str, np.ndarray]) -> List[ArraySpec]:
    """The :data:`ArraySpec` list of a model ``state_dict`` (plan input)."""
    return [
        (name, np.asarray(value).dtype.str, tuple(np.asarray(value).shape))
        for name, value in state.items()
    ]


class SlabPlan:
    """Byte layout of the state slab and per-slot gradient slabs.

    Pure arithmetic over the bucket layout and the state-dict specs — no
    shared memory is touched.  A plan is shipped to children inside the
    task dict (it is small: names, offsets, shapes), so both sides agree
    on every region's position without re-deriving it.
    """

    def __init__(
        self,
        layout_key: Tuple[Tuple[str, ...], ...],
        param_sizes: Mapping[str, int],
        state_specs: Sequence[ArraySpec],
        vranks: Sequence[int],
    ) -> None:
        self.layout_key = tuple(tuple(bucket) for bucket in layout_key)
        self.state_specs = [
            (name, dtype, tuple(shape)) for name, dtype, shape in state_specs
        ]
        self.vranks = tuple(sorted(vranks))
        if not self.vranks:
            raise ValueError("slab plan needs at least one virtual rank")

        # state slab: one aligned region per state array, in spec order
        self.state_offsets: Dict[str, int] = {}
        cursor = 0
        for name, dtype, shape in self.state_specs:
            self.state_offsets[name] = cursor
            cursor += _aligned(int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize)
        self.state_nbytes = max(cursor, _ALIGN)

        # per-vrank gradient slab: one aligned float32 region per bucket,
        # sized for the full bucket (a step may publish a subset)
        self.bucket_elems: List[int] = [
            sum(int(param_sizes[name]) for name in bucket)
            for bucket in self.layout_key
        ]
        self.grad_offsets: List[int] = []
        cursor = 0
        for elems in self.bucket_elems:
            self.grad_offsets.append(cursor)
            cursor += _aligned(max(elems, 1) * _F32)
        self.grad_nbytes = max(cursor, _ALIGN)
        self.num_buckets = len(self.bucket_elems)

    def key(self) -> Tuple:
        """Hashable identity: layout + state specs + vrank set.  Any
        change invalidates every offset, so the transport rebuilds."""
        return (self.layout_key, tuple(self.state_specs), self.vranks)

    def ownership(self) -> Dict[str, str]:
        """The one-writer-per-region map the transport enforces."""
        owners = {"state": "parent"}
        for vrank in self.vranks:
            owners[f"grad[{vrank}]"] = f"child(vrank={vrank})"
        return owners

    # -- views ----------------------------------------------------------
    def state_views(
        self, buf: memoryview, writable: bool
    ) -> Dict[str, np.ndarray]:
        """Per-array views into a state slab buffer."""
        views: Dict[str, np.ndarray] = {}
        for name, dtype, shape in self.state_specs:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf,
                offset=self.state_offsets[name],
            )
            view.flags.writeable = writable
            views[name] = view
        return views

    def grad_view(
        self, buf: memoryview, bucket_idx: int, elems: int, writable: bool
    ) -> np.ndarray:
        """A float32 view over the first ``elems`` of one bucket region."""
        if not 0 <= bucket_idx < self.num_buckets:
            raise IndexError(f"bucket {bucket_idx} outside plan")
        if elems > self.bucket_elems[bucket_idx]:
            raise ValueError(
                f"bucket {bucket_idx} holds {self.bucket_elems[bucket_idx]} "
                f"elems, {elems} requested"
            )
        view = np.ndarray(
            (elems,), dtype=np.float32, buffer=buf,
            offset=self.grad_offsets[bucket_idx],
        )
        view.flags.writeable = writable
        return view


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ShmTransport:
    """Parent-owned slab set: create, broadcast, read back, unlink once."""

    def __init__(self) -> None:
        if not shm_available():  # pragma: no cover - exotic builds only
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this build; "
                "use ProcessPoolBackend(transport='pickle')"
            )
        self.plan: Optional[SlabPlan] = None
        self._state_shm = None
        self._grad_shm: Dict[int, Any] = {}
        self._state_views: Dict[str, np.ndarray] = {}
        self._closed = False
        #: lifetime counter (observability / tests)
        self.rebuilds = 0

    # -- lifecycle ------------------------------------------------------
    def ensure(self, plan: SlabPlan) -> bool:
        """(Re)build the slabs for ``plan``; True when a rebuild happened.

        Reuses the live slabs when the plan key is unchanged; otherwise
        the old slabs are closed and unlinked *before* the new ones are
        created, so a layout change never doubles the job's shm
        footprint.
        """
        if self._closed:
            raise RuntimeError("transport is closed")
        if self.plan is not None and self.plan.key() == plan.key():
            return False
        self._teardown_slabs()
        global _SLAB_SERIAL
        _SLAB_SERIAL += 1
        prefix = f"repro-{os.getpid()}-{_SLAB_SERIAL}"
        self._state_shm = _shared_memory.SharedMemory(
            create=True, size=plan.state_nbytes, name=f"{prefix}-s"
        )
        for vrank in plan.vranks:
            self._grad_shm[vrank] = _shared_memory.SharedMemory(
                create=True, size=plan.grad_nbytes, name=f"{prefix}-g{vrank}"
            )
        self.plan = plan
        self._state_views = plan.state_views(self._state_shm.buf, writable=True)
        self.rebuilds += 1
        return True

    def close(self) -> None:
        """Close and unlink every slab, exactly once.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._teardown_slabs()

    def _teardown_slabs(self) -> None:
        self._state_views = {}
        self.plan = None
        slabs = list(self._grad_shm.values())
        if self._state_shm is not None:
            slabs.append(self._state_shm)
        self._state_shm = None
        self._grad_shm = {}
        for shm in slabs:
            # the parent created these, so it closes AND unlinks; a slab
            # torn down here is gone and can never be unlinked twice
            try:
                shm.close()
            except OSError:  # pragma: no cover - already-closed mapping
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            if sys.is_finalizing():
                return
            self.close()
        except Exception:
            pass

    # -- broadcast direction (parent writes) ----------------------------
    def write_state(self, state: Mapping[str, np.ndarray]) -> int:
        """Copy ``state`` into the state slab; returns bytes written.

        The single per-step serialization cost of the broadcast: one
        typed memcpy per array, no pickling, no per-task copies.
        """
        if self.plan is None:
            raise RuntimeError("ensure() a plan before writing state")
        nbytes = 0
        for name, view in self._state_views.items():
            value = np.asarray(state[name])
            if value.shape != view.shape or value.dtype != view.dtype:
                raise ValueError(
                    f"state array {name!r} changed identity "
                    f"({value.dtype}{value.shape} vs {view.dtype}{view.shape}); "
                    "the slab plan is stale"
                )
            np.copyto(view, value)
            nbytes += value.nbytes
        return nbytes

    # -- gradient direction (parent reads) ------------------------------
    def read_bucket(self, vrank: int, bucket_idx: int, elems: int) -> np.ndarray:
        """Read-only view of a published bucket region.

        Only call after the owning child published (vrank, bucket) for
        the current step through the ready-queue; the view aliases the
        slab, so consumers that outlive the step must copy
        (:meth:`BucketAssignment.unflatten_bucket` already does).
        """
        if self.plan is None:
            raise RuntimeError("transport has no live plan")
        return self.plan.grad_view(
            self._grad_shm[vrank].buf, bucket_idx, elems, writable=False
        )

    # -- descriptor shipped to children ---------------------------------
    def descriptor(self) -> Dict[str, Any]:
        """Everything a child needs to attach: slab names + the plan."""
        if self.plan is None:
            raise RuntimeError("transport has no live plan")
        return {
            "state_name": self._state_shm.name,
            "grad_names": {v: shm.name for v, shm in self._grad_shm.items()},
            "plan": self.plan,
        }


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------

#: per-child attachment cache: slab name -> SharedMemory.  Slabs persist
#: for the pool's lifetime; stale names (a parent-side rebuild) are
#: evicted lazily when a task arrives naming slabs the cache doesn't hold.
_ATTACHED: Dict[str, Any] = {}


def _attach(name: str):
    """Attach to a parent-owned slab without resource-tracker ownership.

    Attaching registers the segment with the resource tracker on
    Python < 3.13 — and pool children *share* the parent's tracker
    process (the fd is inherited under fork and shipped in the spawn
    preparation data), so a child must neither add nor remove tracker
    entries for a segment the parent owns: ``unregister`` after
    attaching would strip the parent's own registration and make the
    parent's later ``unlink`` a tracker error.  The child is a guest —
    suppress the registration at attach time instead.
    """
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    try:
        shm = _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag — mute register()
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    _ATTACHED[name] = shm
    return shm


def _evict_stale(live_names: Sequence[str]) -> None:
    """Close cached attachments whose slabs were rebuilt away."""
    for name in [n for n in _ATTACHED if n not in live_names]:
        try:
            _ATTACHED.pop(name).close()
        except OSError:  # pragma: no cover - parent already unlinked it
            pass


def child_read_state(desc: Mapping[str, Any]) -> Dict[str, np.ndarray]:
    """Read-only per-array views of the parent's state slab.

    Callers must copy before the next step (``load_state_dict`` does) —
    the parent rewrites the slab for the next broadcast.
    """
    plan: SlabPlan = desc["plan"]
    _evict_stale(
        [desc["state_name"], *desc["grad_names"].values()]
    )
    shm = _attach(desc["state_name"])
    return plan.state_views(shm.buf, writable=False)


def child_grad_view(
    desc: Mapping[str, Any], vrank: int, bucket_idx: int, elems: int
) -> np.ndarray:
    """Writable float32 view over the child's own bucket region.

    Flatten straight into this (``flatten_bucket_into``) — the zero-copy
    replacement for building a fresh array and pickling it back.  The
    write is NOT visible to the parent until the caller publishes
    (vrank, bucket) through the backend's ready-queue.
    """
    plan: SlabPlan = desc["plan"]
    shm = _attach(desc["grad_names"][vrank])
    return plan.grad_view(shm.buf, bucket_idx, elems, writable=True)
