"""Pluggable execution backends for the EasyScale engine.

``SerialBackend`` (default) steps workers in-process; ``ProcessPoolBackend``
fans each physical worker's compute out to a persistent process pool while
preserving the bitwise serial/parallel contract (see ``docs/EXECUTION.md``).
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

from repro.exec.base import ExecutionBackend, StepRequest
from repro.exec.pool import TRANSPORTS, ProcessPoolBackend
from repro.exec.serial import SerialBackend
from repro.exec.shm import ShmTransport, SlabPlan, shm_available

#: registry consulted by :func:`resolve_backend` and ``cli train --backend``
#: ("pool" is an alias for the process-pool backend)
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "pool": ProcessPoolBackend,
}


def resolve_backend(
    backend: Union[None, str, ExecutionBackend],
) -> ExecutionBackend:
    """Normalize a backend argument to an :class:`ExecutionBackend` instance.

    ``None`` → a fresh :class:`SerialBackend`; a string → a fresh instance
    from :data:`BACKENDS` with default options; an instance → itself
    (engines share one pool across rebuilds this way).
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            raise KeyError(
                f"unknown execution backend {backend!r}; "
                f"available: {sorted(BACKENDS)}"
            ) from None
    raise TypeError(
        f"backend must be None, a name, or an ExecutionBackend, "
        f"got {type(backend).__name__}"
    )


__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShmTransport",
    "SlabPlan",
    "StepRequest",
    "resolve_backend",
    "shm_available",
]
