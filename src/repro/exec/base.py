"""Execution backends: how one global step's worker compute is scheduled.

The engine decides *what* runs (one local step per EST, on each physical
worker, in virtual-rank order within the worker) — a backend decides
*where* it runs: in-process (:class:`~repro.exec.serial.SerialBackend`)
or across a persistent process pool
(:class:`~repro.exec.pool.ProcessPoolBackend`).

The contract every backend must honour, and the tests pin bitwise:

1. **Same numerics.**  Each EST's local step is
   :func:`repro.core.worker.execute_local_step` — the single definition
   of forward/backward — regardless of which process executes it.
2. **Fixed merge order.**  The returned :class:`LocalStepResult` list is
   ordered by (worker, EST-position), exactly like the serial loop, so
   the engine's virtual-rank sort and the downstream reduction order are
   independent of process completion order.
3. **Parent-side sequencing of stateful calls.**  ``load_batch`` and the
   workers' fault hooks mutate parent state (loader cursors, injector
   exactly-once bookkeeping); backends must invoke them in the serial
   order: worker 0's ESTs, then worker 1's, ...
4. **State write-back.**  EST RNG streams advance, ``staged_grads`` are
   staged, and BN journals reference the *parent's* model layers on
   return — a checkpoint taken after the step is byte-identical across
   backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.comm.bucketing import BucketAssignment
    from repro.core.worker import EasyScaleWorker, LocalStepResult
    from repro.models.registry import WorkloadSpec
    from repro.nn.module import Module


@dataclass
class StepRequest:
    """Everything a backend needs to execute one global step's compute.

    Built fresh by the engine every step; backends must not cache any of
    it across steps except via their own explicit keying (the process
    pool keys its model replicas on ``(spec.name, seed)``).
    """

    #: physical workers in engine order (worker 0 first)
    workers: Sequence["EasyScaleWorker"]
    #: the parent's single model replica (authoritative parameters)
    model: "Module"
    spec: "WorkloadSpec"
    seed: int
    named_params: Dict[str, object]
    param_names_by_id: Dict[int, str]
    #: ``load_batch(vrank)`` — mutates loader state; call in serial order
    load_batch: Callable[[int], Tuple[np.ndarray, np.ndarray]]
    #: gradient arrival-order sink (only vrank 0 records into it);
    #: None once buckets are reconstructed
    arrival_sink: Optional[List[str]]
    #: current bucket layout — the unit of gradient shipping
    layout: "BucketAssignment"
    #: when False, the backend may defer RNG/BN-journal write-back into
    #: the parent's state until the next committed step (or an explicit
    #: :meth:`ExecutionBackend.commit`).  The engine keeps this True on
    #: every ``batches_per_commit``-th step, for audit-trail runs, and
    #: for backends that never defer (serial).
    commit: bool = True


class ExecutionBackend(ABC):
    """Strategy for executing the per-worker compute of a global step."""

    #: short identifier used for span/metric ``backend`` labels
    name: str = "abstract"

    @abstractmethod
    def run_step(self, request: StepRequest) -> List["LocalStepResult"]:
        """Execute every worker's local steps; results in (worker,
        EST-position) order.  May raise a ``FaultSignal`` out of a
        worker's fault hook exactly like the serial loop does."""

    def collect_observability(self) -> int:
        """Fold any out-of-process observability into the parent's state.

        Backends that execute compute in other processes (the pool) merge
        their children's span/metric shards into the global ``repro.obs``
        tracer and registry here, so a saved trace covers every process
        that did work.  In-process backends have nothing to collect.
        Idempotent; also invoked by :meth:`close`.  Returns the number of
        span records merged.
        """
        return 0

    def commit(self) -> None:
        """Flush any write-back deferred by ``StepRequest.commit=False``.

        After this returns, the parent's EST RNG streams and BN running
        stats are bitwise what per-step write-back would have produced.
        The engine calls it before checkpoints, evaluation, and at the
        end of every training drive.  No-op for backends that never
        defer.
        """

    def discard_pending(self) -> None:
        """Drop deferred write-back without applying it.

        Called on checkpoint restore: the restored state predates the
        deferred steps, so applying their banked RNG/BN write-back would
        corrupt it.  No-op for backends that never defer.
        """

    def close(self) -> None:
        """Release backend resources (pools).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
