"""VirtualFlow-style elasticity: fixed virtual nodes, gradient accumulation.

VirtualFlow (Or et al., MLSys '22) decouples the model from hardware by
fixing a number of *virtual nodes* and mapping them onto however many
physical accelerators exist, executing multiple virtual nodes per device
via gradient accumulation.  Unlike TorchElastic/Pollux it keeps the global
batch size constant, so its accuracy is *close* across scales — the paper
still reports a 0.4% accuracy degradation on ResNet50, because "same
hyper-parameters" is weaker than "same bits": accumulation reassociates
the gradient sum, and framework state (RNG streams, BN statistics) is not
virtualized per node.

This implementation reproduces exactly that gap, as a steelman baseline:

- virtual nodes shard data like EasyScale's ESTs (same sampler);
- but gradients accumulate *sequentially on each device* and are then
  all-reduced across devices — the float32 association follows the
  physical topology, not the virtual one;
- and a single per-device RNG stream serves all co-located virtual nodes.

Consequently two runs with the same schedule match bitwise, but runs with
different physical device counts agree only approximately — close in
accuracy (fixed global batch), different in bits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.comm.allreduce import allreduce_mean
from repro.data.dataloader import SharedDataLoader
from repro.data.datasets import Dataset
from repro.models.registry import WorkloadSpec
from repro.nn.runtime import collect_bn_stats, use_rng
from repro.optim.sgd import SGD
from repro.tensor.context import execution_context
from repro.tensor.kernels import D0_POLICY
from repro.utils.rng import RNGBundle, derive_seed


class VirtualFlowTrainer:
    """Fixed-virtual-node training with per-device gradient accumulation."""

    def __init__(
        self,
        spec: WorkloadSpec,
        dataset: Dataset,
        num_virtual_nodes: int,
        batch_size: int = 8,
        lr: float = 0.05,
        momentum: float = 0.9,
        seed: int = 0,
    ) -> None:
        if num_virtual_nodes <= 0:
            raise ValueError("num_virtual_nodes must be positive")
        self.spec = spec
        self.num_virtual = num_virtual_nodes
        self.batch_size = batch_size
        self.seed = seed
        self.model = spec.build_model(RNGBundle(derive_seed(seed, "model")))
        self.optimizer = SGD(self.model.named_parameters(), lr=lr, momentum=momentum)
        self._named_params = dict(self.model.named_parameters())
        self.loader = SharedDataLoader(
            dataset,
            num_replicas=num_virtual_nodes,
            batch_size=batch_size,
            seed=seed,
            num_workers=2,
        )
        self.global_step = 0
        self.loss_history: List[float] = []

    def _device_map(self, num_devices: int) -> List[List[int]]:
        """Contiguous virtual-node placement (VirtualFlow's scheme)."""
        if not 0 < num_devices <= self.num_virtual:
            raise ValueError(
                f"device count must be in [1, {self.num_virtual}], got {num_devices}"
            )
        base, rem = divmod(self.num_virtual, num_devices)
        result: List[List[int]] = []
        cursor = 0
        for d in range(num_devices):
            count = base + (1 if d < rem else 0)
            result.append(list(range(cursor, cursor + count)))
            cursor += count
        return result

    def train_steps(self, num_steps: int, num_devices: int) -> List[float]:
        """Run global steps on ``num_devices`` physical devices.

        Virtual nodes on the same device accumulate their gradients in
        local float32 before the cross-device all-reduce — the association
        that makes results device-count-dependent at the bit level.
        """
        device_map = self._device_map(num_devices)
        # one RNG stream per *device* (the non-virtualized framework state)
        device_rngs = [
            RNGBundle(derive_seed(self.seed, "vf-device", num_devices, d))
            for d in range(num_devices)
        ]
        steps_per_epoch = self.loader.steps_per_epoch
        out: List[float] = []
        for _ in range(num_steps):
            epoch = self.global_step // steps_per_epoch
            step = self.global_step % steps_per_epoch
            self.loader.set_epoch(epoch)
            device_grads: List[Dict[str, np.ndarray]] = []
            journals: List[list] = []
            step_losses: List[float] = []
            for device_idx, vnodes in enumerate(device_map):
                accumulated: Optional[Dict[str, np.ndarray]] = None
                for vnode in vnodes:
                    x, y = self.loader.load(vnode, epoch, step)
                    self.model.zero_grad()
                    with execution_context("v100", D0_POLICY), use_rng(
                        device_rngs[device_idx]
                    ), collect_bn_stats() as journal:
                        loss = self.spec.forward_loss(self.model, x, y)
                        loss.backward()
                    step_losses.append(loss.item())
                    journals.append(journal)
                    grads = {
                        n: p.grad for n, p in self._named_params.items() if p.grad is not None
                    }
                    if accumulated is None:
                        accumulated = {n: g.copy() for n, g in grads.items()}
                    else:
                        for n, g in grads.items():
                            accumulated[n] = accumulated[n] + g
                device_grads.append(accumulated or {})
            names = device_grads[0].keys()
            world = np.float32(self.num_virtual)
            for name in names:
                flats = [g[name].reshape(-1) for g in device_grads]
                # sum across devices, then divide by the virtual world size
                total = allreduce_mean(flats, "ring") * np.float32(len(flats))
                self._named_params[name].grad = (total / world).reshape(
                    self._named_params[name].data.shape
                )
            for journal in journals:
                for layer, mean, var in journal:
                    layer.fold_stats(mean, var)
            self.optimizer.step()
            self.model.zero_grad()
            self.global_step += 1
            mean_loss = float(np.mean(step_losses))
            out.append(mean_loss)
            self.loss_history.append(mean_loss)
        return out
