"""Elastic-training baselines (TorchElastic-like, Pollux-like)."""

from repro.elastic.base import ElasticBaselineTrainer, ScalingStrategy, TrainSegment
from repro.elastic.torchelastic import TorchElasticScaling
from repro.elastic.pollux import PolluxScaling
from repro.elastic.virtualflow import VirtualFlowTrainer

__all__ = [
    "ElasticBaselineTrainer",
    "ScalingStrategy",
    "TrainSegment",
    "TorchElasticScaling",
    "PolluxScaling",
    "VirtualFlowTrainer",
]
