"""TorchElastic-style scaling: fixed per-worker batch, linear LR rule.

TorchElastic keeps each worker's batch size constant, so the *global*
batch grows linearly with the worker count; the standard companion recipe
(Goyal et al., "Accurate, Large Minibatch SGD") scales the learning rate
linearly with the global batch.  Train the same job on 1 vs 8 GPUs and the
effective hyper-parameters differ by 8x — accuracy consistency is not even
attempted.  This is the "TE" baseline of Figs. 2–3.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.elastic.base import ScalingStrategy


class TorchElasticScaling(ScalingStrategy):
    """Linear-scaling rule: ``lr = base_lr * world_size``, fixed worker batch."""

    name = "torchelastic"

    def __init__(self, reference_world: int = 1) -> None:
        if reference_world <= 0:
            raise ValueError("reference_world must be positive")
        self.reference_world = reference_world

    def configure(
        self, world_size: int, base_lr: float, base_batch: int, feedback: Dict[str, float]
    ) -> Tuple[float, int]:
        scale = world_size / self.reference_world
        return base_lr * scale, base_batch
