"""Pollux-style co-adaptive scaling (goodput-driven batch size and LR).

Pollux (Qiao et al., OSDI '21) models *goodput* = throughput x statistical
efficiency, where efficiency comes from the gradient noise scale (GNS):
large GNS → bigger batches still help; small GNS → bigger batches waste
samples.  It continuously re-tunes the global batch size within user
bounds and adjusts the learning rate with square-root scaling.

Our reproduction keeps the decision structure (GNS feedback → batch size →
sqrt-scaled LR) at epoch granularity.  Pollux's adaptation is gentler than
TorchElastic's linear rule — matching the paper's observation that its
accuracy variance is smaller but still non-negligible (up to 5.8% at epoch
10, 2.8% overall at epoch 100).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.elastic.base import ScalingStrategy


class PolluxScaling(ScalingStrategy):
    """GNS-driven global batch within bounds; sqrt LR scaling."""

    name = "pollux"

    def __init__(self, max_batch_factor: float = 4.0) -> None:
        if max_batch_factor < 1.0:
            raise ValueError("max_batch_factor must be >= 1")
        self.max_batch_factor = max_batch_factor

    def configure(
        self, world_size: int, base_lr: float, base_batch: int, feedback: Dict[str, float]
    ) -> Tuple[float, int]:
        gns = max(feedback.get("gns", 1.0), 1e-3)
        # statistical-efficiency sweet spot: global batch ∝ sqrt(1 + GNS),
        # clipped to [base, max_factor * base * world] and rounded to a
        # whole per-worker batch
        target_global = base_batch * math.sqrt(1.0 + gns)
        max_global = self.max_batch_factor * base_batch * world_size
        target_global = min(max(target_global, base_batch), max_global)
        per_worker = max(1, round(target_global / world_size))
        global_batch = per_worker * world_size
        lr = base_lr * math.sqrt(global_batch / base_batch)
        return lr, per_worker
