"""Elastic-training baselines: the systems EasyScale is motivated against.

TorchElastic, ElasticDL, and Pollux adapt the *training configuration* to
the resources at hand — per-worker batch size stays fixed so the global
batch grows with workers, and the learning rate is rescaled (linearly for
TorchElastic's recipe, adaptively for Pollux).  That coupling is exactly
what breaks accuracy consistency: run the same job on 1, 2, 4, 8 GPUs and
you run four *different* optimization problems (Figs. 2–4).

:class:`ElasticBaselineTrainer` implements the shared machinery —
synchronized data-parallel steps over a current world size, checkpoint/
restart on scale events (parameters survive, data order and hyper-params
do not) — while a :class:`ScalingStrategy` supplies each framework's
hyper-parameter policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.allreduce import allreduce_mean
from repro.data.dataloader import SharedDataLoader
from repro.data.datasets import Dataset
from repro.models.registry import WorkloadSpec
from repro.nn.module import Module
from repro.nn.runtime import collect_bn_stats, use_rng
from repro.optim.lr_scheduler import LRScheduler, StepLR
from repro.optim.sgd import SGD
from repro.tensor.context import execution_context
from repro.tensor.kernels import D0_POLICY
from repro.utils.rng import RNGBundle, derive_seed


class ScalingStrategy:
    """Maps (world size, training feedback) → (learning rate, batch size)."""

    name = "abstract"

    def configure(
        self, world_size: int, base_lr: float, base_batch: int, feedback: Dict[str, float]
    ) -> Tuple[float, int]:
        """Return (learning rate, per-worker batch size) for a segment."""
        raise NotImplementedError


@dataclass
class TrainSegment:
    """A stretch of training at a fixed world size (between scale events)."""

    world_size: int
    epochs: int


class ElasticBaselineTrainer:
    """Data-parallel training whose hyper-params track the world size."""

    def __init__(
        self,
        spec: WorkloadSpec,
        dataset: Dataset,
        strategy: ScalingStrategy,
        base_lr: float = 0.05,
        base_batch: int = 8,
        momentum: float = 0.9,
        seed: int = 0,
        gamma: float = 0.1,
        lr_step_epochs: int = 20,
    ) -> None:
        self.spec = spec
        self.dataset = dataset
        self.strategy = strategy
        self.base_lr = base_lr
        self.base_batch = base_batch
        self.momentum = momentum
        self.seed = seed
        self.model = spec.build_model(RNGBundle(derive_seed(seed, "model")))
        self.optimizer = SGD(self.model.named_parameters(), lr=base_lr, momentum=momentum)
        self.scheduler: LRScheduler = StepLR(self.optimizer, step_size=lr_step_epochs, gamma=gamma)
        self._named_params = dict(self.model.named_parameters())
        self.epoch = 0
        self.restarts = 0
        #: strategy feedback: gradient-noise-scale EMA etc.
        self.feedback: Dict[str, float] = {"gns": 1.0}
        self.loss_history: List[float] = []
        self.lr_history: List[float] = []

    # ------------------------------------------------------------------
    def _epoch_loader(self, world_size: int, batch_size: int) -> SharedDataLoader:
        # a restart re-rendezvouses and rebuilds loaders: the shard
        # assignment depends on the *current* world size, unlike EasyScale
        return SharedDataLoader(
            self.dataset,
            num_replicas=world_size,
            batch_size=batch_size,
            seed=derive_seed(self.seed, "restart", self.restarts),
            num_workers=2,
        )

    def _update_feedback(self, per_rank_grads: List[Dict[str, np.ndarray]]) -> None:
        """Estimate the gradient noise scale across workers (Pollux input)."""
        if len(per_rank_grads) < 2:
            return
        names = list(per_rank_grads[0])
        stacked = [
            np.stack([g[name].reshape(-1) for g in per_rank_grads]) for name in names
        ]
        mean_sq = sum(float((s.mean(axis=0) ** 2).sum()) for s in stacked)
        var = sum(float(s.var(axis=0).sum()) for s in stacked)
        gns = var / max(mean_sq, 1e-8)
        self.feedback["gns"] = 0.9 * self.feedback["gns"] + 0.1 * gns

    def train_epoch(self, world_size: int) -> float:
        """One epoch at the given world size; returns mean loss."""
        lr, batch_size = self.strategy.configure(
            world_size, self.scheduler.get_lr() if self.epoch else self.base_lr,
            self.base_batch, self.feedback,
        )
        self.optimizer.lr = lr
        self.lr_history.append(lr)
        loader = self._epoch_loader(world_size, batch_size)
        loader.set_epoch(self.epoch)
        rank_rngs = [
            RNGBundle(derive_seed(self.seed, "elastic-worker", self.restarts, r))
            for r in range(world_size)
        ]
        losses: List[float] = []
        for step in range(loader.steps_per_epoch):
            per_rank_grads: List[Dict[str, np.ndarray]] = []
            journals: List[list] = []
            for rank in range(world_size):
                x, y = loader.load(rank, self.epoch, step)
                self.model.zero_grad()
                with execution_context("v100", D0_POLICY), use_rng(
                    rank_rngs[rank]
                ), collect_bn_stats() as journal:
                    loss = self.spec.forward_loss(self.model, x, y)
                    loss.backward()
                losses.append(loss.item())
                per_rank_grads.append(
                    {
                        n: p.grad.copy()
                        for n, p in self._named_params.items()
                        if p.grad is not None
                    }
                )
                journals.append(journal)
            self._update_feedback(per_rank_grads)
            names = per_rank_grads[0].keys()
            for name in names:
                flats = [g[name].reshape(-1) for g in per_rank_grads]
                avg = allreduce_mean(flats, "ring")
                self._named_params[name].grad = avg.reshape(
                    self._named_params[name].data.shape
                )
            for journal in journals:
                for layer, mean, var in journal:
                    layer.fold_stats(mean, var)
            self.optimizer.step()
            self.model.zero_grad()
        self.epoch += 1
        self.scheduler.step()
        return float(np.mean(losses)) if losses else float("nan")

    def run_schedule(self, segments: Sequence[TrainSegment]) -> List[float]:
        """Train through a schedule of (world size, epochs) segments.

        Each segment boundary is a scale event: the framework checkpoints
        parameters, restarts, and re-shards data — as TorchElastic does.
        Returns the per-epoch mean losses.
        """
        epoch_losses: List[float] = []
        for i, segment in enumerate(segments):
            if i > 0:
                self.restarts += 1  # re-rendezvous: data order reshuffles
            for _ in range(segment.epochs):
                epoch_losses.append(self.train_epoch(segment.world_size))
                self.loss_history.append(epoch_losses[-1])
        return epoch_losses
