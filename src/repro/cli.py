"""Command-line interface: ``python -m repro.cli <command>``.

Gives the repository's main entry points a shell surface:

- ``list-workloads`` — the Table-1 model zoo with resource profiles;
- ``train`` — run one EasyScale job through an elastic GPU schedule and
  verify bitwise consistency against the DDP reference;
- ``trace-sim`` — replay a job trace under a chosen scheduler;
- ``colocation`` — the two-day serving co-location statistic;
- ``scan`` — the D2-eligibility scan for a workload;
- ``obs`` — observability tools: summarize a span trace or telemetry log,
  export a trace to Chrome ``trace_event`` JSON, diff two determinism
  audit trails, replay a span trace through the online profiler
  (``obs profile``), or build a cluster utilization report from a
  trace-sim event log (``obs report``).  ``train --trace/--audit/--profile``
  and ``trace-sim --trace/--events`` produce the input files.
- ``faults`` — deterministic fault injection: ``faults gen`` writes a
  seeded random :class:`~repro.faults.schedule.FaultPlan` JSON file;
  ``faults replay`` runs the fault-free reference and a
  :class:`~repro.faults.controller.ResilienceController` run under the
  plan, then proves the two bitwise-identical by diffing their audit
  trails.  ``train --faults PLAN`` trains through the controller.
- ``membership`` — cluster membership scenarios: ``membership gen``
  writes a seeded :class:`~repro.membership.plan.MembershipPlan` JSON
  file (random host churn, or ``--rolling N`` for a rolling-upgrade
  drain); ``membership replay`` runs the static reference and a
  :class:`~repro.membership.controller.MembershipController` run under
  the plan, then proves the two bitwise-identical by diffing their
  audit trails.  ``train --hosts PLAN`` trains through the controller.

- ``bench`` — performance-regression observatory: ``bench run`` times
  the built-in benches (sched plan round, parallel pool step,
  determinism kernel) and appends schema-versioned records to the
  repo-root ``BENCH_<area>.json`` trajectory files; ``bench compare``
  prints the latest-vs-previous verdict per metric; ``bench gate``
  exits non-zero on any regression, for CI (see docs/BENCHMARKS.md).

Exit codes: 0 success; 2 missing/malformed input file; 3 failed
self-test; 4 divergent audit trails or fingerprints (``obs diff-audit``,
``obs why``, ``faults replay``, ``membership replay``,
``train --faults/--hosts --verify``); 5
performance regression (``bench gate``).  ``obs postmortem`` renders a
flight-recorder bundle (0 readable / 2 unreadable); ``obs why`` adds a
ranked cause attribution on top of the diff-audit contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    from repro.models import TABLE1, WORKLOADS

    print(f"{'name':<16} {'dataset':<16} {'batch':>5} {'params(GB)':>10} "
          f"{'V100 mb/s':>9} {'conv-heavy':>10}")
    for name in TABLE1 + sorted(set(WORKLOADS) - set(TABLE1)):
        spec = WORKLOADS[name]
        print(
            f"{spec.name:<16} {spec.dataset_name:<16} {spec.batch_size:>5} "
            f"{spec.params_gb:>10.3f} {spec.throughput['v100']:>9.1f} "
            f"{str(spec.conv_heavy):>10}"
        )
    return 0


def _parse_stage(stage: str):
    """Parse '2xV100' / 'V100' / '1xV100+2xP100' into a GPU list."""
    from repro.hw import gpu_type

    gpus = []
    for part in stage.split("+"):
        part = part.strip()
        if "x" in part:
            count_str, type_name = part.split("x", 1)
            count = int(count_str)
        else:
            count, type_name = 1, part
        gpus.extend([gpu_type(type_name.upper())] * count)
    return gpus


def _cmd_train(args: argparse.Namespace) -> int:
    import os

    from repro import obs

    # REPRO_TRACE=1 turns tracing on without a flag (the same switch the
    # benchmark suite honours); REPRO_TRACE_PATH overrides the output.
    env_trace = os.environ.get("REPRO_TRACE") == "1"
    if env_trace and not args.trace:
        args.trace = os.environ.get("REPRO_TRACE_PATH", "repro_trace.jsonl")
    if args.trace or args.audit:
        # a fault-recovery or membership run restores to earlier steps and
        # re-records them, which a plain audit trail would reject
        obs.configure(enabled=True, audit_path=args.audit,
                      audit_rewind=bool(args.faults or args.hosts))
    try:
        return _run_train(args)
    finally:
        if args.trace:
            # the backend has been closed by now, so pool-child shards are
            # already merged into the global tracer — the saved trace (and
            # Chrome export) covers every process that did work; close()
            # flushes spans a crash left open so the export stays matched
            obs.tracer().close()
            obs.tracer().save(args.trace)
            print(f"span trace written to {args.trace}")
            if env_trace:
                chrome = args.trace + ".chrome.json"
                obs.tracer().save_chrome_trace(chrome)
                print(f"merged Chrome trace written to {chrome} "
                      f"(load in chrome://tracing or https://ui.perfetto.dev)")
        if args.audit:
            print(f"audit trail written to {args.audit}")
        if args.trace or args.audit:
            obs.reset()


def _run_train(args: argparse.Namespace) -> int:
    from repro.core import (
        EasyScaleEngine,
        EasyScaleJobConfig,
        WorkerAssignment,
        determinism_from_label,
    )
    from repro.ddp import DDPTrainer, ddp_heter_config, ddp_homo_config
    from repro.hw import static_capability
    from repro.models import get_workload
    from repro.obs.profiler import OnlineProfiler
    from repro.optim import SGD
    from repro.utils.fingerprint import fingerprint_state_dict
    from repro.utils.telemetry import RunLog

    spec = get_workload(args.workload)
    dataset = spec.build_dataset(args.samples, seed=args.seed)
    determinism = determinism_from_label(args.determinism)

    def optimizer(model):
        return SGD(model.named_parameters(), lr=args.lr, momentum=0.9)

    stages = [_parse_stage(s) for s in args.schedule]
    config = EasyScaleJobConfig(
        num_ests=args.ests, seed=args.seed, batch_size=args.batch_size,
        determinism=determinism,
        batches_per_commit=getattr(args, "commit_every", 1),
    )
    profiler = (
        OnlineProfiler(
            static_capability=static_capability(spec, determinism.kernel_policy)
        )
        if args.profile
        else None
    )
    telemetry = RunLog(args.telemetry) if args.telemetry else None
    backend = _build_backend(args)

    try:
        if args.hosts:
            return _train_with_membership(
                args, spec, dataset, config, optimizer, telemetry,
                profiler, backend,
            )
        if args.faults:
            return _train_with_faults(
                args, spec, dataset, config, optimizer, stages, telemetry,
                profiler, backend,
            )

        engine = EasyScaleEngine(
            spec, dataset, config, optimizer,
            WorkerAssignment.balanced(stages[0], args.ests),
            telemetry=telemetry, profiler=profiler, backend=backend,
        )
        total = 0
        for i, gpus in enumerate(stages):
            if i > 0:
                engine = engine.reconfigure(WorkerAssignment.balanced(gpus, args.ests))
                print(f"reconfigured to stage {i}: {[g.name for g in gpus]}")
            losses = engine.train_steps(args.steps_per_stage)
            total += len(losses)
            print(f"stage {i}: steps {total - len(losses)}..{total - 1}, "
                  f"last loss {losses[-1]:.6f}")
    finally:
        backend.close()

    if profiler is not None:
        profiler.flush()
        print()
        print(profiler.describe())
        if telemetry is not None:
            telemetry.profile(engine.global_step, profiler.summary())
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry written to {args.telemetry}")

    if args.verify:
        heter = determinism.heterogeneous
        ddp_config = (
            ddp_heter_config(args.ests, ["v100"] * args.ests, seed=args.seed,
                             batch_size=args.batch_size)
            if heter
            else ddp_homo_config(args.ests, seed=args.seed, batch_size=args.batch_size)
        )
        reference = DDPTrainer(spec, dataset, ddp_config, optimizer)
        reference.train_steps(total)
        same = fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            reference.model.state_dict()
        )
        print(f"bitwise vs DDP-{args.ests}GPU reference: {'IDENTICAL' if same else 'DIFFERENT'}")
        return 0 if same else 2
    return 0


def _build_backend(args):
    """The execution backend selected by ``train --backend/--workers``."""
    from repro.exec import ProcessPoolBackend, SerialBackend

    if getattr(args, "backend", "serial") in ("process", "pool"):
        return ProcessPoolBackend(
            max_workers=args.workers,
            transport=getattr(args, "transport", "shm"),
        )
    return SerialBackend()


def _train_with_faults(args, spec, dataset, config, optimizer, stages,
                       telemetry, profiler, backend=None) -> int:
    """``train --faults PLAN``: drive the job through the resilience
    controller instead of the manual reconfiguration schedule.  The first
    ``--schedule`` stage is the starting pool; the plan decides what gets
    taken away."""
    from repro.faults import FaultPlan, ResilienceController

    try:
        plan = FaultPlan.load(args.faults)
    except FileNotFoundError:
        print(f"error: no such file: {args.faults}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    total = args.steps_per_stage * len(stages)
    print(plan.describe())
    controller = ResilienceController(
        spec, dataset, config, optimizer, stages[0], plan,
        telemetry=telemetry, profiler=profiler, backend=backend,
    )
    stats = controller.run(total)
    if controller.losses:
        print(f"{total} steps survived the plan; "
              f"last loss {controller.losses[-1][-1]:.6f}")
    print(stats.describe())
    print(f"clock: {controller.clock:.1f}s = {controller.compute_s:.1f}s "
          f"compute + {stats.downtime_s:.1f}s downtime")

    if profiler is not None:
        profiler.flush()
        print()
        print(profiler.describe())
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry written to {args.telemetry}")

    if args.verify:
        from repro.core import EasyScaleEngine, WorkerAssignment
        from repro.utils.fingerprint import fingerprint_state_dict

        reference = EasyScaleEngine(
            spec, dataset, config, optimizer,
            WorkerAssignment.balanced(stages[0], args.ests),
        )
        reference.train_steps(total)
        same = fingerprint_state_dict(
            controller.engine.model.state_dict()
        ) == fingerprint_state_dict(reference.model.state_dict())
        print(f"bitwise vs fault-free EasyScale reference: "
              f"{'IDENTICAL' if same else 'DIFFERENT'}")
        return 0 if same else 4
    return 0


def _roster_pool(plan):
    """The GPU pool a membership plan's initial roster provides."""
    from repro.hw.gpu import gpu_type

    pool = []
    for host in plan.initial_hosts:
        pool.extend([gpu_type(host.gtype.upper())] * host.slots)
    return pool


def _train_with_membership(args, spec, dataset, config, optimizer,
                           telemetry, profiler, backend=None) -> int:
    """``train --hosts PLAN``: drive the job through the membership
    controller.  The plan's initial roster is the starting pool — the
    ``--schedule`` stages are ignored — and host events grow and shrink
    it at step boundaries.  ``--faults`` may run alongside."""
    from repro.faults import FaultPlan
    from repro.membership import MembershipController, MembershipPlan

    try:
        plan = MembershipPlan.load(args.hosts)
        faults = FaultPlan.load(args.faults) if args.faults else None
    except FileNotFoundError as err:
        print(f"error: no such file: {err.filename}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    total = args.steps_per_stage * len(args.schedule)
    print(plan.describe())
    controller = MembershipController(
        spec, dataset, config, optimizer, plan, faults=faults,
        telemetry=telemetry, profiler=profiler, backend=backend,
    )
    stats = controller.run(total)
    if controller.losses:
        print(f"{total} steps survived the plan; "
              f"last loss {controller.losses[-1][-1]:.6f}")
    print(controller.mstats.describe())
    print(stats.describe())
    print(f"clock: {controller.clock:.1f}s = {controller.compute_s:.1f}s "
          f"compute + {stats.downtime_s:.1f}s downtime")

    if profiler is not None:
        profiler.flush()
        print()
        print(profiler.describe())
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry written to {args.telemetry}")

    if args.verify:
        from repro.core import EasyScaleEngine, WorkerAssignment
        from repro.utils.fingerprint import fingerprint_state_dict

        reference = EasyScaleEngine(
            spec, dataset, config, optimizer,
            WorkerAssignment.balanced(_roster_pool(plan), args.ests),
        )
        reference.train_steps(total)
        same = fingerprint_state_dict(
            controller.engine.model.state_dict()
        ) == fingerprint_state_dict(reference.model.state_dict())
        print(f"bitwise vs static EasyScale reference: "
              f"{'IDENTICAL' if same else 'DIFFERENT'}")
        return 0 if same else 4
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    try:
        if args.faults_command == "gen":
            return _run_faults_gen(args)
        if args.faults_command == "replay":
            return _run_faults_replay(args)
    except FileNotFoundError as err:
        print(f"error: no such file: {err.filename}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled faults subcommand {args.faults_command!r}")


def _run_faults_gen(args: argparse.Namespace) -> int:
    from repro.faults import random_plan

    plan = random_plan(
        args.seed,
        horizon_steps=args.steps,
        num_gpus=args.gpus,
        max_events=args.events,
        note=args.note or "",
    )
    plan.save(args.out)
    print(plan.describe())
    print(f"fault plan written to {args.out} "
          f"(replay with: repro faults replay --plan {args.out})")
    return 0


def _run_faults_replay(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core import (
        EasyScaleEngine,
        EasyScaleJobConfig,
        WorkerAssignment,
        determinism_from_label,
    )
    from repro.faults import FaultPlan, ResilienceController, run_contrast
    from repro.models import get_workload
    from repro.optim import SGD

    plan = FaultPlan.load(args.plan)
    spec = get_workload(args.workload)
    dataset = spec.build_dataset(args.samples, seed=args.seed)
    gpus = _parse_stage(args.gpus)
    config = EasyScaleJobConfig(
        num_ests=args.ests, seed=args.seed, batch_size=args.batch_size,
        determinism=determinism_from_label(args.determinism),
    )

    def optimizer(model):
        return SGD(model.named_parameters(), lr=args.lr, momentum=0.9)

    print(plan.describe())
    if not plan.step_events:
        print("warning: plan has no step-triggered events "
              "(time-triggered plans are for trace-sim)")

    if args.contrast:
        result = run_contrast(
            spec, dataset, config, optimizer, gpus, plan,
            total_steps=args.steps, base_lr=args.lr,
        )
        print(result.describe())
        return 0 if result.easyscale_consistent else 4

    # leg 1: the fault-free reference, audited per step
    ref_path = f"{args.audit}.ref.jsonl" if args.audit else None
    obs.configure(enabled=True, audit=True, audit_path=ref_path)
    reference = EasyScaleEngine(
        spec, dataset, config, optimizer,
        WorkerAssignment.balanced(gpus, args.ests),
    )
    reference.train_steps(args.steps)
    ref_trail = obs.audit_trail()

    # leg 2: the same job under the plan; the trail must allow rewinds
    # because recoveries re-record the steps they re-execute
    fault_path = f"{args.audit}.fault.jsonl" if args.audit else None
    obs.configure(enabled=True, audit=True, audit_path=fault_path,
                  audit_rewind=True)
    try:
        controller = ResilienceController(
            spec, dataset, config, optimizer, gpus, plan,
            snapshot_interval=args.snapshot_interval,
        )
        stats = controller.run(args.steps)
        fault_trail = obs.audit_trail()
    finally:
        obs.reset()

    print(stats.describe())
    print(f"clock: {controller.clock:.1f}s = {controller.compute_s:.1f}s "
          f"compute + {stats.downtime_s:.1f}s downtime")
    diff = obs.diff_audits(ref_trail, fault_trail)
    print(diff.describe())
    if args.audit:
        print(f"audit trails written to {ref_path} and {fault_path}")
    print("replay:", "BITWISE-IDENTICAL" if diff.identical else "DIVERGED")
    return 0 if diff.identical else 4


def _cmd_membership(args: argparse.Namespace) -> int:
    try:
        if args.membership_command == "gen":
            return _run_membership_gen(args)
        if args.membership_command == "replay":
            return _run_membership_replay(args)
    except FileNotFoundError as err:
        print(f"error: no such file: {err.filename}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled membership subcommand {args.membership_command!r}"
    )


def _run_membership_gen(args: argparse.Namespace) -> int:
    from repro.membership import (
        HostSpec,
        random_membership_plan,
        rolling_upgrade_plan,
    )

    if args.rolling is not None:
        if args.rolling < 2:
            print("error: --rolling needs at least 2 hosts", file=sys.stderr)
            return 2
        hosts = [HostSpec(f"host{i}", "v100", 1) for i in range(args.rolling)]
        plan = rolling_upgrade_plan(
            hosts,
            start_step=1,
            max_unavailable=args.max_unavailable,
            note=args.note or f"rolling upgrade of {args.rolling} hosts",
        )
    else:
        plan = random_membership_plan(
            args.seed,
            horizon_steps=args.steps,
            max_events=args.events,
            note=args.note or "",
        )
    plan.save(args.out)
    print(plan.describe())
    print(f"membership plan written to {args.out} "
          f"(replay with: repro membership replay --plan {args.out})")
    return 0


def _run_membership_replay(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core import (
        EasyScaleEngine,
        EasyScaleJobConfig,
        WorkerAssignment,
        determinism_from_label,
    )
    from repro.membership import MembershipController, MembershipPlan
    from repro.models import get_workload
    from repro.optim import SGD

    plan = MembershipPlan.load(args.plan)
    spec = get_workload(args.workload)
    dataset = spec.build_dataset(args.samples, seed=args.seed)
    pool = _roster_pool(plan)
    config = EasyScaleJobConfig(
        num_ests=args.ests, seed=args.seed, batch_size=args.batch_size,
        determinism=determinism_from_label(args.determinism),
    )

    def optimizer(model):
        return SGD(model.named_parameters(), lr=args.lr, momentum=0.9)

    print(plan.describe())
    if not plan.step_events:
        print("warning: plan has no step-triggered events "
              "(time-triggered plans are for trace-sim)")

    # leg 1: the static reference on the initial roster, audited per step
    ref_path = f"{args.audit}.ref.jsonl" if args.audit else None
    obs.configure(enabled=True, audit=True, audit_path=ref_path)
    reference = EasyScaleEngine(
        spec, dataset, config, optimizer,
        WorkerAssignment.balanced(pool, args.ests),
    )
    reference.train_steps(args.steps)
    ref_trail = obs.audit_trail()

    # leg 2: the same job under the membership plan; the trail must allow
    # rewinds because forceful recoveries re-record re-executed steps
    member_path = f"{args.audit}.member.jsonl" if args.audit else None
    obs.configure(enabled=True, audit=True, audit_path=member_path,
                  audit_rewind=True)
    try:
        controller = MembershipController(
            spec, dataset, config, optimizer, plan,
            snapshot_interval=args.snapshot_interval,
        )
        stats = controller.run(args.steps)
        member_trail = obs.audit_trail()
    finally:
        obs.reset()

    print(controller.mstats.describe())
    print(stats.describe())
    print(f"clock: {controller.clock:.1f}s = {controller.compute_s:.1f}s "
          f"compute + {stats.downtime_s:.1f}s downtime")
    diff = obs.diff_audits(ref_trail, member_trail)
    print(diff.describe())
    if args.audit:
        print(f"audit trails written to {ref_path} and {member_path}")
    print("replay:", "BITWISE-IDENTICAL" if diff.identical else "DIVERGED")
    return 0 if diff.identical else 4


def _load_calibration(path: str) -> dict:
    """Read a ``trace-sim --calibrate`` JSON file into per-type scale factors.

    Accepts either ``{"scale": {"t4": 0.8, ...}}`` (as written by hand or
    derived from ``OnlineProfiler`` calibration deltas) or a flat
    ``{"t4": 0.8, ...}`` mapping.
    """
    import json

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: calibration file must be a JSON object")
    scale = payload.get("scale", payload)
    if not isinstance(scale, dict) or not scale:
        raise ValueError(f"{path}: no per-GPU-type scale factors found")
    try:
        factors = {str(k).lower(): float(v) for k, v in scale.items()}
    except (TypeError, ValueError) as err:
        raise ValueError(f"{path}: malformed scale factor: {err}") from err
    bad = {k: v for k, v in factors.items() if v <= 0 or v != v}
    if bad:
        raise ValueError(f"{path}: scale factors must be positive, got {bad}")
    return factors


def _plan_cache_totals(result) -> Optional[Tuple[int, int, float]]:
    """Aggregate companion plan-cache stats across a run's per-job agents.

    Returns ``(hits, misses, hit_ratio)``, or ``None`` when the policy has
    no companion-backed agents (e.g. YARN-CS gang scheduling).
    """
    hits = misses = 0
    found = False
    for runtime in result.jobs:
        agent = runtime.agent
        companion = getattr(agent, "companion", None)
        if companion is None or not hasattr(companion, "cache_stats"):
            continue
        found = True
        for stats in companion.cache_stats().values():
            hits += stats["hits"]
            misses += stats["misses"]
    if not found:
        return None
    total = hits + misses
    return hits, misses, (hits / total if total else 0.0)


def _cmd_trace_sim(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.hw import microbench_cluster, production_cluster
    from repro.obs.report import save_events_jsonl
    from repro.sched import (
        ClusterSimulator,
        EasyScalePolicy,
        YarnCapacityScheduler,
        diurnal_trace,
        generate_trace,
        heavy_tail_trace,
    )

    calibration = None
    if args.calibrate:
        try:
            calibration = _load_calibration(args.calibrate)
        except FileNotFoundError as err:
            print(f"error: no such file: {err.filename}", file=sys.stderr)
            return 2
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        print(f"calibrated capability scales: {calibration}")

    fault_plan = None
    if args.faults:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.faults)
        except FileNotFoundError:
            print(f"error: no such file: {args.faults}", file=sys.stderr)
            return 2
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        if not fault_plan.time_events:
            print(f"warning: {args.faults} has no time-triggered events "
                  "(step-triggered plans are for 'faults replay')")

    if args.trace:
        obs.configure(enabled=True, clock="sim")
    if args.shape == "diurnal":
        jobs = diurnal_trace(
            num_jobs=args.jobs,
            seed=args.seed,
            days=args.days,
            mean_duration_s=args.duration,
        )
    elif args.shape == "heavy-tail":
        jobs = heavy_tail_trace(
            num_jobs=args.jobs,
            seed=args.seed,
            mean_interarrival_s=args.interarrival,
        )
    else:
        jobs = generate_trace(
            num_jobs=args.jobs,
            seed=args.seed,
            mean_interarrival_s=args.interarrival,
            mean_duration_s=args.duration,
        )
    build_cluster = (
        (lambda: production_cluster(args.cluster_gpus))
        if args.cluster_gpus
        else microbench_cluster
    )
    policies = {
        "yarn": YarnCapacityScheduler,
        "homo": lambda: EasyScalePolicy(False, capability_scale=calibration),
        "heter": lambda: EasyScalePolicy(True, capability_scale=calibration),
    }
    names = list(policies) if args.policy == "all" else [args.policy]
    try:
        for name in names:
            sim = ClusterSimulator(
                build_cluster(), jobs, policies[name](), faults=fault_plan
            )
            runner = {
                "heap": sim.run,
                "batched": sim.run_batched,
                "reference": sim.run_reference,
            }[args.core]
            result = runner()
            print(
                f"{result.policy:<16} avg JCT {result.average_jct:>10.1f} s   "
                f"makespan {result.makespan:>10.1f} s   "
                f"completed {len(result.completed)}/{len(jobs)}"
            )
            if fault_plan is not None:
                print(
                    f"{'':<16} {result.preemptions} preemption(s)   "
                    f"recovery {result.recovery_seconds:>8.1f} s   "
                    f"lost work {result.lost_work_seconds:>8.1f} s"
                )
            cache = _plan_cache_totals(result)
            if cache is not None:
                hits, misses, ratio = cache
                print(
                    f"{'':<16} plan cache: {hits} hit(s) / {misses} miss(es)   "
                    f"hit ratio {ratio:.1%}"
                )
            if args.events:
                # one file per policy when replaying several
                path = (
                    args.events
                    if len(names) == 1
                    else f"{args.events}.{name}"
                )
                count = save_events_jsonl(result.events, path)
                print(f"{count} events written to {path} (see: repro obs report)")
    finally:
        if args.trace:
            obs.tracer().close()
            obs.tracer().save(args.trace)
            print(f"span trace written to {args.trace}")
            obs.reset()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        return _run_obs(args, obs)
    except FileNotFoundError as err:
        print(f"error: no such file: {err.filename}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


def _is_telemetry_file(path: str) -> bool:
    """True when the first JSON line looks like a RunLog record rather
    than a span-trace record (telemetry kinds vs span/instant)."""
    import json

    from repro.utils.telemetry import _ALLOWED_KINDS

    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                return False
            return isinstance(row, dict) and row.get("kind") in _ALLOWED_KINDS
    return False


def _summarize_telemetry(path: str) -> int:
    from repro.utils.telemetry import RunLog

    log = RunLog.load(path)
    if log.truncated:
        print(f"warning: {path} has a truncated trailing line (skipped)")
    kinds = {}
    for record in log.records:
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    print(f"{len(log)} telemetry records from {path} "
          f"({', '.join(f'{k}: {v}' for k, v in sorted(kinds.items()))})")
    losses = log.loss_series()
    if losses:
        print(f"loss: first {losses[0]:.6f}  last {losses[-1]:.6f}  over {len(losses)} steps")
    for record in log.of_kind("scale_event"):
        print(f"  step {record.step}: scaled to {record.data.get('gpus')}")
    for record in log.of_kind("profile"):
        summary = record.data.get("summary", {})
        workers = summary.get("workers", {})
        print(f"  step {record.step}: profile over {summary.get('windows', 0)} windows, "
              f"{len(workers)} workers, {len(summary.get('stragglers', []))} straggler events")
        for wid, w in sorted(workers.items()):
            print(f"    worker {wid} ({w.get('gpu')}): "
                  f"p50 {w.get('p50_s', 0.0):.6f}s  p99 {w.get('p99_s', 0.0):.6f}s")
        observed = summary.get("calibration", {}).get("observed", {})
        if observed:
            print(f"    calibrated capability: "
                  f"{ {k: round(v, 3) for k, v in sorted(observed.items())} }")
    return 0


def _run_obs(args: argparse.Namespace, obs) -> int:
    if args.obs_command == "summarize":
        if _is_telemetry_file(args.trace_file):
            return _summarize_telemetry(args.trace_file)
        tracer = obs.SpanTracer.load(args.trace_file)
        if getattr(tracer, "truncated", False):
            print(f"warning: {args.trace_file} has a truncated trailing line (skipped)")
        spans = [r for r in tracer.records if r["kind"] == "span"]
        instants = [r for r in tracer.records if r["kind"] == "instant"]
        if not spans and not instants:
            print(f"no records in {args.trace_file}")
            return 0
        print(f"{len(spans)} spans, {len(instants)} instants from {args.trace_file}")
        print(tracer.flame_summary(limit=args.limit))
        return 0

    if args.obs_command == "profile":
        import json

        from repro.obs.profiler import ProfilerConfig, profile_from_trace

        tracer = obs.SpanTracer.load(args.trace_file)
        if getattr(tracer, "truncated", False):
            print(f"warning: {args.trace_file} has a truncated trailing line (skipped)")
        if not tracer.records:
            print(f"no records in {args.trace_file}")
            return 0
        static = None
        if args.workload:
            from repro.hw import static_capability
            from repro.models import get_workload

            static = static_capability(get_workload(args.workload))
        config = ProfilerConfig(
            window_size=args.window,
            straggler_factor=args.factor,
            straggler_windows=args.consecutive,
        )
        profiler = profile_from_trace(
            tracer.records, config=config, static_capability=static
        )
        if not profiler.windows_closed and not profiler.observed_capability:
            raise ValueError(
                f"{args.trace_file}: no worker.local_step spans to profile "
                "(produce one with: repro train <workload> --trace PATH)"
            )
        print(profiler.describe())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(profiler.summary(), fh, indent=2, sort_keys=True)
            print(f"profile summary written to {args.json}")
        return 0

    if args.obs_command == "report":
        import json

        from repro.obs.report import (
            ClusterUtilizationReport,
            events_from_trace,
            load_events_jsonl,
        )

        rows = load_events_jsonl(args.events_file)
        if rows and rows[0].get("kind") in ("span", "instant"):
            rows = events_from_trace(rows)  # a span trace: use sched instants
        if not rows:
            raise ValueError(
                f"{args.events_file}: no simulator events found "
                "(produce a log with: repro trace-sim --events PATH)"
            )
        report = ClusterUtilizationReport.from_events(rows)
        print(report.to_text())
        if args.html:
            with open(args.html, "w", encoding="utf-8") as fh:
                fh.write(report.to_html(title=f"Cluster utilization — {args.events_file}"))
            print(f"HTML report written to {args.html}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report.summary(), fh, indent=2, sort_keys=True)
            print(f"JSON summary written to {args.json}")
        return 0

    if args.obs_command == "export-trace":
        tracer = obs.SpanTracer.load(args.trace_file)
        out = args.output or (args.trace_file + ".chrome.json")
        tracer.save_chrome_trace(out)
        print(f"{len(tracer)} records exported to {out} "
              f"(load in chrome://tracing or https://ui.perfetto.dev)")
        return 0

    if args.obs_command == "diff-audit":
        a = obs.AuditTrail.load(args.audit_a)
        b = obs.AuditTrail.load(args.audit_b)
        for path, trail in ((args.audit_a, a), (args.audit_b, b)):
            if trail.truncated:
                print(f"warning: {path} has a truncated trailing line (skipped)")
        diff = obs.diff_audits(a, b)
        print(f"A: {len(a)} steps ({args.audit_a})")
        print(f"B: {len(b)} steps ({args.audit_b})")
        print(diff.describe())
        return 0 if diff.identical else 4

    if args.obs_command == "postmortem":
        from repro.obs import flightrec

        bundle = flightrec.load_bundle(args.bundle)
        print(flightrec.render_bundle(bundle, tail=args.tail))
        return 0

    if args.obs_command == "why":
        from repro.obs import flightrec
        from repro.obs.forensics import analyze_divergence, trail_from_bundle

        def _load_side(path):
            """A side is either an audit-trail JSONL or a postmortem bundle."""
            if flightrec.is_bundle_file(path):
                bundle = flightrec.load_bundle(path)
                return trail_from_bundle(bundle), bundle.get("events") or []
            trail = obs.AuditTrail.load(path)
            if trail.truncated:
                print(f"warning: {path} has a truncated trailing line (skipped)")
            return trail, None

        trail_a, events_a = _load_side(args.trail_a)
        trail_b, events_b = _load_side(args.trail_b)
        report = analyze_divergence(
            trail_a, trail_b, events_a=events_a, events_b=events_b, window=args.window
        )
        print(f"A: {len(trail_a)} steps ({args.trail_a})")
        print(f"B: {len(trail_b)} steps ({args.trail_b})")
        print(report.describe())
        return 0 if report.identical else 4

    raise AssertionError(f"unhandled obs subcommand {args.obs_command!r}")


def _cmd_colocation(args: argparse.Namespace) -> int:
    from repro.sched import simulate_colocation

    stats = simulate_colocation(
        total_gpus=args.gpus, seed=args.seed, training_demand_gpus=args.training_demand
    )
    day1_alloc = stats.alloc_ratio(0, args.gpus)
    day2_alloc = stats.alloc_ratio(1, args.gpus)
    day1_util = stats.mean_utilization(0)
    day2_util = stats.mean_utilization(1)
    print(f"alloc ratio : {day1_alloc:.1%} -> {day2_alloc:.1%}")
    print(f"utilization : {day1_util:.1%} -> {day2_util:.1%}")
    print(f"preemptions : {stats.preemptions_day2}   failures: {stats.failures_day2}")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.core.selftest import run_selftest

    report = run_selftest()
    for line in report.lines():
        print(line)
    print("\nself-test", "PASSED" if report.passed else "FAILED")
    return 0 if report.passed else 3


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.core import scan_model
    from repro.models import get_workload
    from repro.utils.rng import RNGBundle

    spec = get_workload(args.workload)
    report = scan_model(spec.build_model(RNGBundle(0)))
    if report.d2_recommended:
        print(f"{args.workload}: no vendor-kernel reliance; D2 is cheap "
              f"(heterogeneous GPUs recommended)")
    else:
        print(f"{args.workload}: relies on vendor conv kernels in "
              f"{len(report.vendor_kernel_modules)} modules; D2 costs ~3.4x "
              f"(homogeneous GPUs recommended)")
        for name in report.vendor_kernel_modules:
            print(f"  - {name}")
    return 0


def _bench_areas(args: argparse.Namespace) -> List[str]:
    from repro.obs.bench import AREAS

    if not args.area or "all" in args.area:
        return list(AREAS)
    return list(dict.fromkeys(args.area))  # dedupe, keep order


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    areas = _bench_areas(args)

    if args.bench_command == "run":
        results = bench.run_benches(
            areas,
            repeats=args.repeats,
            smoke=args.smoke or None,
            directory=args.dir,
            threshold=args.threshold,
        )
        for result in results:
            path = bench.trajectory_path(result.area, args.dir)
            metrics = result.record["metrics"]
            stats = "  ".join(
                f"{name} {s['median']:.6f}{s['unit']} "
                f"(p10 {s['p10']:.6f} p90 {s['p90']:.6f}, n={s['repeats']})"
                for name, s in sorted(metrics.items())
            )
            print(f"{result.area}/{result.record['bench']}: {stats}")
            print(f"  -> appended to {path} "
                  f"({result.record['git_sha']} @ {result.record['timestamp']})")
            for row in result.rows:
                print(f"  {row.describe()}")
        return 0

    if args.bench_command == "compare":
        rows, regressed = _load_gate_rows(bench, areas, args)
        if rows is None:
            return 2
        for row in rows:
            print(row.describe())
        print(f"{len(rows)} metrics: "
              f"{sum(r.status == 'improved' for r in rows)} improved, "
              f"{sum(r.status == 'flat' for r in rows)} flat, "
              f"{len(regressed)} regressed, "
              f"{sum(r.status == 'baseline' for r in rows)} baseline")
        return 0

    if args.bench_command == "gate":
        rows, regressed = _load_gate_rows(bench, areas, args)
        if rows is None:
            return 2
        for row in rows:
            print(row.describe())
        if regressed:
            print(f"bench gate: FAILED — {len(regressed)} regressed metric(s)")
            return 5
        print(f"bench gate: ok ({len(rows)} metrics within tolerance)")
        return 0

    raise AssertionError(f"unhandled bench subcommand {args.bench_command!r}")


def _load_gate_rows(bench, areas, args):
    """Shared compare/gate loader; ``(None, None)`` on missing trajectories."""
    try:
        return bench.gate_trajectories(
            areas, directory=args.dir, threshold=args.threshold
        )
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return None, None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EasyScale reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="show the Table-1 model zoo")

    train = sub.add_parser("train", help="run an elastic EasyScale job")
    train.add_argument("workload")
    train.add_argument("--ests", type=int, default=4, help="number of logical workers")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--lr", type=float, default=0.05)
    train.add_argument("--samples", type=int, default=256)
    train.add_argument("--steps-per-stage", type=int, default=4)
    train.add_argument(
        "--schedule",
        nargs="+",
        default=["4xV100", "2xV100", "1xV100"],
        help="GPU stages, e.g. 4xV100 2xV100 1xV100+2xP100",
    )
    train.add_argument("--determinism", default="D1", choices=["D0", "D1", "D0+D2", "D1+D2"])
    train.add_argument("--backend", default="serial",
                       choices=["serial", "process", "pool"],
                       help="execution backend: 'serial' steps workers "
                            "in-process; 'process' (alias 'pool') runs each "
                            "worker's compute in a persistent process pool "
                            "(bitwise-identical results; see docs/EXECUTION.md)")
    train.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool size for --backend process "
                            "(default: min(4, CPU count))")
    train.add_argument("--transport", default="shm", choices=["shm", "pickle"],
                       help="gradient/state transport for --backend process: "
                            "'shm' (default) moves state broadcast and "
                            "gradient buckets through shared-memory slabs "
                            "with overlapped per-bucket collection; 'pickle' "
                            "is the result-queue path (both bitwise-identical)")
    train.add_argument("--commit-every", type=int, default=1, metavar="K",
                       help="commit cadence (batches_per_commit): flush "
                            "RNG/BN-journal write-back into the parent every "
                            "K steps instead of per step; checkpoints, eval, "
                            "and drive boundaries always flush (default: 1)")
    train.add_argument("--verify", action="store_true", help="compare bitwise vs DDP")
    train.add_argument("--trace", metavar="PATH", default=None,
                       help="record a span trace (JSONL) of the run")
    train.add_argument("--audit", metavar="PATH", default=None,
                       help="record a per-step determinism audit trail (JSONL)")
    train.add_argument("--profile", action="store_true",
                       help="attach the online profiler (windowed step times, "
                            "stragglers, capability calibration); observation "
                            "only — results stay bitwise identical")
    train.add_argument("--telemetry", metavar="PATH", default=None,
                       help="stream a RunLog (JSONL) of steps/scale events; "
                            "with --profile the final profiler summary is "
                            "included (view with: repro obs summarize PATH)")
    train.add_argument("--faults", metavar="PLAN", default=None,
                       help="train through the resilience controller under "
                            "this fault plan JSON (see: repro faults gen); "
                            "the first --schedule stage is the starting "
                            "pool, and --verify compares bitwise against "
                            "the fault-free run")
    train.add_argument("--hosts", metavar="PLAN", default=None,
                       help="train through the membership controller under "
                            "this membership plan JSON (see: repro "
                            "membership gen); the plan's initial roster is "
                            "the starting pool (--schedule is ignored), "
                            "--faults may run alongside, and --verify "
                            "compares bitwise against the static run")

    trace = sub.add_parser("trace-sim", help="replay a job trace")
    trace.add_argument("--policy", default="all", choices=["yarn", "homo", "heter", "all"])
    trace.add_argument("--jobs", type=int, default=30)
    trace.add_argument("--seed", type=int, default=4)
    trace.add_argument("--interarrival", type=float, default=45.0)
    trace.add_argument("--duration", type=float, default=1200.0)
    trace.add_argument("--shape", default="bursty",
                       choices=["bursty", "diurnal", "heavy-tail"],
                       help="arrival/runtime shape: 'bursty' (Philly-like "
                            "Poisson, default), 'diurnal' (month-scale "
                            "day/night cosine intensity; --interarrival is "
                            "ignored, --days sets the horizon), or "
                            "'heavy-tail' (Pareto runtimes, production "
                            "demand mix)")
    trace.add_argument("--days", type=float, default=30.0,
                       help="horizon in days for --shape diurnal "
                            "(default 30)")
    trace.add_argument("--cluster-gpus", type=int, default=None,
                       help="simulate a production_cluster of this many "
                            "GPUs (e.g. 3000) instead of the 64-GPU "
                            "microbench cluster")
    trace.add_argument("--trace", metavar="PATH", default=None,
                       help="record the simulator event timeline as a span trace (JSONL)")
    trace.add_argument("--events", metavar="PATH", default=None,
                       help="save the simulator event log (JSONL) for "
                            "'repro obs report' (suffix .<policy> when "
                            "replaying multiple policies)")
    trace.add_argument("--faults", metavar="PLAN", default=None,
                       help="inject a time-triggered fault plan JSON into "
                            "the simulated cluster (preemptions, slowdowns; "
                            "see repro.faults.random_sim_plan)")
    trace.add_argument("--calibrate", metavar="PATH", default=None,
                       help="JSON file with per-GPU-type capability scale "
                            "factors, e.g. {\"scale\": {\"t4\": 0.8}} — "
                            "profiler-measured corrections to the static "
                            "capability table")
    trace.add_argument("--core", default="heap",
                       choices=["heap", "batched", "reference"],
                       help="discrete-event core: 'heap' (single priority "
                            "queue, default), 'batched' (coalesced event "
                            "drain + vectorized job advance + incremental "
                            "arbitration — the production-scale fast path), "
                            "or 'reference' (the linear candidate scan) — "
                            "all three produce byte-identical event streams")

    faults = sub.add_parser(
        "faults", help="deterministic fault injection (plan generation, replay)"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    gen = faults_sub.add_parser(
        "gen", help="generate a seeded random fault plan (JSON)"
    )
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--steps", type=int, default=12,
                     help="horizon in global steps (default 12)")
    gen.add_argument("--gpus", type=int, default=4,
                     help="GPUs in the target pool — bounds how much "
                          "capacity the plan may take away (default 4)")
    gen.add_argument("--events", type=int, default=4,
                     help="maximum events in the plan (default 4)")
    gen.add_argument("--out", metavar="PATH", default="fault_plan.json",
                     help="output path (default fault_plan.json)")
    gen.add_argument("--note", default=None,
                     help="free-text note stored in the plan")

    replay = faults_sub.add_parser(
        "replay",
        help="prove bitwise recovery: run the fault-free reference and a "
             "resilience-controller run under a plan, then diff their "
             "determinism audit trails (exit 0 identical, 4 divergent)",
    )
    replay.add_argument("--plan", required=True, metavar="PATH",
                        help="fault plan JSON (from: repro faults gen)")
    replay.add_argument("--workload", default="resnet18")
    replay.add_argument("--ests", type=int, default=4)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--batch-size", type=int, default=8)
    replay.add_argument("--lr", type=float, default=0.05)
    replay.add_argument("--samples", type=int, default=64)
    replay.add_argument("--steps", type=int, default=12,
                        help="global steps to train (default 12)")
    replay.add_argument("--gpus", default="2xV100+2xT4",
                        help="GPU pool, e.g. 2xV100+2xT4 (default)")
    replay.add_argument("--determinism", default="D1+D2",
                        choices=["D0", "D1", "D0+D2", "D1+D2"],
                        help="heterogeneous pools need D2 for bitwise "
                             "identity across recoveries (default D1+D2)")
    replay.add_argument("--snapshot-interval", type=int, default=4,
                        help="periodic checkpoint interval in steps (default 4)")
    replay.add_argument("--audit", metavar="PREFIX", default=None,
                        help="also write PREFIX.ref.jsonl and "
                             "PREFIX.fault.jsonl audit trails")
    replay.add_argument("--contrast", action="store_true",
                        help="instead of the audit diff, run the four-way "
                             "contrast against a checkpoint-restart elastic "
                             "baseline (shows the baseline diverging)")

    membership = sub.add_parser(
        "membership",
        help="cluster membership scenarios (plan generation, bitwise replay)",
    )
    membership_sub = membership.add_subparsers(
        dest="membership_command", required=True
    )

    mgen = membership_sub.add_parser(
        "gen", help="generate a seeded membership plan (JSON)"
    )
    mgen.add_argument("--seed", type=int, default=0)
    mgen.add_argument("--steps", type=int, default=12,
                      help="horizon in global steps (default 12)")
    mgen.add_argument("--events", type=int, default=4,
                      help="maximum host events in the plan (default 4)")
    mgen.add_argument("--rolling", type=int, default=None, metavar="HOSTS",
                      help="instead of random churn, emit a rolling-upgrade "
                           "plan draining all but one of HOSTS single-V100 "
                           "hosts, --max-unavailable at a time")
    mgen.add_argument("--max-unavailable", type=int, default=1,
                      help="hosts drained per wave with --rolling (default 1)")
    mgen.add_argument("--out", metavar="PATH", default="membership_plan.json",
                      help="output path (default membership_plan.json)")
    mgen.add_argument("--note", default=None,
                      help="free-text note stored in the plan")

    mreplay = membership_sub.add_parser(
        "replay",
        help="prove bitwise membership: run the static reference on the "
             "plan's initial roster and a membership-controller run under "
             "the plan, then diff their determinism audit trails "
             "(exit 0 identical, 4 divergent)",
    )
    mreplay.add_argument("--plan", required=True, metavar="PATH",
                         help="membership plan JSON (from: repro membership gen)")
    mreplay.add_argument("--workload", default="resnet18")
    mreplay.add_argument("--ests", type=int, default=4)
    mreplay.add_argument("--seed", type=int, default=0)
    mreplay.add_argument("--batch-size", type=int, default=8)
    mreplay.add_argument("--lr", type=float, default=0.05)
    mreplay.add_argument("--samples", type=int, default=64)
    mreplay.add_argument("--steps", type=int, default=12,
                         help="global steps to train (default 12)")
    mreplay.add_argument("--determinism", default="D1+D2",
                         choices=["D0", "D1", "D0+D2", "D1+D2"],
                         help="heterogeneous rosters need D2 for bitwise "
                              "identity across reconfigurations (default D1+D2)")
    mreplay.add_argument("--snapshot-interval", type=int, default=4,
                         help="periodic checkpoint interval in steps (default 4)")
    mreplay.add_argument("--audit", metavar="PREFIX", default=None,
                         help="also write PREFIX.ref.jsonl and "
                              "PREFIX.member.jsonl audit trails")

    colo = sub.add_parser("colocation", help="two-day serving co-location stats")
    colo.add_argument("--gpus", type=int, default=3000)
    colo.add_argument("--seed", type=int, default=2021)
    colo.add_argument("--training-demand", type=int, default=500)

    scan = sub.add_parser("scan", help="D2-eligibility scan for a workload")
    scan.add_argument("workload")

    sub.add_parser("self-test", help="verify the bitwise guarantee on this machine")

    obs_parser = sub.add_parser("obs", help="observability tools (traces, audits)")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    summarize = obs_sub.add_parser(
        "summarize", help="flamegraph-style summary of a span trace JSONL"
    )
    summarize.add_argument("trace_file")
    summarize.add_argument("--limit", type=int, default=None,
                           help="show at most N span paths")

    export = obs_sub.add_parser(
        "export-trace", help="convert a span trace JSONL to Chrome trace_event JSON"
    )
    export.add_argument("trace_file")
    export.add_argument("-o", "--output", default=None,
                        help="output path (default: <trace_file>.chrome.json)")

    diff = obs_sub.add_parser(
        "diff-audit", help="locate the first divergent step between two audit trails"
    )
    diff.add_argument("audit_a")
    diff.add_argument("audit_b")

    postmortem = obs_sub.add_parser(
        "postmortem", help="render a flight-recorder postmortem bundle"
    )
    postmortem.add_argument("bundle", help="postmortem-<step>.json written on crash")
    postmortem.add_argument("--tail", type=int, default=20,
                            help="show the last N ring events (default 20)")

    why = obs_sub.add_parser(
        "why",
        help="divergence root-cause forensics over two audit trails "
             "(or postmortem bundles); exit 0 identical, 4 diverged",
    )
    why.add_argument("trail_a", help="audit-trail JSONL or postmortem bundle")
    why.add_argument("trail_b", help="audit-trail JSONL or postmortem bundle")
    why.add_argument("--window", type=int, default=8,
                     help="steps before the divergence to walk back (default 8)")

    profile = obs_sub.add_parser(
        "profile",
        help="replay a span trace through the online profiler "
             "(per-worker p50/p99, stragglers, capability calibration)",
    )
    profile.add_argument("trace_file")
    profile.add_argument("--workload", default=None,
                         help="normalize against this workload's static "
                              "capability table (heterogeneous-aware "
                              "straggler detection)")
    profile.add_argument("--window", type=int, default=8,
                         help="steps per profiling window (default 8)")
    profile.add_argument("--factor", type=float, default=1.5,
                         help="straggler threshold vs peer median (default 1.5)")
    profile.add_argument("--consecutive", type=int, default=3,
                         help="consecutive slow windows before flagging (default 3)")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="also write the JSON profile summary")

    report = obs_sub.add_parser(
        "report",
        help="cluster utilization report (idle GPU-seconds, queueing delay, "
             "per-job allocation timelines) from a trace-sim event log",
    )
    report.add_argument("events_file")
    report.add_argument("--html", metavar="PATH", default=None,
                        help="also write a self-contained HTML report")
    report.add_argument("--json", metavar="PATH", default=None,
                        help="also write the JSON summary")

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark trajectories and the regression gate "
             "(BENCH_<area>.json; see docs/BENCHMARKS.md)",
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)

    def _bench_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--area", action="append", default=None,
                       choices=["sched", "parallel", "determinism", "dessim", "all"],
                       help="bench area (repeatable; default all)")
        p.add_argument("--dir", metavar="PATH", default=None,
                       help="trajectory directory (default: repo root, or "
                            "$REPRO_BENCH_DIR)")
        p.add_argument("--threshold", type=float, default=0.30,
                       help="relative regression tolerance before noise "
                            "widening (default 0.30)")

    bench_run = bench_sub.add_parser(
        "run", help="time the built-in benches and append trajectory records"
    )
    _bench_common(bench_run)
    bench_run.add_argument("--repeats", type=int, default=5,
                           help="samples per metric (default 5; medians and "
                                "p10/p90 are computed over these)")
    bench_run.add_argument("--smoke", action="store_true",
                           help="reduced problem sizes (also via "
                                "REPRO_BENCH_SMOKE=1); records are keyed by "
                                "params so smoke never gates against full")

    bench_compare = bench_sub.add_parser(
        "compare", help="latest-vs-previous verdict for every recorded metric"
    )
    _bench_common(bench_compare)

    bench_gate = bench_sub.add_parser(
        "gate",
        help="CI gate: exit 5 if any metric regressed beyond tolerance, "
             "2 if no trajectory exists, 0 otherwise",
    )
    _bench_common(bench_gate)

    return parser


COMMANDS = {
    "list-workloads": _cmd_list_workloads,
    "train": _cmd_train,
    "trace-sim": _cmd_trace_sim,
    "faults": _cmd_faults,
    "membership": _cmd_membership,
    "colocation": _cmd_colocation,
    "scan": _cmd_scan,
    "self-test": _cmd_selftest,
    "obs": _cmd_obs,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
