"""EasyScale reproduction (SC '23): elastic training with consistent
accuracy and improved utilization on (simulated) GPUs.

Public API tour
---------------
- :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — the
  NumPy-backed training substrate (autograd, layers, optimizers) with a
  device-dialect kernel registry.
- :mod:`repro.data` — synthetic datasets, virtual-rank sampling, shared
  data workers with the Fig. 7 queuing buffer.
- :mod:`repro.models` — the eight Table-1 workloads, scaled down.
- :mod:`repro.hw` — simulated V100/P100/T4 devices, memory and timing
  models, cluster inventories.
- :mod:`repro.comm` / :mod:`repro.ddp` — ring all-reduce with faithful
  float32 association, gradient bucketing, and the DDP baseline.
- :mod:`repro.elastic` — TorchElastic-like and Pollux-like baselines.
- :mod:`repro.core` — EasyScale itself: ESTs, D0/D1/D2 determinism,
  ElasticDDP, on-demand checkpoints, the elastic engine.
- :mod:`repro.sched` — Eq. (1) performance model, companion plan DB,
  intra-/inter-job schedulers, trace and co-location simulators.
- :mod:`repro.obs` — the unified observability layer: span tracing
  (Chrome-trace export), a metrics registry, and the per-step
  determinism audit trail, all behind ``obs.configure(enabled=...)``.

Quickstart::

    from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
    from repro.models import get_workload
    from repro.optim import SGD
    from repro.hw import V100

    spec = get_workload("resnet18")
    engine = EasyScaleEngine(
        spec,
        spec.build_dataset(512, seed=1),
        EasyScaleJobConfig(num_ests=4, seed=1),
        lambda m: SGD(m.named_parameters(), lr=0.05, momentum=0.9),
        WorkerAssignment.balanced([V100] * 4, 4),
    )
    engine.train_steps(10)
    engine = engine.reconfigure(WorkerAssignment.balanced([V100], 4))  # scale in
    engine.train_steps(10)  # bitwise identical to uninterrupted training
"""

__version__ = "1.0.0"
