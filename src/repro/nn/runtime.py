"""Framework-level implicit runtime state: the current RNG bundle.

PyTorch's dropout draws from a process-global generator; the paper calls
this out as one of the implicit framework states that must be captured for
determinism.  We model it as a thread-local "current RNG bundle" that the
training harness (a DDP worker or an EasyScale worker executing an EST)
installs before running a mini-batch.  Layers that consume randomness
(Dropout) read it here, so the randomness an EST sees is exactly the
randomness recorded in its context.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.utils.rng import RNGBundle


class _RngStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[RNGBundle] = []


_STACK = _RngStack()


class _BNJournalStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[list] = []


_BN_STACK = _BNJournalStack()


def current_bn_journal() -> Optional[list]:
    """The BatchNorm-stats journal installed by :func:`collect_bn_stats`.

    BatchNorm running statistics are *implicit framework state* (§3.3).  In
    a data-parallel step every logical worker computes its own batch stats;
    to keep the resulting buffers independent of the physical execution
    interleaving, training harnesses install a journal: BN layers append
    ``(layer, mean, unbiased_var)`` instead of mutating their buffers, and
    the harness folds the entries in **virtual-rank order** at the end of
    the global step.
    """
    if _BN_STACK.stack:
        return _BN_STACK.stack[-1]
    return None


@contextmanager
def collect_bn_stats() -> Iterator[list]:
    """Divert BatchNorm buffer updates into a journal for deferred folding."""
    journal: list = []
    _BN_STACK.stack.append(journal)
    try:
        yield journal
    finally:
        popped = _BN_STACK.stack.pop()
        assert popped is journal, "BN journal stack corrupted"


def current_rng(required: bool = True) -> Optional[RNGBundle]:
    """The RNG bundle installed by the innermost :func:`use_rng` scope."""
    if _STACK.stack:
        return _STACK.stack[-1]
    if required:
        raise RuntimeError(
            "no RNG bundle installed; wrap training steps in `with use_rng(bundle):`"
        )
    return None


@contextmanager
def use_rng(bundle: RNGBundle) -> Iterator[RNGBundle]:
    """Install ``bundle`` as the framework RNG for the scope."""
    _STACK.stack.append(bundle)
    try:
        yield bundle
    finally:
        popped = _STACK.stack.pop()
        assert popped is bundle, "RNG stack corrupted"
