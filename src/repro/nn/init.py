"""Seeded parameter initialization.

Initialization draws from an explicit :class:`~repro.utils.rng.RNGBundle`
(framework stream), never a hidden global, so that model construction is a
pure function of the job seed — the D0 prerequisite that "the random seeds
of RNGs are fixed at the beginning of training".
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import RNGBundle


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape[1:])) or 1
    return fan_in, fan_out


def kaiming_uniform(rng: RNGBundle, shape: Tuple[int, ...], a: float = math.sqrt(5)) -> np.ndarray:
    """He/Kaiming uniform init (PyTorch's default for Linear/Conv weights)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(shape, -bound, bound)


def uniform_fan_in_bias(rng: RNGBundle, shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
    """PyTorch's default bias init: U(-1/sqrt(fan_in), +1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(shape, -bound, bound)


def xavier_uniform(rng: RNGBundle, shape: Tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(shape, -bound, bound)


def normal_(rng: RNGBundle, shape: Tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Truncated-free normal init (transformer embedding convention)."""
    return rng.normal(shape, 0.0, std)
