"""Neural-network layer library (the reproduction's ``torch.nn``)."""

from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadAttention,
    ReLU,
    Sigmoid,
    TransformerEncoderLayer,
)
from repro.nn.loss import bce_with_logits, cross_entropy, mse_loss, smooth_l1
from repro.nn.runtime import collect_bn_stats, current_bn_journal, current_rng, use_rng

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "MultiHeadAttention",
    "ReLU",
    "Sigmoid",
    "TransformerEncoderLayer",
    "bce_with_logits",
    "cross_entropy",
    "mse_loss",
    "smooth_l1",
    "current_rng",
    "use_rng",
    "collect_bn_stats",
    "current_bn_journal",
]
