"""Neural-network layers over the autograd engine.

Every operator class the paper's D0/D2 analysis mentions appears here:

- ``Linear`` / ``Conv2d`` → registry GEMM (vendor dialect vs. D2 agnostic);
- ``BatchNorm2d`` → *implicit framework state* (running statistics buffers);
- ``Dropout`` → framework RNG stream consumer;
- ``Embedding`` → atomic-vs-deterministic scatter-add backward;
- ``MultiHeadAttention`` / ``LayerNorm`` → transformer workloads
  (Bert / Electra / SwinTransformer in Table 1).

Layers whose math is a GEMM carry ``uses_vendor_kernels = True``; the
D2-eligibility scanner (:func:`repro.core.determinism.scan_model`) walks the
module tree looking at this flag — the reproduction of "EasyScale
automatically analyzes a DL model by scanning the PyTorch nn.Module".
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.init import kaiming_uniform, normal_, uniform_fan_in_bias, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.runtime import current_bn_journal, current_rng
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class Linear(Module):
    """Affine map ``y = x W^T + b`` through the registry GEMM."""

    uses_vendor_kernels = True

    def __init__(self, in_features: int, out_features: int, rng: RNGBundle, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform(rng, (out_features, in_features)))
        if bias:
            self.bias = Parameter(uniform_fan_in_bias(rng, (out_features,), in_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (im2col + registry GEMM), with grouped support."""

    uses_vendor_kernels = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: RNGBundle,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_uniform(rng, shape))
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.bias = Parameter(uniform_fan_in_bias(rng, (out_channels,), fan_in)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups
        )


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) with tracked running statistics.

    The running mean/var buffers are the canonical example of implicit
    framework state (§3.3): they are updated as a side effect of the forward
    pass and must ride along in checkpoints for bitwise restarts.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.asarray(0, dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = ops.mean_over(x, (0, 2, 3), keepdims=True)
            centered = x - mean
            var = ops.mean_over(centered * centered, (0, 2, 3), keepdims=True)
            n = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var.data.reshape(-1) * (n / max(n - 1, 1))
            journal = current_bn_journal()
            if journal is not None:
                # data-parallel harness defers folding to virtual-rank order
                journal.append((self, mean.data.reshape(-1).copy(), unbiased.copy()))
            else:
                self.fold_stats(mean.data.reshape(-1), unbiased)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            centered = x - mean
        inv_std = (var + self.eps) ** -0.5
        w = self.weight.reshape(1, self.num_features, 1, 1)
        b = self.bias.reshape(1, self.num_features, 1, 1)
        return centered * inv_std * w + b

    def fold_stats(self, batch_mean: np.ndarray, batch_var_unbiased: np.ndarray) -> None:
        """Apply one momentum update of the running statistics."""
        self._set_buffer(
            "running_mean",
            ((1 - self.momentum) * self.running_mean + self.momentum * batch_mean).astype(np.float32),
        )
        self._set_buffer(
            "running_var",
            ((1 - self.momentum) * self.running_var + self.momentum * batch_var_unbiased).astype(np.float32),
        )
        self._set_buffer("num_batches_tracked", self.num_batches_tracked + 1)


class BatchNorm1d(Module):
    """Batch normalization over (N,) for (N, C) inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            n = x.shape[0]
            unbiased = var.data.reshape(-1) * (n / max(n - 1, 1))
            journal = current_bn_journal()
            if journal is not None:
                journal.append((self, mean.data.reshape(-1).copy(), unbiased.copy()))
            else:
                self.fold_stats(mean.data.reshape(-1), unbiased)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
            centered = x - mean
        inv_std = (var + self.eps) ** -0.5
        return centered * inv_std * self.weight + self.bias

    def fold_stats(self, batch_mean: np.ndarray, batch_var_unbiased: np.ndarray) -> None:
        """Apply one momentum update of the running statistics."""
        self._set_buffer(
            "running_mean",
            ((1 - self.momentum) * self.running_mean + self.momentum * batch_mean).astype(np.float32),
        )
        self._set_buffer(
            "running_var",
            ((1 - self.momentum) * self.running_var + self.momentum * batch_var_unbiased).astype(np.float32),
        )


class LayerNorm(Module):
    """Layer normalization over the trailing dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        return centered * (var + self.eps) ** -0.5 * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; consumes the thread-installed framework RNG."""

    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        return ops.dropout(x, self.p, current_rng(), training=True)


class Embedding(Module):
    """Token/ID embedding with policy-dependent scatter-add backward."""

    uses_vendor_kernels = False

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: RNGBundle) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(normal_(rng, (num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.embedding(self.weight, indices)


class ReLU(Module):
    """Elementwise max(x, 0)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Tanh-approximation GELU (BERT convention)."""

    def forward(self, x: Tensor) -> Tensor:
        c = math.sqrt(2.0 / math.pi)
        inner = (x + x * x * x * 0.044715) * c
        return x * 0.5 * (inner.tanh() + 1.0)


class Sigmoid(Module):
    """Elementwise logistic function."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Collapse all dims after the batch dim."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.flatten(x)


class MaxPool2d(Module):
    """Spatial max pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class MultiHeadAttention(Module):
    """Standard scaled dot-product multi-head attention."""

    uses_vendor_kernels = True

    def __init__(self, dim: int, num_heads: int, rng: RNGBundle, dropout: float = 0.0) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, 3 * dim, rng.spawn("qkv"))
        self.proj = Linear(dim, dim, rng.spawn("proj"))
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        n, seq, dim = x.shape
        qkv = self.qkv(x)  # (n, seq, 3*dim)
        qkv = qkv.reshape(n, seq, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, n, heads, seq, head_dim)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale  # (n, heads, seq, seq)
        attn = ops.softmax(scores, axis=-1)
        attn = self.dropout(attn)
        out = attn.matmul(v)  # (n, heads, seq, head_dim)
        out = out.transpose(0, 2, 1, 3).reshape(n, seq, dim)
        return self.proj(out)


class TransformerEncoderLayer(Module):
    """Pre-LN transformer block (attention + MLP with GELU)."""

    def __init__(
        self, dim: int, num_heads: int, mlp_ratio: float, rng: RNGBundle, dropout: float = 0.1
    ) -> None:
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng.spawn("attn"), dropout=dropout)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden, rng.spawn("fc1"))
        self.act = GELU()
        self.drop = Dropout(dropout)
        self.fc2 = Linear(hidden, dim, rng.spawn("fc2"))

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        h = self.fc2(self.drop(self.act(self.fc1(self.norm2(x)))))
        return x + h
