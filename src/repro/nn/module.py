"""Module system: parameter/buffer registration and state dicts.

Mirrors ``torch.nn.Module`` closely enough that the paper's mechanisms map
one-to-one:

- **parameters** are learnable tensors shared by all ESTs within a global
  step (one replica per EasyScale worker, never swapped — §3.2);
- **buffers** are the *implicit framework states* the paper calls out
  (BatchNorm running statistics): not learnable, but they must travel with
  checkpoints or determinism breaks;
- ``state_dict`` / ``load_state_dict`` round-trip both, bitwise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as learnable state of a Module."""

    def __init__(self, data: np.ndarray, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with automatic parameter/submodule/buffer registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of registration."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from child.named_buffers(child_prefix)

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    # ------------------------------------------------------------------
    # mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # grads
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # state dict (bitwise round-trip contract)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {name: None for name, _ in self.named_buffers()}
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)[:5]}, "
                f"unexpected={sorted(unexpected)[:5]}"
            )
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
        self._load_buffers(state, prefix="")

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name in list(self._buffers):
            full = f"{prefix}.{name}" if prefix else name
            self._set_buffer(name, np.asarray(state[full]).copy())
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            child._load_buffers(state, child_prefix)

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class ModuleList(Module):
    """List container that registers children for traversal."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._list))] = module
        self._list.append(module)

    def __iter__(self):
        return iter(self._list)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __len__(self) -> int:
        return len(self._list)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")
