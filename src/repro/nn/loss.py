"""Loss functions.

All reductions route through the registry (via ``Tensor.sum``), so even the
final loss scalar is sensitive to the device dialect — matching the paper's
observation that loss curves diverge bitwise as soon as any layer of the
stack picks a different kernel.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood over integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(f"targets shape {targets.shape} mismatches batch {logits.shape[0]}")
    logp = ops.log_softmax(logits, axis=-1)
    picked = ops.gather_rows(logp, targets)
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float32))
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable binary cross entropy on logits.

    Uses the identity ``max(x,0) - x*y + log(1 + exp(-|x|))``.
    """
    t = Tensor(np.asarray(targets, dtype=np.float32))
    x = logits
    relu_x = x.relu()
    # -|x| built so its gradient (-sign(x)) flows through x
    neg_abs = x * Tensor(np.sign(-x.data))
    log_term = (neg_abs.exp() + 1.0).log()
    return (relu_x - x * t + log_term).mean()


def smooth_l1(pred: Tensor, target: np.ndarray, beta: float = 1.0) -> Tensor:
    """Huber loss (YOLO-style box regression)."""
    t = np.asarray(target, dtype=np.float32)
    diff = pred - Tensor(t)
    abs_diff = np.abs(diff.data)
    quadratic_mask = Tensor((abs_diff < beta).astype(np.float32))
    linear_mask = Tensor((abs_diff >= beta).astype(np.float32))
    quad = diff * diff * (0.5 / beta) * quadratic_mask
    sign = Tensor(np.sign(diff.data))
    lin = (diff * sign - 0.5 * beta) * linear_mask
    return (quad + lin).mean()
