"""Declarative, seeded membership plans: host churn as a replayable input.

The faults package covers the *sudden* half of elasticity; this module is
the *anticipated* half: hosts that announce themselves, warm up, get
blacklisted, drain gracefully during rolling upgrades, or leave with a
spot-reclaim notice.  Like a :class:`~repro.faults.schedule.FaultPlan`, a
:class:`MembershipPlan` is a seeded, JSON-round-trippable schedule of
timed :class:`HostEvent`\\ s over a fixed starting roster of
:class:`HostSpec`\\ s — so any membership scenario can be replayed
exactly (``repro membership replay``) and proven bitwise-identical to
the static run via the determinism audit trail.

Two trigger domains share one event type, mirroring fault plans:

- ``at_step`` — global-step boundaries of a live engine, consumed by the
  :class:`~repro.membership.controller.MembershipController`;
- ``at_time`` — simulated seconds inside the
  :class:`~repro.sched.simulator.ClusterSimulator`.

Event kinds (``magnitude`` is kind-specific, always in *seconds*):

====================  ====================================================
``announce``          a new host appears (CANDIDATE) and starts warming;
                      carries ``gtype``/``slots``; ``magnitude`` is the
                      warm-up duration (0 = ready at the next boundary)
``ready``             explicit promotion WARMING → ACTIVE (health check
                      passed before the warm-up deadline)
``blacklist``         the host is pulled from service; ``magnitude`` is
                      the expiry after which it rejoins (ACTIVE)
``drain``             graceful removal: the in-flight step finishes and
                      an on-demand checkpoint is taken before the host
                      leaves (zero lost work); rolling upgrades queue
                      drains and release at most ``max_unavailable`` at
                      a time
``reclaim_notice``    spot reclaim with notice: the host keeps serving
                      for ``magnitude`` seconds, then drains gracefully
``forceful_remove``   the host vanishes without notice — routed through
                      the abrupt :class:`ResilienceController` recovery
                      path (snapshot fallback)
====================  ====================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.schedule import validate_event_kinds

MEMBERSHIP_FORMAT_VERSION = 1

#: All recognized membership event kinds.
MEMBERSHIP_KINDS = (
    "announce",
    "ready",
    "blacklist",
    "drain",
    "reclaim_notice",
    "forceful_remove",
)

#: Kinds whose capacity change is negotiated at a step boundary (the host
#: side stays reachable long enough for an on-demand checkpoint).
GRACEFUL_MEMBERSHIP_KINDS = frozenset(set(MEMBERSHIP_KINDS) - {"forceful_remove"})

#: Kinds that (eventually) remove the host's capacity.
REMOVAL_KINDS = frozenset({"blacklist", "drain", "reclaim_notice", "forceful_remove"})


@dataclass(frozen=True)
class HostSpec:
    """One host's identity and capability: GPU type and slot count."""

    host_id: str
    gtype: str
    slots: int = 1

    def __post_init__(self) -> None:
        if not self.host_id:
            raise ValueError("host_id must be non-empty")
        if not self.gtype:
            raise ValueError(f"{self.host_id}: gtype must be non-empty")
        object.__setattr__(self, "gtype", self.gtype.lower())
        if self.slots < 1:
            raise ValueError(f"{self.host_id}: slots must be positive")

    def to_state(self) -> Dict[str, Any]:
        return {"host_id": self.host_id, "gtype": self.gtype, "slots": self.slots}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "HostSpec":
        return cls(
            host_id=str(state["host_id"]),
            gtype=str(state["gtype"]),
            slots=int(state.get("slots", 1)),
        )


@dataclass(frozen=True)
class HostEvent:
    """One timed membership event for one host.

    Exactly one of ``at_step`` / ``at_time`` must be set.  ``gtype`` and
    ``slots`` are required for ``announce`` (the host is new) and ignored
    otherwise.  ``magnitude`` is the kind's duration in seconds (warm-up,
    blacklist expiry, reclaim notice).
    """

    kind: str
    host: str
    at_step: Optional[int] = None
    at_time: Optional[float] = None
    gtype: Optional[str] = None
    slots: int = 1
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in MEMBERSHIP_KINDS:
            raise ValueError(
                f"unknown membership kind {self.kind!r}; "
                f"expected one of {MEMBERSHIP_KINDS}"
            )
        if not self.host:
            raise ValueError(f"{self.kind}: host must be non-empty")
        if (self.at_step is None) == (self.at_time is None):
            raise ValueError(
                f"{self.kind}: exactly one of at_step/at_time must be set "
                f"(got at_step={self.at_step}, at_time={self.at_time})"
            )
        if self.at_step is not None and self.at_step < 0:
            raise ValueError(f"{self.kind}: at_step must be non-negative")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"{self.kind}: at_time must be non-negative")
        if self.magnitude < 0:
            raise ValueError(f"{self.kind}: magnitude must be non-negative")
        if self.kind == "announce":
            if not self.gtype:
                raise ValueError(f"announce for {self.host!r} needs a gtype")
            object.__setattr__(self, "gtype", self.gtype.lower())
            if self.slots < 1:
                raise ValueError(f"announce for {self.host!r}: slots must be positive")
        if self.kind in ("blacklist", "reclaim_notice") and self.magnitude <= 0:
            raise ValueError(
                f"{self.kind} for {self.host!r} needs a positive magnitude "
                f"(expiry/notice seconds)"
            )

    # ------------------------------------------------------------------
    @property
    def trigger(self) -> float:
        """Sort key within a plan (step index or sim seconds)."""
        return float(self.at_step if self.at_step is not None else self.at_time)

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {"kind": self.kind, "host": self.host}
        if self.at_step is not None:
            state["at_step"] = self.at_step
        if self.at_time is not None:
            state["at_time"] = self.at_time
        if self.gtype is not None:
            state["gtype"] = self.gtype
            state["slots"] = self.slots
        if self.magnitude:
            state["magnitude"] = self.magnitude
        return state

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "HostEvent":
        return cls(
            kind=str(state["kind"]),
            host=str(state["host"]),
            at_step=int(state["at_step"]) if state.get("at_step") is not None else None,
            at_time=float(state["at_time"]) if state.get("at_time") is not None else None,
            gtype=str(state["gtype"]) if state.get("gtype") is not None else None,
            slots=int(state.get("slots", 1)),
            magnitude=float(state.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class MembershipPlan:
    """A starting host roster plus an ordered schedule of host events.

    ``max_unavailable`` bounds rolling upgrades: at most that many hosts
    may be draining at any decision point; further due drains are
    deferred to later boundaries (the rolling-upgrade knob).
    """

    initial_hosts: Tuple[HostSpec, ...]
    events: Tuple[HostEvent, ...] = ()
    seed: int = 0
    note: str = ""
    max_unavailable: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial_hosts", tuple(self.initial_hosts))
        object.__setattr__(self, "events", tuple(self.events))
        if not self.initial_hosts:
            raise ValueError("membership plan needs at least one initial host")
        if self.max_unavailable < 1:
            raise ValueError("max_unavailable must be positive")
        triggers = [e.trigger for e in self.events]
        if triggers != sorted(triggers):
            raise ValueError("membership plan events must be ordered by trigger")
        known = set()
        for spec in self.initial_hosts:
            if spec.host_id in known:
                raise ValueError(f"duplicate initial host {spec.host_id!r}")
            known.add(spec.host_id)
        for event in self.events:
            if event.kind == "announce":
                if event.host in known:
                    raise ValueError(
                        f"announce for {event.host!r}: host already exists"
                    )
                known.add(event.host)
            elif event.host not in known:
                raise ValueError(
                    f"{event.kind} for {event.host!r}: host was never "
                    f"announced and is not in the initial roster"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    @property
    def step_events(self) -> Tuple[HostEvent, ...]:
        return tuple(e for e in self.events if e.at_step is not None)

    @property
    def time_events(self) -> Tuple[HostEvent, ...]:
        return tuple(e for e in self.events if e.at_time is not None)

    def host_spec(self, host_id: str) -> Optional[HostSpec]:
        """The capability of a host, from the roster or its announce."""
        for spec in self.initial_hosts:
            if spec.host_id == host_id:
                return spec
        for event in self.events:
            if event.kind == "announce" and event.host == host_id:
                return HostSpec(host_id=host_id, gtype=event.gtype, slots=event.slots)
        return None

    def describe(self) -> str:
        lines = [
            f"membership plan (seed {self.seed}, {len(self.initial_hosts)} "
            f"initial host(s), {len(self.events)} event(s), "
            f"max_unavailable={self.max_unavailable})"
        ]
        if self.note:
            lines.append(f"  note: {self.note}")
        for spec in self.initial_hosts:
            lines.append(f"  initial      {spec.host_id:<16} {spec.slots}x{spec.gtype}")
        for event in self.events:
            where = (
                f"step {event.at_step}" if event.at_step is not None
                else f"t={event.at_time:.1f}s"
            )
            extra = ""
            if event.gtype is not None:
                extra = f" {event.slots}x{event.gtype}"
            if event.magnitude:
                extra += f" magnitude={event.magnitude:g}s"
            lines.append(
                f"  {where:>12} {event.kind:<16} {event.host}{extra}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "version": MEMBERSHIP_FORMAT_VERSION,
                "seed": self.seed,
                "note": self.note,
                "max_unavailable": self.max_unavailable,
                "initial_hosts": [h.to_state() for h in self.initial_hosts],
                "events": [e.to_state() for e in self.events],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "membership plan") -> "MembershipPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"malformed membership plan JSON: {err}") from err
        if not isinstance(payload, dict):
            raise ValueError("membership plan must be a JSON object")
        version = payload.get("version", MEMBERSHIP_FORMAT_VERSION)
        if version != MEMBERSHIP_FORMAT_VERSION:
            raise ValueError(f"unsupported membership plan version {version}")
        if "initial_hosts" not in payload:
            raise ValueError("membership plan is missing the 'initial_hosts' list")
        hosts = payload["initial_hosts"]
        if not isinstance(hosts, list):
            raise ValueError("membership plan 'initial_hosts' must be a list")
        events = payload.get("events", [])
        if not isinstance(events, list):
            raise ValueError("membership plan 'events' must be a list")
        validate_event_kinds(events, MEMBERSHIP_KINDS, source=source)
        return cls(
            initial_hosts=tuple(HostSpec.from_state(h) for h in hosts),
            events=tuple(HostEvent.from_state(e) for e in events),
            seed=int(payload.get("seed", 0)),
            note=str(payload.get("note", "")),
            max_unavailable=int(payload.get("max_unavailable", 1)),
        )

    def save(self, path) -> None:
        import os

        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "MembershipPlan":
        import os

        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read(), source=os.fspath(path))


# ----------------------------------------------------------------------
# canned + seeded generation
# ----------------------------------------------------------------------
def rolling_upgrade_plan(
    hosts: Sequence[HostSpec],
    start_step: int = 1,
    max_unavailable: int = 1,
    keep: int = 1,
    note: str = "rolling upgrade",
) -> MembershipPlan:
    """Drain every host except the last ``keep`` in roster order.

    All drains are *due* at ``start_step``; ``max_unavailable`` makes the
    controller release them one wave at a time — the canonical rolling
    upgrade shape.
    """
    hosts = tuple(hosts)
    if keep < 1:
        raise ValueError("a rolling upgrade must keep at least one host")
    if len(hosts) <= keep:
        raise ValueError("nothing to drain: roster is not larger than 'keep'")
    events = tuple(
        HostEvent(kind="drain", host=spec.host_id, at_step=start_step)
        for spec in hosts[: len(hosts) - keep]
    )
    return MembershipPlan(
        initial_hosts=hosts,
        events=events,
        max_unavailable=max_unavailable,
        note=note,
    )


def random_membership_plan(
    seed: int,
    horizon_steps: int,
    initial_hosts: Optional[Sequence[HostSpec]] = None,
    max_events: int = 4,
    note: str = "",
) -> MembershipPlan:
    """Generate a step-triggered membership plan a job survives.

    Deterministic in ``seed``.  Removal events are bounded so at least
    one host is always left serving; events land on steps
    ``1..horizon_steps-1`` (step 0 is left alone so every run has an
    uncorrupted initial snapshot and a non-empty starting pool).
    """
    if horizon_steps < 2:
        raise ValueError("horizon must span at least 2 steps")
    if max_events < 1:
        raise ValueError("max_events must be positive")
    rng = random.Random(seed)
    roster: Tuple[HostSpec, ...] = tuple(
        initial_hosts
        if initial_hosts is not None
        else (
            HostSpec("v100-host0", "v100", 1),
            HostSpec("v100-host1", "v100", 1),
            HostSpec("t4-host0", "t4", 1),
            HostSpec("t4-host1", "t4", 1),
        )
    )
    # only roster hosts receive removal events: an event may sort to an
    # earlier step than an elastic host's announce, and a host gets at
    # most one lifecycle-changing event (no drain of a blacklisted host)
    touched: set = set()
    events: List[HostEvent] = []
    announced = 0
    for _ in range(rng.randint(1, max_events)):
        step = rng.randint(1, horizon_steps - 1)
        kind = rng.choice(MEMBERSHIP_KINDS)
        if kind == "ready":
            kind = "announce"  # ready only makes sense after an announce
        if kind in ("drain", "reclaim_notice", "forceful_remove", "blacklist"):
            # keep at least one roster host serving at all times
            candidates = [s.host_id for s in roster if s.host_id not in touched]
            if len(candidates) <= 1:
                kind = "announce"
            else:
                host = rng.choice(candidates)
                touched.add(host)
                if kind == "reclaim_notice":
                    magnitude = float(rng.choice([15.0, 30.0, 60.0]))
                elif kind == "blacklist":
                    magnitude = float(rng.choice([20.0, 40.0, 80.0]))
                else:
                    magnitude = 0.0
                events.append(
                    HostEvent(kind=kind, host=host, at_step=step, magnitude=magnitude)
                )
                continue
        # announce a fresh elastic host (warm-up in seconds, may be 0)
        host = f"elastic-{seed}-{announced}"
        announced += 1
        events.append(
            HostEvent(
                kind="announce",
                host=host,
                at_step=step,
                gtype=rng.choice(["v100", "t4"]),
                slots=1,
                magnitude=float(rng.choice([0.0, 10.0, 30.0])),
            )
        )
    events.sort(key=lambda e: (e.trigger, e.kind, e.host))
    return MembershipPlan(
        initial_hosts=roster, events=tuple(events), seed=seed, note=note
    )
