"""Per-host lifecycle state machine with validated transitions.

Every host moves through a fixed graph::

    CANDIDATE ──▶ WARMING ──▶ ACTIVE ──▶ DRAINING ──▶ REMOVED
                                │  ▲
                                ▼  │ (expiry)
                              BLACKLISTED ──▶ REMOVED

- ``CANDIDATE`` — announced, capability known, not yet warming;
- ``WARMING`` — provisioning/health-checking; promoted to ``ACTIVE`` by
  an explicit ``ready`` event or when its warm-up deadline passes;
- ``ACTIVE`` — serving capacity;
- ``DRAINING`` — scheduled for graceful removal (in-flight work finishes,
  an on-demand checkpoint is taken, then the host leaves);
- ``BLACKLISTED`` — pulled from service with an expiry, after which it
  rejoins ``ACTIVE``;
- ``REMOVED`` — terminal.

Any edge not in :data:`TRANSITIONS` raises
:class:`InvalidTransitionError` listing the allowed successors — a
malformed plan fails loudly instead of silently corrupting capacity
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

CANDIDATE = "candidate"
WARMING = "warming"
ACTIVE = "active"
DRAINING = "draining"
BLACKLISTED = "blacklisted"
REMOVED = "removed"

#: Every host state.
HOST_STATES = (CANDIDATE, WARMING, ACTIVE, DRAINING, BLACKLISTED, REMOVED)

#: The validated transition graph.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    CANDIDATE: (WARMING, BLACKLISTED, REMOVED),
    WARMING: (ACTIVE, BLACKLISTED, REMOVED),
    ACTIVE: (DRAINING, BLACKLISTED, REMOVED),
    DRAINING: (REMOVED,),
    BLACKLISTED: (ACTIVE, REMOVED),
    REMOVED: (),
}


class InvalidTransitionError(ValueError):
    """A lifecycle edge outside the validated transition graph."""

    def __init__(self, host_id: str, current: str, requested: str) -> None:
        allowed = TRANSITIONS.get(current, ())
        super().__init__(
            f"host {host_id!r}: cannot go {current} -> {requested}; "
            f"allowed from {current}: {allowed or '(terminal)'}"
        )
        self.host_id = host_id
        self.current = current
        self.requested = requested


@dataclass
class Host:
    """Mutable per-host record: identity, capability, lifecycle state."""

    host_id: str
    gtype: str
    slots: int = 1
    state: str = CANDIDATE
    #: sim-seconds deadlines driving automatic transitions (None = unset)
    warm_until: Optional[float] = None
    blacklist_until: Optional[float] = None
    drain_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        self.gtype = self.gtype.lower()
        if self.slots < 1:
            raise ValueError(f"{self.host_id}: slots must be positive")
        if self.state not in HOST_STATES:
            raise ValueError(f"{self.host_id}: unknown state {self.state!r}")

    @property
    def serving(self) -> bool:
        """Whether the host currently contributes capacity."""
        return self.state in (ACTIVE, DRAINING)


class HostRegistry:
    """The roster: hosts by id, with transition validation and history.

    Iteration order is registration order, so capacity derived from the
    registry (worker assignments, pool lists) is deterministic.
    """

    def __init__(self) -> None:
        self._hosts: Dict[str, Host] = {}
        #: (host_id, from_state, to_state) in occurrence order
        self.history: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    def add(self, host: Host) -> Host:
        if host.host_id in self._hosts:
            raise ValueError(f"host {host.host_id!r} already registered")
        self._hosts[host.host_id] = host
        return host

    def get(self, host_id: str) -> Host:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise KeyError(f"unknown host {host_id!r}") from None

    def __contains__(self, host_id: str) -> bool:
        return host_id in self._hosts

    def __iter__(self):
        return iter(self._hosts.values())

    def __len__(self) -> int:
        return len(self._hosts)

    # ------------------------------------------------------------------
    def transition(self, host_id: str, new_state: str) -> Host:
        """Move a host along a validated lifecycle edge."""
        host = self.get(host_id)
        if new_state not in HOST_STATES:
            raise ValueError(f"unknown state {new_state!r}")
        if new_state not in TRANSITIONS[host.state]:
            raise InvalidTransitionError(host_id, host.state, new_state)
        self.history.append((host_id, host.state, new_state))
        host.state = new_state
        return host

    # ------------------------------------------------------------------
    def in_state(self, *states: str) -> List[Host]:
        return [h for h in self._hosts.values() if h.state in states]

    def serving_hosts(self) -> List[Host]:
        return [h for h in self._hosts.values() if h.serving]

    def serving_slots(self) -> int:
        return sum(h.slots for h in self.serving_hosts())

    def capacity_by_type(self) -> Dict[str, int]:
        """Serving slots per (lower-case) GPU type."""
        counts: Dict[str, int] = {}
        for host in self.serving_hosts():
            counts[host.gtype] = counts.get(host.gtype, 0) + host.slots
        return counts
