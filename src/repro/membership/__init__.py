"""repro.membership: cluster membership — the anticipated half of elasticity.

Where :mod:`repro.faults` models failures that *strike*, this subsystem
models hosts that *negotiate*: announce themselves and warm up, drain
gracefully one wave at a time during rolling upgrades, get blacklisted
with an expiry, or leave with a spot-reclaim notice.  Four layers,
composing bottom-up:

- :mod:`repro.membership.plan` — seeded, JSON-round-trippable
  :class:`MembershipPlan`\\ s of timed :class:`HostEvent`\\ s over a
  roster of :class:`HostSpec`\\ s;
- :mod:`repro.membership.lifecycle` — the per-host state machine
  (``CANDIDATE → WARMING → ACTIVE → DRAINING → REMOVED``, plus
  ``BLACKLISTED`` with expiry) with validated transitions;
- :mod:`repro.membership.discovery` — :class:`HostDiscovery` replaying
  a plan's step events into the live engine, and
  :class:`SimMembershipDriver` expanding it into static decision times
  for the cluster simulator's two event cores;
- :mod:`repro.membership.controller` — :class:`MembershipController`
  converting lifecycle edges into scheduler events on top of the
  :class:`~repro.faults.controller.ResilienceController`: graceful
  transitions checkpoint at the current step (zero lost work), forceful
  removals take the abrupt recovery path — and either way the run stays
  bitwise-identical to the static one (``repro membership replay``).
"""

from repro.membership.controller import MembershipController, MembershipStats
from repro.membership.discovery import (
    HostDiscovery,
    MembershipAction,
    SimMembershipDriver,
)
from repro.membership.lifecycle import (
    ACTIVE,
    BLACKLISTED,
    CANDIDATE,
    DRAINING,
    HOST_STATES,
    REMOVED,
    TRANSITIONS,
    WARMING,
    Host,
    HostRegistry,
    InvalidTransitionError,
)
from repro.membership.plan import (
    GRACEFUL_MEMBERSHIP_KINDS,
    MEMBERSHIP_FORMAT_VERSION,
    MEMBERSHIP_KINDS,
    REMOVAL_KINDS,
    HostEvent,
    HostSpec,
    MembershipPlan,
    random_membership_plan,
    rolling_upgrade_plan,
)

__all__ = [
    "ACTIVE",
    "BLACKLISTED",
    "CANDIDATE",
    "DRAINING",
    "GRACEFUL_MEMBERSHIP_KINDS",
    "HOST_STATES",
    "Host",
    "HostDiscovery",
    "HostEvent",
    "HostRegistry",
    "HostSpec",
    "InvalidTransitionError",
    "MEMBERSHIP_FORMAT_VERSION",
    "MEMBERSHIP_KINDS",
    "MembershipAction",
    "MembershipController",
    "MembershipPlan",
    "MembershipStats",
    "REMOVAL_KINDS",
    "REMOVED",
    "SimMembershipDriver",
    "TRANSITIONS",
    "WARMING",
    "random_membership_plan",
    "rolling_upgrade_plan",
]
