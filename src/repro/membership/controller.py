"""Membership controller: lifecycle edges become scheduler events.

Extends the :class:`~repro.faults.controller.ResilienceController` with
the *anticipated* half of elasticity.  Every boundary-negotiated
membership change (join, drain, blacklist, reclaim deadline, rejoin) is
a **graceful** transition: the in-flight step finishes, an on-demand
checkpoint is taken at the current step, and the engine is rebuilt on
the new pool — zero lost work, by the same construction as a graceful
``gpu_revoke``.  ``forceful_remove`` events are translated into abrupt
``node_preempt`` fault events at construction, so forceful host loss
routes through the *existing* recovery machinery (snapshot fallback,
retry/backoff, MTTR accounting) and still recovers bitwise.

Rolling upgrades: due ``drain`` events enter a FIFO queue and at most
``plan.max_unavailable`` are released per step boundary — the classic
``maxUnavailable`` knob, one drained-and-checkpointed host per wave.

Accounting: membership downtime (restart delays on each reconfigure) is
charged to the inherited ``stats.downtime_s``, keeping the exact clock
decomposition ``clock == compute_s + downtime_s``.
:class:`MembershipStats` additionally tracks per-kind transition counts
and ``lost_work_seconds`` — compute seconds re-executed because a
forceful removal fell back to an older snapshot; graceful-only plans
report exactly ``0.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.engine import EasyScaleEngine
from repro.faults.controller import ResilienceController
from repro.faults.injector import FaultSignal
from repro.faults.schedule import FaultEvent, FaultPlan
from repro.hw.gpu import GPUType, gpu_type
from repro.membership.discovery import HostDiscovery
from repro.membership.lifecycle import (
    ACTIVE,
    BLACKLISTED,
    DRAINING,
    REMOVED,
    WARMING,
    Host,
    HostRegistry,
)
from repro.membership.plan import HostEvent, MembershipPlan
from repro.obs import flightrec


@dataclass
class MembershipStats:
    """Lifetime membership accounting of a controller run."""

    joins: int = 0
    drains: int = 0
    reclaim_notices: int = 0
    reclaims: int = 0
    blacklists: int = 0
    rejoins: int = 0
    forceful_removals: int = 0
    #: drain releases pushed past a boundary by ``max_unavailable``
    deferred_drains: int = 0
    #: compute seconds re-executed because a forceful removal restored an
    #: older snapshot; graceful transitions contribute exactly zero
    lost_work_seconds: float = 0.0
    #: (op, host_id, step) in occurrence order
    log: List[Tuple[str, str, int]] = field(default_factory=list)

    @property
    def reconfigurations(self) -> int:
        return (
            self.joins + self.drains + self.reclaims + self.blacklists
            + self.rejoins
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "joins": self.joins,
            "drains": self.drains,
            "reclaim_notices": self.reclaim_notices,
            "reclaims": self.reclaims,
            "blacklists": self.blacklists,
            "rejoins": self.rejoins,
            "forceful_removals": self.forceful_removals,
            "deferred_drains": self.deferred_drains,
            "lost_work_seconds": self.lost_work_seconds,
            "log": [list(entry) for entry in self.log],
        }

    def describe(self) -> str:
        lines = [
            f"{self.joins} join(s), {self.drains} drain(s) "
            f"({self.deferred_drains} deferred), {self.reclaims} reclaim(s), "
            f"{self.blacklists} blacklist(s), {self.rejoins} rejoin(s), "
            f"{self.forceful_removals} forceful removal(s), "
            f"{self.lost_work_seconds:.1f}s work lost"
        ]
        for op, host, step in self.log:
            lines.append(f"  step {step:>4}  {op:<16} {host}")
        return "\n".join(lines)


class MembershipController(ResilienceController):
    """Supervise one EasyScale job through a membership plan.

    The starting GPU pool is the plan's initial roster; capacity then
    grows and shrinks as the plan's host events fire at step boundaries.
    An optional ``faults`` plan can run alongside (both injectors share
    the boundary hook).
    """

    def __init__(
        self,
        spec,
        dataset,
        config,
        optimizer_factory,
        plan: MembershipPlan,
        faults: Optional[FaultPlan] = None,
        **kwargs,
    ) -> None:
        self.membership_plan = plan
        self.registry = HostRegistry()
        for host_spec in plan.initial_hosts:
            self.registry.add(
                Host(host_spec.host_id, host_spec.gtype, host_spec.slots, state=ACTIVE)
            )
        self.mstats = MembershipStats()
        self.discovery = HostDiscovery(plan)
        self._drain_queue: List[str] = []
        #: compute_s recorded at each step boundary; the gap between a
        #: recovery's restore step and the fault step is re-executed work
        self._compute_at_step: Dict[int, float] = {}
        # forceful removals route through the abrupt recovery path: each
        # becomes a node_preempt fault event addressed at the host's GPU
        # type, merged (trigger-ordered) with any user-supplied plan
        synthesized: List[FaultEvent] = []
        self._forceful_hosts: Dict[FaultEvent, List[str]] = {}
        for event in plan.step_events:
            if event.kind != "forceful_remove":
                continue
            host_spec = plan.host_spec(event.host)
            fault = FaultEvent(
                kind="node_preempt",
                at_step=event.at_step,
                target=host_spec.gtype,
                magnitude=float(host_spec.slots),
            )
            synthesized.append(fault)
            self._forceful_hosts.setdefault(fault, []).append(event.host)
        merged = sorted(
            list(synthesized) + list(faults.events if faults is not None else ()),
            key=lambda e: (e.trigger, e.kind),
        )
        fault_plan = FaultPlan(
            events=tuple(merged), seed=plan.seed, note="membership-forceful"
        )
        super().__init__(
            spec,
            dataset,
            config,
            optimizer_factory,
            self._active_pool(),
            fault_plan,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # pool derivation
    # ------------------------------------------------------------------
    def _active_pool(self) -> List[GPUType]:
        """The serving roster's GPUs, in registration order."""
        pool: List[GPUType] = []
        for host in self.registry.serving_hosts():
            pool.extend([gpu_type(host.gtype.upper())] * host.slots)
        return pool

    # ------------------------------------------------------------------
    # boundary processing
    # ------------------------------------------------------------------
    def _on_boundary(self, step: int) -> None:
        self._compute_at_step[step] = self.compute_s
        for event in self.discovery.due(step):
            self._apply_event(event, step)
        self._apply_deadlines(step)
        self._release_drains(step)
        super()._on_boundary(step)

    def _apply_event(self, event: HostEvent, step: int) -> None:
        if event.kind == "forceful_remove":
            return  # routed through the synthesized fault plan
        if event.kind == "announce":
            host = self.registry.add(Host(event.host, event.gtype, event.slots))
            self.registry.transition(event.host, WARMING)
            host.warm_until = self.engine.sim_time + event.magnitude
            self._note("announce", host, step)
        elif event.kind == "ready":
            host = self.registry.get(event.host)
            if host.state == WARMING:
                self._join(host, step)
            # already promoted by its warm-up deadline: ready is a no-op
        elif event.kind == "drain":
            self._drain_queue.append(event.host)
        elif event.kind == "reclaim_notice":
            host = self.registry.get(event.host)
            self.registry.transition(event.host, DRAINING)
            host.drain_deadline = self.engine.sim_time + event.magnitude
            self.mstats.reclaim_notices += 1
            self._note("reclaim_notice", host, step)
        elif event.kind == "blacklist":
            host = self.registry.get(event.host)
            was_serving = host.serving
            self.registry.transition(event.host, BLACKLISTED)
            host.blacklist_until = self.engine.sim_time + event.magnitude
            self.mstats.blacklists += 1
            self._note("blacklist", host, step)
            if was_serving:
                self._reconfigure("blacklist", host, step)

    def _apply_deadlines(self, step: int) -> None:
        now = self.engine.sim_time
        for host in list(self.registry):
            if (
                host.state == WARMING
                and host.warm_until is not None
                and now >= host.warm_until
            ):
                self._join(host, step)
            elif (
                host.state == BLACKLISTED
                and host.blacklist_until is not None
                and now >= host.blacklist_until
            ):
                host.blacklist_until = None
                self.registry.transition(host.host_id, ACTIVE)
                self.mstats.rejoins += 1
                self._note("rejoin", host, step)
                self._reconfigure("rejoin", host, step)
            elif (
                host.state == DRAINING
                and host.drain_deadline is not None
                and now >= host.drain_deadline
            ):
                host.drain_deadline = None
                self.registry.transition(host.host_id, REMOVED)
                self.mstats.reclaims += 1
                self._note("reclaim", host, step)
                self._reconfigure("reclaim", host, step)

    def _release_drains(self, step: int) -> None:
        """Pop at most ``max_unavailable`` queued drains (rolling wave)."""
        released = 0
        while self._drain_queue and released < self.membership_plan.max_unavailable:
            host = self.registry.get(self._drain_queue.pop(0))
            self.registry.transition(host.host_id, DRAINING)
            self.registry.transition(host.host_id, REMOVED)
            self.mstats.drains += 1
            released += 1
            self._note("drain", host, step)
            self._reconfigure("drain", host, step)
        if self._drain_queue:
            self.mstats.deferred_drains += len(self._drain_queue)

    def _join(self, host: Host, step: int) -> None:
        host.warm_until = None
        self.registry.transition(host.host_id, ACTIVE)
        self.mstats.joins += 1
        self._note("join", host, step)
        self._reconfigure("join", host, step)

    # ------------------------------------------------------------------
    # graceful reconfiguration (zero lost work by construction)
    # ------------------------------------------------------------------
    def _reconfigure(self, op: str, host: Host, step: int) -> None:
        """Checkpoint at the current step, rebuild on the new pool.

        The on-demand checkpoint carries the *current* global step — the
        in-flight step finished at this boundary — so the restored
        engine re-executes nothing: membership transitions lose no work.
        """
        pool = self._active_pool()
        if not pool:
            raise ValueError(
                f"membership plan removes all serving capacity at step {step}"
            )
        ckpt = self.engine.checkpoint()
        delay = self.restart_delay_s + self._pending_delay
        self._pending_delay = 0.0
        self.stats.downtime_s += delay
        self.pool = pool
        assignment = self._plan_assignment()
        flightrec.record(
            "membership.reconfigure",
            op=op,
            host=host.host_id,
            step=step,
            gpus=[g.name for g in assignment.gpus],
        )
        self.engine = EasyScaleEngine.from_checkpoint(
            self.spec,
            self.dataset,
            ckpt,
            self.optimizer_factory,
            assignment,
            transform=self.transform,
            scheduler_factory=self.scheduler_factory,
            config=self.config,
            telemetry=self.telemetry,
            profiler=self.profiler,
            fault_injector=self.injector,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # forceful removals (the abrupt recovery path)
    # ------------------------------------------------------------------
    def _handle_abrupt(self, signal: FaultSignal) -> None:
        host_id = None
        queue = self._forceful_hosts.get(signal.event)
        if queue:
            host_id = queue.pop(0)
            host = self.registry.get(host_id)
            self.registry.transition(host_id, REMOVED)
            self.mstats.forceful_removals += 1
            self._note("forceful_remove", host, self.engine.global_step)
        super()._handle_abrupt(signal)
        # compute spent since the restore step's boundary is re-executed
        incident = self.stats.incidents[-1]
        base = self._compute_at_step.get(incident.restore_step)
        if base is not None:
            self.mstats.lost_work_seconds += max(0.0, self.compute_s - base)

    def _shrink_pool(self, event: FaultEvent, count: int) -> None:
        # the registry is the source of truth; fall back to the parent's
        # keep-one-survivor guard only if a plan removed everything
        pool = self._active_pool()
        if pool:
            self.pool = pool
        else:
            self.pool = self.pool[:1]

    # ------------------------------------------------------------------
    def _note(self, op: str, host: Host, step: int) -> None:
        self.mstats.log.append((op, host.host_id, step))
        flightrec.record(
            "membership.transition",
            op=op,
            host=host.host_id,
            state=host.state,
            step=step,
            serving_slots=self.registry.serving_slots(),
        )
        if obs.is_enabled():
            obs.instant(
                "membership.transition",
                cat="membership",
                op=op,
                host=host.host_id,
                state=host.state,
                step=step,
            )
            registry = obs.metrics()
            registry.counter("membership_transitions_total", op=op).inc()
            registry.gauge("membership_serving_hosts").set(
                len(self.registry.serving_hosts())
            )
            registry.gauge("membership_serving_slots").set(
                self.registry.serving_slots()
            )
