"""Deterministic host discovery: replaying a membership plan.

Real elastic stacks poll a discovery service (cf. Horovod's
``RayHostDiscovery``) for the current host set.  Here discovery is the
*replay* of a seeded :class:`~repro.membership.plan.MembershipPlan`, so
every membership scenario is reproducible and can be proven bitwise-safe
against the static run:

- :class:`HostDiscovery` serves the live-engine domain: step-triggered
  events, pulled exactly once per step boundary by the
  :class:`~repro.membership.controller.MembershipController`;
- :class:`SimMembershipDriver` serves the simulator's sim-time domain.
  It expands the plan into a *static* list of timed
  :class:`MembershipAction`\\ s at construction — each event plus the
  deadlines it implies (warm-up completion, blacklist expiry, reclaim
  deadline) — so both simulator event cores (heap and reference scan)
  see identical decision times and emit identical event streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.membership.lifecycle import ACTIVE, CANDIDATE, Host, HostRegistry
from repro.membership.plan import HostEvent, MembershipPlan


class HostDiscovery:
    """Step-domain replay of a plan's events, exactly once each.

    Mirrors :class:`~repro.faults.injector.FaultInjector`'s consumption
    contract: :meth:`due` returns every not-yet-fired event whose
    ``at_step`` has arrived (``<=``, so catch-up after a recovery cannot
    skip one), and fired events stay fired across engine rebuilds —
    the discovery object outlives any single engine.
    """

    def __init__(self, plan: MembershipPlan, kinds: Optional[frozenset] = None) -> None:
        self.plan = plan
        self._events: List[HostEvent] = [
            e for e in plan.step_events if kinds is None or e.kind in kinds
        ]
        self._fired: set = set()

    def reset(self) -> None:
        self._fired.clear()

    @property
    def exhausted(self) -> bool:
        return len(self._fired) == len(self._events)

    def due(self, step: int) -> List[HostEvent]:
        """Consume every event due at or before this step boundary."""
        fired: List[HostEvent] = []
        for idx, event in enumerate(self._events):
            if idx in self._fired or event.at_step is None or event.at_step > step:
                continue
            self._fired.add(idx)
            fired.append(event)
        return fired

    def pending(self) -> List[HostEvent]:
        return [e for i, e in enumerate(self._events) if i not in self._fired]


# ----------------------------------------------------------------------
# simulator domain
# ----------------------------------------------------------------------

#: operations the simulator applies; derived from plan events + deadlines
SIM_OPS = (
    "announce",       # host appears (no capacity change)
    "join",           # WARMING -> ACTIVE: capacity grows
    "rejoin",         # BLACKLISTED -> ACTIVE after expiry: capacity returns
    "drain",          # graceful removal (queued behind max_unavailable)
    "reclaim_notice", # spot notice: host keeps serving until the deadline
    "reclaim",        # the notice deadline: graceful removal
    "blacklist",      # graceful removal with a scheduled rejoin
    "forceful_remove",# abrupt removal: preempts owners
)


@dataclass(frozen=True)
class MembershipAction:
    """One timed simulator operation derived from the plan."""

    at_time: float
    op: str
    host_id: str

    def __post_init__(self) -> None:
        if self.op not in SIM_OPS:
            raise ValueError(f"unknown membership op {self.op!r}")
        if self.at_time < 0:
            raise ValueError(f"{self.op}: at_time must be non-negative")


class SimMembershipDriver:
    """Time-domain driver: static action list + lifecycle registry.

    All decision times are derivable from the plan alone (event times
    plus ``at_time + magnitude`` deadlines), which is what keeps the
    heap event core and the reference scan byte-identical: neither core
    ever discovers a new decision time at runtime.

    ``max_unavailable`` is enforced here: a due ``drain`` beyond the cap
    is deferred and retried at the next decision point of any kind (it
    piggybacks on existing decision times instead of minting new ones).
    """

    def __init__(self, plan: MembershipPlan) -> None:
        self.plan = plan
        self.registry = HostRegistry()
        for spec in plan.initial_hosts:
            self.registry.add(
                Host(spec.host_id, spec.gtype, spec.slots, state=ACTIVE)
            )
        actions: List[MembershipAction] = []
        for event in plan.time_events:
            t = float(event.at_time)
            if event.kind == "announce":
                self.registry.add(
                    Host(event.host, event.gtype, event.slots, state=CANDIDATE)
                )
                actions.append(MembershipAction(t, "announce", event.host))
                actions.append(
                    MembershipAction(t + event.magnitude, "join", event.host)
                )
            elif event.kind == "ready":
                actions.append(MembershipAction(t, "join", event.host))
            elif event.kind == "drain":
                actions.append(MembershipAction(t, "drain", event.host))
            elif event.kind == "reclaim_notice":
                actions.append(MembershipAction(t, "reclaim_notice", event.host))
                actions.append(
                    MembershipAction(t + event.magnitude, "reclaim", event.host)
                )
            elif event.kind == "blacklist":
                actions.append(MembershipAction(t, "blacklist", event.host))
                actions.append(
                    MembershipAction(t + event.magnitude, "rejoin", event.host)
                )
            elif event.kind == "forceful_remove":
                actions.append(MembershipAction(t, "forceful_remove", event.host))
        # stable total order: (time, op, host) — ops colliding at one
        # decision point apply in a deterministic sequence in both cores
        actions.sort(key=lambda a: (a.at_time, a.op, a.host_id))
        self._actions: Tuple[MembershipAction, ...] = tuple(actions)
        self._cursor = 0
        self._deferred_drains: List[MembershipAction] = []
        #: drains pushed past a decision point by max_unavailable
        self.deferrals = 0

    # ------------------------------------------------------------------
    @property
    def actions(self) -> Tuple[MembershipAction, ...]:
        return self._actions

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._actions) and not self._deferred_drains

    def times(self) -> Iterator[float]:
        """Every static decision time (for heap-core pre-enqueue)."""
        for action in self._actions:
            yield action.at_time

    def next_time(self, after: float) -> Optional[float]:
        """The earliest pending action time strictly after ``after``."""
        for action in self._actions[self._cursor:]:
            if action.at_time > after:
                return action.at_time
        return None

    # ------------------------------------------------------------------
    def due(self, now: float) -> List[MembershipAction]:
        """Pop every action due at ``now``, honoring ``max_unavailable``.

        Deferred drains are retried first (FIFO), so a rolling upgrade
        releases hosts in plan order one wave per decision point.
        """
        ready: List[MembershipAction] = []
        drains: List[MembershipAction] = list(self._deferred_drains)
        self._deferred_drains = []
        while self._cursor < len(self._actions):
            action = self._actions[self._cursor]
            if action.at_time > now:
                break
            self._cursor += 1
            if action.op == "drain":
                drains.append(action)
            else:
                ready.append(action)
        cap = self.plan.max_unavailable
        ready.extend(drains[:cap])
        if len(drains) > cap:
            self._deferred_drains = drains[cap:]
            self.deferrals += len(drains) - cap
        return ready
