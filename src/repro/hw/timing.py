"""Analytical timing model for simulated training.

Bitwise results come from real NumPy arithmetic; *wall-clock* numbers for
the scheduler and overhead experiments come from this model, calibrated to
the paper's reported effects:

- D1 (elastic determinism) costs <1% — bookkeeping only (Fig. 12);
- D2 (hardware-agnostic kernels) costs ~236% extra on conv-heavy models,
  ~1% on GEMM/attention models (Fig. 12);
- EST context switching costs ≤1.9% of a mini-batch, hidden by overlapping
  gradient D2H copies with compute (Figs. 11, 13);
- worker packing gains up to ~11% aggregate throughput from concurrent
  kernels, at linear memory cost (Fig. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import Dict

from repro.hw.gpu import GPU_TYPES, GPUType
from repro.models.registry import WorkloadSpec
from repro.tensor.kernels import KernelPolicy

#: multiplicative overheads calibrated to the paper
D1_OVERHEAD = 0.005
D2_CONV_OVERHEAD = 2.36  # +236% on conv-heavy models
D2_LIGHT_OVERHEAD = 0.008
#: context-switch cost fraction per mini-batch (worst case 1.9%, Electra)
CTX_SWITCH_FRACTION = {
    "shufflenetv2": 0.004,
    "resnet18": 0.004,
    "resnet50": 0.005,
    "vgg19": 0.006,
    "yolov3": 0.007,
    "neumf": 0.010,
    "bert": 0.014,
    "electra": 0.019,
    "swintransformer": 0.012,
}
#: peak aggregate-throughput gain of worker packing over EasyScale
PACKING_PEAK_GAIN = 0.11


def minibatch_time(
    spec: WorkloadSpec,
    gpu: GPUType,
    policy: KernelPolicy | None = None,
    elastic_determinism: bool = True,
) -> float:
    """Seconds per mini-batch for one worker of ``spec`` on ``gpu``."""
    key = gpu.name.lower()
    rate = spec.throughput.get(key)
    if rate is None:
        rate = spec.throughput["v100"] * gpu.relative_speed
    time = 1.0 / rate
    if elastic_determinism:
        time *= 1.0 + D1_OVERHEAD
    if policy is not None and policy.hardware_agnostic:
        time *= 1.0 + (D2_CONV_OVERHEAD if spec.conv_heavy else D2_LIGHT_OVERHEAD)
    return time


def static_capability(
    spec: WorkloadSpec,
    policy: KernelPolicy | None = None,
    elastic_determinism: bool = True,
) -> Dict[str, float]:
    """The static per-GPU-type capability table ``C_i`` (mini-batches/s).

    This is the analytical prior the Eq. (1) scheduler starts from; the
    online profiler (``repro.obs.profiler``) refines it with measured
    rates, and calibration-aware consumers prefer the refined values.
    Keys are lower-case type names, matching the scheduler's convention.
    """
    return {
        name.lower(): 1.0 / minibatch_time(spec, gtype, policy, elastic_determinism)
        for name, gtype in GPU_TYPES.items()
    }


def context_switch_time(spec: WorkloadSpec, gpu: GPUType) -> float:
    """Seconds to swap one EST out / the next in (gradient D2H staging)."""
    frac = CTX_SWITCH_FRACTION.get(spec.name, 0.01)
    return frac * minibatch_time(spec, gpu)


def easyscale_step_time(
    spec: WorkloadSpec,
    gpu: GPUType,
    num_ests: int,
    policy: KernelPolicy | None = None,
) -> float:
    """Seconds per *global* step with k ESTs time-slicing one GPU.

    k local mini-batches run sequentially; context switches overlap with
    compute except for the small staging fraction; the final EST's gradient
    synchronization is free of copy because all siblings' gradients are
    already staged (Fig. 13's observation).
    """
    if num_ests <= 0:
        raise ValueError("num_ests must be positive")
    per_batch = minibatch_time(spec, gpu, policy)
    switches = max(num_ests - 1, 0) * context_switch_time(spec, gpu)
    return num_ests * per_batch + switches


def packing_aggregate_throughput(
    spec: WorkloadSpec, gpu: GPUType, num_workers: int
) -> float:
    """Aggregate mini-batches/s of k packed workers (Fig. 10's bars).

    Concurrent kernels improve utilization with diminishing returns,
    saturating at ``1 + PACKING_PEAK_GAIN`` of a single worker's rate.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    base = 1.0 / minibatch_time(spec, gpu)
    gain = 1.0 + PACKING_PEAK_GAIN * (1.0 - math.exp(-(num_workers - 1) / 2.0))
    return base * gain


def easyscale_aggregate_throughput(
    spec: WorkloadSpec, gpu: GPUType, num_ests: int
) -> float:
    """Aggregate mini-batches/s of k ESTs on one GPU (flat in k)."""
    return num_ests / easyscale_step_time(spec, gpu, num_ests)
