"""GPU memory accounting for worker packing vs. EasyScale (Fig. 10).

The paper's §3.1 analysis: naively packing k training workers on one GPU
multiplies *everything* — CUDA contexts (~750 MB each), model/optimizer
replicas, and live activations — so memory grows linearly in k and OOMs
quickly (8 workers for ResNet50/bs32, 2 for ShuffleNetV2/bs512 on a 32 GB
V100).  EasyScale runs *one* process per GPU, shares the single
model/optimizer replica across ESTs, keeps only one EST's activations live
(minimum time slice = one mini-batch), and swaps per-EST gradients to the
CPU — so GPU memory is essentially flat in the number of ESTs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import CUDA_CONTEXT_GB, GPUType
from repro.models.registry import WorkloadSpec


class OutOfMemoryError(RuntimeError):
    """Simulated CUDA OOM."""


#: GPU-side footprint of one EST's swappable context (gradient staging
#: buffer headroom + RNG/bookkeeping); intentionally tiny.
EST_CONTEXT_GB = 0.02


def packing_memory_gb(spec: WorkloadSpec, num_workers: int, batch_size: int | None = None) -> float:
    """Peak GPU memory of Gandiva-style worker packing with k processes."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    per_worker = CUDA_CONTEXT_GB + spec.worker_memory_gb(batch_size)
    return num_workers * per_worker


def easyscale_memory_gb(spec: WorkloadSpec, num_ests: int, batch_size: int | None = None) -> float:
    """Peak GPU memory of one EasyScale worker hosting k ESTs.

    One CUDA context, one model/optimizer replica, one live activation set,
    plus a small per-EST staging overhead (gradients live on the CPU side
    between local steps).
    """
    if num_ests <= 0:
        raise ValueError("num_ests must be positive")
    return CUDA_CONTEXT_GB + spec.worker_memory_gb(batch_size) + num_ests * EST_CONTEXT_GB


def check_fits(required_gb: float, gpu: GPUType) -> None:
    """Raise the simulated OOM if the footprint exceeds device memory."""
    if required_gb > gpu.memory_gb:
        raise OutOfMemoryError(
            f"requires {required_gb:.2f} GB but {gpu.name} has {gpu.memory_gb:.0f} GB"
        )


def max_packed_workers(spec: WorkloadSpec, gpu: GPUType, batch_size: int | None = None) -> int:
    """Largest k for which worker packing still fits on ``gpu``."""
    k = 0
    while packing_memory_gb(spec, k + 1, batch_size) <= gpu.memory_gb:
        k += 1
    return k


def max_easyscale_ests(spec: WorkloadSpec, gpu: GPUType, batch_size: int | None = None) -> int:
    """Largest EST count for which an EasyScale worker fits on ``gpu``."""
    if easyscale_memory_gb(spec, 1, batch_size) > gpu.memory_gb:
        return 0
    k = 1
    while easyscale_memory_gb(spec, k + 1, batch_size) <= gpu.memory_gb:
        k += 1
    return k
