"""Simulated cluster inventory: machines and GPU pools.

Two canonical configurations mirror the paper's testbeds:

- :func:`microbench_cluster` — the 64-GPU cloud cluster of §5 (4 servers x
  8 V100, 8 servers x 2 P100, 4 servers x 4 T4);
- :func:`production_cluster` — a parameterized large pool for the §5.3
  co-location experiment (3,000+ GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.hw.gpu import GPU, GPUType, P100, T4, V100, gpu_type


@dataclass
class Machine:
    """A server hosting several GPUs of one type."""

    name: str
    gpus: List[GPU]

    @classmethod
    def build(cls, name: str, gtype: GPUType, count: int) -> "Machine":
        return cls(name=name, gpus=[GPU(type=gtype, machine=name) for _ in range(count)])


class Cluster:
    """GPU inventory with per-type allocation tracking."""

    def __init__(self, machines: Iterable[Machine]) -> None:
        self.machines: List[Machine] = list(machines)
        self.gpus: List[GPU] = [gpu for machine in self.machines for gpu in machine.gpus]
        if not self.gpus:
            raise ValueError("cluster has no GPUs")

    # ------------------------------------------------------------------
    # inventory queries
    # ------------------------------------------------------------------
    def total(self, type_name: Optional[str] = None) -> int:
        return sum(1 for gpu in self.gpus if type_name is None or gpu.type.name == type_name)

    def free(self, type_name: Optional[str] = None) -> List[GPU]:
        return [
            gpu
            for gpu in self.gpus
            if gpu.free and (type_name is None or gpu.type.name == type_name)
        ]

    def free_count(self, type_name: Optional[str] = None) -> int:
        return len(self.free(type_name))

    def allocated_count(self, type_name: Optional[str] = None) -> int:
        return self.total(type_name) - self.free_count(type_name)

    def free_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gpu in self.gpus:
            if gpu.free:
                counts[gpu.type.name] = counts.get(gpu.type.name, 0) + 1
        return counts

    def type_names(self) -> List[str]:
        return sorted({gpu.type.name for gpu in self.gpus})

    # ------------------------------------------------------------------
    # membership: capacity joining and leaving at runtime
    # ------------------------------------------------------------------
    def add_machine(self, machine: Machine) -> None:
        """Grow the inventory: a host joined the cluster."""
        if not machine.gpus:
            raise ValueError(f"machine {machine.name!r} has no GPUs")
        self.machines.append(machine)
        self.gpus.extend(machine.gpus)

    def remove_free(self, type_name: str, count: int) -> int:
        """Shrink the inventory by ``count`` *free* GPUs of one type.

        Takes from the end of the pool (the most recently joined capacity
        leaves first), prunes machines left without GPUs, and refuses to
        empty the cluster — callers must free capacity (preempt owners)
        before removing it.
        """
        if count <= 0:
            return 0
        victims: List[GPU] = []
        for gpu in reversed(self.gpus):
            if len(victims) == count:
                break
            if gpu.free and gpu.type.name == type_name:
                victims.append(gpu)
        if len(victims) < count:
            raise RuntimeError(
                f"cannot remove {count} {type_name}: only {len(victims)} free"
            )
        if len(self.gpus) - count == 0:
            raise RuntimeError("cannot remove the last GPUs in the cluster")
        doomed = set(map(id, victims))
        self.gpus = [g for g in self.gpus if id(g) not in doomed]
        for machine in self.machines:
            machine.gpus = [g for g in machine.gpus if id(g) not in doomed]
        self.machines = [m for m in self.machines if m.gpus]
        return count

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, job_id: str, type_name: str, count: int) -> List[GPU]:
        """Grab ``count`` free GPUs of one type for a job (all or nothing)."""
        available = self.free(type_name)
        if len(available) < count:
            raise RuntimeError(
                f"cannot allocate {count} {type_name} for {job_id}: only {len(available)} free"
            )
        taken = available[:count]
        for gpu in taken:
            gpu.allocate(job_id)
        return taken

    def release(self, job_id: str, gpus: Iterable[GPU]) -> None:
        for gpu in gpus:
            gpu.release(job_id)

    def release_all(self, job_id: str) -> int:
        released = 0
        for gpu in self.gpus:
            if gpu.owner == job_id:
                gpu.release(job_id)
                released += 1
        return released

    def owned_by(self, job_id: str) -> List[GPU]:
        return [gpu for gpu in self.gpus if gpu.owner == job_id]


def microbench_cluster() -> Cluster:
    """The paper's 64-GPU evaluation cluster (§5): 32 V100 + 16 P100 + 16 T4."""
    machines: List[Machine] = []
    for i in range(4):
        machines.append(Machine.build(f"v100-node{i}", V100, 8))
    for i in range(8):
        machines.append(Machine.build(f"p100-node{i}", P100, 2))
    for i in range(4):
        machines.append(Machine.build(f"t4-node{i}", T4, 4))
    return Cluster(machines)


def production_cluster(num_gpus: int = 3000) -> Cluster:
    """A large heterogeneous pool for the §5.3 co-location experiment.

    Mix skews toward inference-class GPUs (T4) like the paper's serving
    cluster, with a V100/P100 training-capable share.
    """
    if num_gpus < 10:
        raise ValueError("production cluster needs at least 10 GPUs")
    n_t4 = num_gpus // 2
    n_p100 = num_gpus // 4
    n_v100 = num_gpus - n_t4 - n_p100
    machines: List[Machine] = []
    for i in range(0, n_v100, 8):
        machines.append(Machine.build(f"prod-v100-{i // 8}", V100, min(8, n_v100 - i)))
    for i in range(0, n_p100, 4):
        machines.append(Machine.build(f"prod-p100-{i // 4}", P100, min(4, n_p100 - i)))
    for i in range(0, n_t4, 4):
        machines.append(Machine.build(f"prod-t4-{i // 4}", T4, min(4, n_t4 - i)))
    return Cluster(machines)
