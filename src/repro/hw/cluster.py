"""Simulated cluster inventory: machines and GPU pools.

Two canonical configurations mirror the paper's testbeds:

- :func:`microbench_cluster` — the 64-GPU cloud cluster of §5 (4 servers x
  8 V100, 8 servers x 2 P100, 4 servers x 4 T4);
- :func:`production_cluster` — a parameterized large pool for the §5.3
  co-location experiment (3,000+ GPUs).

The inventory is *indexed*: per-type free lists (kept sorted by pool
position) and an owner map make ``free_by_type``/``allocated_count``/
``owned_by`` independent of cluster size, which is what lets the
discrete-event simulator replay month-long traces on 3,000-GPU pools —
the seed implementation rescanned every GPU on each of those queries.
Allocation still hands out the lowest-position free GPUs and
``remove_free`` still takes the highest-position ones, so every consumer
sees exactly the seed pool-order semantics.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, Iterable, List, Optional

from repro.hw.gpu import GPU, GPUType, P100, T4, V100

_pool_position = attrgetter("_pool_index")


@dataclass
class Machine:
    """A server hosting several GPUs of one type."""

    name: str
    gpus: List[GPU]

    @classmethod
    def build(cls, name: str, gtype: GPUType, count: int) -> "Machine":
        return cls(name=name, gpus=[GPU(type=gtype, machine=name) for _ in range(count)])


class Cluster:
    """GPU inventory with per-type allocation tracking."""

    def __init__(self, machines: Iterable[Machine]) -> None:
        self.machines: List[Machine] = list(machines)
        self.gpus: List[GPU] = [gpu for machine in self.machines for gpu in machine.gpus]
        if not self.gpus:
            raise ValueError("cluster has no GPUs")
        #: monotone registration counter: a GPU's position in the pool,
        #: preserved across removals (newly joined capacity always sorts
        #: after everything registered before it)
        self._next_position = 0
        self._totals: Dict[str, int] = {}
        #: per-type free GPUs, sorted ascending by pool position
        self._free_lists: Dict[str, List[GPU]] = {}
        #: job id -> held GPUs, sorted ascending by pool position
        self._owned: Dict[str, List[GPU]] = {}
        for gpu in self.gpus:
            self._register(gpu)

    def _register(self, gpu: GPU) -> None:
        gpu._pool_index = self._next_position
        self._next_position += 1
        name = gpu.type.name
        self._totals[name] = self._totals.get(name, 0) + 1
        if gpu.free:
            self._free_lists.setdefault(name, []).append(gpu)
        else:
            insort(self._owned.setdefault(gpu.owner, []), gpu, key=_pool_position)

    # ------------------------------------------------------------------
    # inventory queries
    # ------------------------------------------------------------------
    def total(self, type_name: Optional[str] = None) -> int:
        if type_name is None:
            return sum(self._totals.values())
        return self._totals.get(type_name, 0)

    def free(self, type_name: Optional[str] = None) -> List[GPU]:
        if type_name is not None:
            return list(self._free_lists.get(type_name, ()))
        merged = [gpu for lst in self._free_lists.values() for gpu in lst]
        merged.sort(key=_pool_position)
        return merged

    def free_count(self, type_name: Optional[str] = None) -> int:
        if type_name is None:
            return sum(len(lst) for lst in self._free_lists.values())
        return len(self._free_lists.get(type_name, ()))

    def allocated_count(self, type_name: Optional[str] = None) -> int:
        return self.total(type_name) - self.free_count(type_name)

    def free_by_type(self) -> Dict[str, int]:
        return {name: len(lst) for name, lst in self._free_lists.items() if lst}

    def type_names(self) -> List[str]:
        return sorted(name for name, count in self._totals.items() if count > 0)

    # ------------------------------------------------------------------
    # membership: capacity joining and leaving at runtime
    # ------------------------------------------------------------------
    def add_machine(self, machine: Machine) -> None:
        """Grow the inventory: a host joined the cluster."""
        if not machine.gpus:
            raise ValueError(f"machine {machine.name!r} has no GPUs")
        self.machines.append(machine)
        self.gpus.extend(machine.gpus)
        for gpu in machine.gpus:
            self._register(gpu)

    def remove_free(self, type_name: str, count: int) -> int:
        """Shrink the inventory by ``count`` *free* GPUs of one type.

        Takes from the end of the pool (the most recently joined capacity
        leaves first), prunes machines left without GPUs, and refuses to
        empty the cluster — callers must free capacity (preempt owners)
        before removing it.
        """
        if count <= 0:
            return 0
        free_list = self._free_lists.get(type_name, [])
        if len(free_list) < count:
            raise RuntimeError(
                f"cannot remove {count} {type_name}: only {len(free_list)} free"
            )
        if len(self.gpus) - count == 0:
            raise RuntimeError("cannot remove the last GPUs in the cluster")
        victims = free_list[-count:]
        del free_list[-count:]
        doomed = set(map(id, victims))
        self.gpus = [g for g in self.gpus if id(g) not in doomed]
        for machine in self.machines:
            machine.gpus = [g for g in machine.gpus if id(g) not in doomed]
        self.machines = [m for m in self.machines if m.gpus]
        self._totals[type_name] -= count
        return count

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, job_id: str, type_name: str, count: int) -> List[GPU]:
        """Grab ``count`` free GPUs of one type for a job (all or nothing)."""
        available = self._free_lists.get(type_name, [])
        if len(available) < count:
            raise RuntimeError(
                f"cannot allocate {count} {type_name} for {job_id}: only {len(available)} free"
            )
        taken = available[:count]
        del available[:count]
        for gpu in taken:
            gpu.allocate(job_id)
        owned = self._owned.setdefault(job_id, [])
        owned.extend(taken)
        owned.sort(key=_pool_position)
        return taken

    def release(self, job_id: str, gpus: Iterable[GPU]) -> None:
        released: List[GPU] = []
        try:
            for gpu in gpus:
                gpu.release(job_id)
                released.append(gpu)
        finally:
            if released:
                self._untrack(job_id, released)

    def release_all(self, job_id: str) -> int:
        owned = self._owned.pop(job_id, [])
        for gpu in owned:
            gpu.release(job_id)
        self._refile(owned)
        return len(owned)

    def owned_by(self, job_id: str) -> List[GPU]:
        return list(self._owned.get(job_id, ()))

    def _untrack(self, job_id: str, gpus: List[GPU]) -> None:
        owned = self._owned.get(job_id)
        if owned is not None:
            doomed = set(map(id, gpus))
            owned[:] = [g for g in owned if id(g) not in doomed]
            if not owned:
                del self._owned[job_id]
        self._refile(gpus)

    def _refile(self, gpus: List[GPU]) -> None:
        """Return released GPUs to their per-type free lists, in order."""
        by_type: Dict[str, List[GPU]] = {}
        for gpu in gpus:
            by_type.setdefault(gpu.type.name, []).append(gpu)
        for name, batch in by_type.items():
            free_list = self._free_lists.setdefault(name, [])
            free_list.extend(batch)
            free_list.sort(key=_pool_position)


def microbench_cluster() -> Cluster:
    """The paper's 64-GPU evaluation cluster (§5): 32 V100 + 16 P100 + 16 T4."""
    machines: List[Machine] = []
    for i in range(4):
        machines.append(Machine.build(f"v100-node{i}", V100, 8))
    for i in range(8):
        machines.append(Machine.build(f"p100-node{i}", P100, 2))
    for i in range(4):
        machines.append(Machine.build(f"t4-node{i}", T4, 4))
    return Cluster(machines)


def production_cluster(num_gpus: int = 3000) -> Cluster:
    """A large heterogeneous pool for the §5.3 co-location experiment.

    Mix skews toward inference-class GPUs (T4) like the paper's serving
    cluster, with a V100/P100 training-capable share.
    """
    if num_gpus < 10:
        raise ValueError("production cluster needs at least 10 GPUs")
    n_t4 = num_gpus // 2
    n_p100 = num_gpus // 4
    n_v100 = num_gpus - n_t4 - n_p100
    machines: List[Machine] = []
    for i in range(0, n_v100, 8):
        machines.append(Machine.build(f"prod-v100-{i // 8}", V100, min(8, n_v100 - i)))
    for i in range(0, n_p100, 4):
        machines.append(Machine.build(f"prod-p100-{i // 4}", P100, min(4, n_p100 - i)))
    for i in range(0, n_t4, 4):
        machines.append(Machine.build(f"prod-t4-{i // 4}", T4, min(4, n_t4 - i)))
    return Cluster(machines)
