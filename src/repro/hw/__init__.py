"""Simulated heterogeneous GPU hardware: devices, memory, timing, clusters."""

from repro.hw.gpu import CUDA_CONTEXT_GB, GPU, GPUType, GPU_TYPES, P100, T4, V100, gpu_type
from repro.hw.memory import (
    EST_CONTEXT_GB,
    OutOfMemoryError,
    check_fits,
    easyscale_memory_gb,
    max_easyscale_ests,
    max_packed_workers,
    packing_memory_gb,
)
from repro.hw.timing import (
    context_switch_time,
    easyscale_aggregate_throughput,
    easyscale_step_time,
    minibatch_time,
    packing_aggregate_throughput,
    static_capability,
)
from repro.hw.cluster import Cluster, Machine, microbench_cluster, production_cluster

__all__ = [
    "GPU",
    "GPUType",
    "GPU_TYPES",
    "V100",
    "P100",
    "T4",
    "gpu_type",
    "CUDA_CONTEXT_GB",
    "EST_CONTEXT_GB",
    "OutOfMemoryError",
    "check_fits",
    "packing_memory_gb",
    "easyscale_memory_gb",
    "max_packed_workers",
    "max_easyscale_ests",
    "minibatch_time",
    "static_capability",
    "context_switch_time",
    "easyscale_step_time",
    "easyscale_aggregate_throughput",
    "packing_aggregate_throughput",
    "Cluster",
    "Machine",
    "microbench_cluster",
    "production_cluster",
]
