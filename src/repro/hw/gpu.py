"""Simulated GPU device types and instances.

Device types carry the two properties the paper's experiments depend on:

- a **kernel dialect** (how float32 partial sums associate on that silicon)
  — consumed by :mod:`repro.tensor.kernels` to recreate heterogeneous
  non-determinism;
- a **capacity profile** (memory GB, relative compute) — consumed by the
  memory model (Fig. 10) and the scheduler's performance model (Eq. 1).

The three types match the evaluation cluster: V100 (32 GB), P100 (16 GB),
T4 (16 GB).  ``CUDA_CONTEXT_GB`` is the paper's measured ~750 MB per-process
context cost — the constant that makes naive worker packing so expensive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: GPU memory consumed by one process's CUDA context (framework + CUDA),
#: §3.1: "around 750MB per context".
CUDA_CONTEXT_GB = 0.75


@dataclass(frozen=True)
class GPUType:
    """A GPU model: dialect for numerics, capacity for scheduling."""

    name: str
    dialect: str
    memory_gb: float
    #: compute capability relative to V100 (used for default throughput
    #: scaling when a workload lacks a measured profile)
    relative_speed: float

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.relative_speed <= 0:
            raise ValueError(f"invalid GPU type parameters for {self.name}")


V100 = GPUType(name="V100", dialect="v100", memory_gb=32.0, relative_speed=1.0)
P100 = GPUType(name="P100", dialect="p100", memory_gb=16.0, relative_speed=0.45)
T4 = GPUType(name="T4", dialect="t4", memory_gb=16.0, relative_speed=0.33)

GPU_TYPES: Dict[str, GPUType] = {t.name: t for t in (V100, P100, T4)}


def gpu_type(name: str) -> GPUType:
    try:
        return GPU_TYPES[name]
    except KeyError:
        raise KeyError(f"unknown GPU type {name!r}; options: {sorted(GPU_TYPES)}") from None


_gpu_ids = itertools.count()


@dataclass
class GPU:
    """One physical GPU instance in the simulated cluster."""

    type: GPUType
    machine: str = "local"
    gpu_id: int = field(default_factory=lambda: next(_gpu_ids))
    #: job id currently holding this GPU, or None if free
    owner: Optional[str] = None

    @property
    def free(self) -> bool:
        return self.owner is None

    def allocate(self, job_id: str) -> None:
        if self.owner is not None:
            raise RuntimeError(f"GPU {self.gpu_id} already owned by {self.owner}")
        self.owner = job_id

    def release(self, job_id: str) -> None:
        if self.owner != job_id:
            raise RuntimeError(f"GPU {self.gpu_id} owned by {self.owner}, not {job_id}")
        self.owner = None

    def __repr__(self) -> str:
        status = self.owner or "free"
        return f"GPU({self.type.name}#{self.gpu_id}@{self.machine}, {status})"
