"""Bitwise fingerprints of tensors and state dicts.

The paper's headline property is *bitwise-identical* model parameters across
elastic reconfigurations ("EasyScale explores the possibilities of producing
bitwise-consistent model regardless of the number and type of GPU resources
allocated", §1).  Floating-point "closeness" is explicitly not enough — the
motivation figures show that small per-step differences compound into
percent-level accuracy gaps.  We therefore compare runs by hashing the raw
little-endian bytes of every parameter in a canonical order.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Mapping

import numpy as np


def fingerprint_array(arr: np.ndarray) -> str:
    """SHA-256 digest of an array's dtype, shape, and raw bytes."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype.str).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def fingerprint_arrays(arrays: Iterable[np.ndarray]) -> str:
    """Digest of a sequence of arrays, sensitive to order."""
    h = hashlib.sha256()
    for arr in arrays:
        h.update(fingerprint_array(arr).encode())
    return h.hexdigest()


def fingerprint_state_dict(state: Mapping[str, np.ndarray]) -> str:
    """Digest of a named parameter mapping in sorted-key order.

    Sorting makes the digest independent of dict insertion order, so two
    models built by different code paths (e.g. DDP baseline vs. EasyScale
    engine) compare equal iff every named tensor is bitwise equal.
    """
    h = hashlib.sha256()
    for name in sorted(state):
        h.update(name.encode())
        h.update(b"\x00")
        h.update(fingerprint_array(np.asarray(state[name])).encode())
    return h.hexdigest()


def max_abs_diff(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> float:
    """Largest elementwise |a-b| across a shared state dict.

    Used by the Fig. 9 benchmark to plot *loss-curve differences*: zero for
    determinism-matched configurations, small-but-nonzero once a source of
    non-determinism (bucket rebuild, vendor kernels) is allowed through.
    """
    if set(a) != set(b):
        raise KeyError(
            f"state dicts have different keys: {sorted(set(a) ^ set(b))[:5]} ..."
        )
    worst = 0.0
    for name in a:
        diff = np.max(np.abs(np.asarray(a[name], dtype=np.float64) - np.asarray(b[name], dtype=np.float64)))
        worst = max(worst, float(diff))
    return worst
