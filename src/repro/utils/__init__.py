"""Shared utilities for the EasyScale reproduction.

This subpackage hosts the pieces of infrastructure that every other layer
relies on:

- :mod:`repro.utils.rng` — the three random-number streams that the paper's
  determinism analysis identifies (Python / NumPy / framework), with full
  state capture and restore so they can live inside EST contexts and
  on-demand checkpoints.
- :mod:`repro.utils.fingerprint` — bitwise digests of model parameters, used
  throughout tests and benchmarks to assert the paper's headline claim
  (bitwise-identical models under elasticity).
- :mod:`repro.utils.serialization` — stable state-dict flattening and byte
  round-trips for checkpoints.
- :mod:`repro.utils.events` — a tiny structured event log used by the
  cluster simulator and the benchmarks to report timelines.
"""

from repro.utils.rng import RNGBundle, derive_seed, SeedError
from repro.utils.fingerprint import fingerprint_array, fingerprint_arrays, fingerprint_state_dict
from repro.utils.serialization import (
    state_dict_to_bytes,
    state_dict_from_bytes,
    flatten_state_dict,
    unflatten_state_dict,
)
from repro.utils.events import EventLog, Event
from repro.utils.telemetry import Record, RunLog

__all__ = [
    "RNGBundle",
    "derive_seed",
    "SeedError",
    "fingerprint_array",
    "fingerprint_arrays",
    "fingerprint_state_dict",
    "state_dict_to_bytes",
    "state_dict_from_bytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "EventLog",
    "Event",
    "Record",
    "RunLog",
]
