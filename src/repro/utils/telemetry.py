"""Training telemetry: structured run records with JSONL persistence.

The production deployment streams per-step metrics from the EasyScale
runtime to AIMaster and the cluster dashboards.  This module is the
local equivalent: a :class:`RunLog` collects typed records (step metrics,
scale events, checkpoints), streams them to JSON-lines on disk, and loads
them back for analysis — the format the benchmark harnesses and any
downstream notebooks can consume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_ALLOWED_KINDS = ("step", "scale_event", "checkpoint", "eval", "note", "profile")


@dataclass(frozen=True)
class Record:
    """One telemetry record: a kind, a monotonically-increasing step, data."""

    kind: str
    step: int
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _ALLOWED_KINDS:
            raise ValueError(f"unknown record kind {self.kind!r}; allowed: {_ALLOWED_KINDS}")
        if self.step < 0:
            raise ValueError("step must be non-negative")

    def to_json(self) -> str:
        return json.dumps({"kind": self.kind, "step": self.step, **self.data}, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Record":
        payload = json.loads(line)
        try:
            kind = payload.pop("kind")
            step = payload.pop("step")
        except KeyError as err:
            raise ValueError(
                f"telemetry record missing required field {err}: {line[:80]!r}"
            ) from err
        return cls(kind=kind, step=int(step), data=payload)


class RunLog:
    """Append-only telemetry sink, optionally mirrored to a JSONL file."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.records: List[Record] = []
        #: set by :meth:`load` when the file ended in a partial line
        self.truncated = False
        self._path = os.fspath(path) if path is not None else None
        self._fh = open(self._path, "a", encoding="utf-8") if self._path else None

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self, record: Record) -> None:
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(record.to_json() + "\n")
            self._fh.flush()

    def step(self, step: int, losses: List[float], **extra: Any) -> None:
        self._emit(
            Record(
                kind="step",
                step=step,
                data={"losses": [float(l) for l in losses], **extra},
            )
        )

    def scale_event(self, step: int, gpus: List[str], **extra: Any) -> None:
        self._emit(Record(kind="scale_event", step=step, data={"gpus": gpus, **extra}))

    def checkpoint(self, step: int, digest: str, **extra: Any) -> None:
        self._emit(Record(kind="checkpoint", step=step, data={"digest": digest, **extra}))

    def eval(self, step: int, metric: str, value: float, **extra: Any) -> None:
        self._emit(
            Record(kind="eval", step=step, data={"metric": metric, "value": float(value), **extra})
        )

    def note(self, step: int, message: str) -> None:
        self._emit(Record(kind="note", step=step, data={"message": message}))

    def profile(self, step: int, summary: Dict[str, Any], **extra: Any) -> None:
        """Final (or periodic) online-profiler summary: per-worker
        p50/p99 step times, straggler events, and calibration deltas, as
        produced by ``OnlineProfiler.summary()``."""
        self._emit(Record(kind="profile", step=step, data={"summary": summary, **extra}))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[Record]:
        return [r for r in self.records if r.kind == kind]

    def loss_series(self) -> List[float]:
        """Mean loss per recorded step, in order."""
        out = []
        for record in self.of_kind("step"):
            losses = record.data.get("losses", [])
            if losses:
                out.append(sum(losses) / len(losses))
        return out

    def __len__(self) -> int:
        return len(self.records)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "RunLog":
        """Load a JSONL run log.

        A truncated trailing line — what a crash mid-``write`` leaves
        behind — is tolerated and flagged via the ``truncated`` attribute
        instead of making the whole log unreadable.  A malformed line
        anywhere else, or a structurally invalid record, raises a
        :class:`ValueError` carrying the file path and line number.
        """
        log = cls()
        log.truncated = False
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        last_content = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                log.records.append(Record.from_json(line))
            except json.JSONDecodeError as err:
                if lineno - 1 == last_content:
                    log.truncated = True
                    continue
                raise ValueError(f"{path}:{lineno}: malformed telemetry line: {err}") from err
            except ValueError as err:
                raise ValueError(f"{path}:{lineno}: {err}") from err
        return log
