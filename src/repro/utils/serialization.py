"""Stable serialization for checkpoints.

On-demand checkpoints (§3.2 "Adapting to elasticity") must round-trip the
EST contexts, the extra states, and the parameters without perturbing a
single bit — otherwise resuming after a scale event would break D1/D2
determinism.  We serialize with :mod:`pickle` (arrays pass through NumPy's
own reducer, which preserves dtype/bytes exactly) but keep the *structure*
a plain nested dict so tests can introspect it and hypothesis can fuzz the
round-trip.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Dict, Mapping, Tuple

import numpy as np


def state_dict_to_bytes(state: Mapping[str, Any]) -> bytes:
    """Serialize a (possibly nested) state dict to bytes."""
    buf = io.BytesIO()
    pickle.dump(dict(state), buf, protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getvalue()


def state_dict_from_bytes(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`state_dict_to_bytes`."""
    return pickle.load(io.BytesIO(data))


def flatten_state_dict(state: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts into dotted keys (``opt.momentum.conv1.weight``).

    Leaves (arrays, scalars, tuples) are kept as-is.  Useful for diffing two
    checkpoints and for the fingerprint helpers.
    """
    flat: Dict[str, Any] = {}
    for key, value in state.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_state_dict(value, name))
        else:
            flat[name] = value
    return flat


def unflatten_state_dict(flat: Mapping[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`flatten_state_dict` (best effort; keys split on dots)."""
    nested: Dict[str, Any] = {}
    for dotted, value in flat.items():
        parts = dotted.split(".")
        node = nested
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise ValueError(f"key conflict while unflattening at {dotted!r}")
        node[parts[-1]] = value
    return nested


def deep_equal(a: Any, b: Any) -> bool:
    """Structural equality that treats NumPy arrays bitwise.

    ``np.array_equal`` would call float equality (NaN != NaN); checkpoints
    must instead compare raw bytes, since optimizer states can legitimately
    hold NaN/Inf sentinels and bitwise identity is the contract.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()
        )
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        return set(a) == set(b) and all(deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(deep_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


def sizeof_state(state: Any) -> int:
    """Approximate in-memory footprint (bytes) of a nested state.

    The Fig. 10/11 benchmarks use this to report how small EST contexts are
    compared to full model replicas — the quantitative basis of the paper's
    "lightweight context switching" claim.
    """
    if isinstance(state, np.ndarray):
        return int(state.nbytes)
    if isinstance(state, Mapping):
        return sum(sizeof_state(v) for v in state.values())
    if isinstance(state, (list, tuple)):
        return sum(sizeof_state(v) for v in state)
    if isinstance(state, bytes):
        return len(state)
    if isinstance(state, (int, float, bool)) or state is None:
        return 8
    if isinstance(state, str):
        return len(state)
    return len(pickle.dumps(state))
