"""Stable serialization for checkpoints.

On-demand checkpoints (§3.2 "Adapting to elasticity") must round-trip the
EST contexts, the extra states, and the parameters without perturbing a
single bit — otherwise resuming after a scale event would break D1/D2
determinism.  We serialize with :mod:`pickle` (arrays pass through NumPy's
own reducer, which preserves dtype/bytes exactly) but keep the *structure*
a plain nested dict so tests can introspect it and hypothesis can fuzz the
round-trip.

The wire format is self-verifying: a fixed magic, the format version, the
payload length, and a CRC32 of the payload lead every blob.  A preemption
that truncates a checkpoint mid-write, or a storage bit-flip, surfaces as
a :class:`CheckpointCorruptError` at load time — never as a pickle
traceback, and never as a silently-wrong restore.  The fault-injection
subsystem (``repro.faults``) relies on corruption being *detectable*: its
``checkpoint_corrupt`` events flip bits and expect the resilience
controller to fall back to an older snapshot.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Dict, Mapping

import numpy as np

#: Leading magic of the framed wire format.
MAGIC = b"RPCK"

#: Version of the framed wire format (not the checkpoint *schema* version,
#: which lives in :data:`repro.core.checkpoint.FORMAT_VERSION`).
FORMAT_VERSION = 1

#: magic + u32 version + u32 crc32 + u64 payload length
_HEADER = struct.Struct("<4sIIQ")


class CheckpointCorruptError(ValueError):
    """A checkpoint blob failed integrity verification.

    Raised on truncated bytes, CRC mismatches (bit flips), unknown wire
    versions, and undecodable payloads — anything where the stored state
    cannot be trusted bit-for-bit.  Subclasses :class:`ValueError` so
    pre-existing ``except ValueError`` callers keep working.
    """


def state_dict_to_bytes(state: Mapping[str, Any]) -> bytes:
    """Serialize a (possibly nested) state dict to framed, checksummed bytes."""
    payload = pickle.dumps(dict(state), protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, zlib.crc32(payload), len(payload))
    return header + payload


def verify_bytes(data: Any) -> bool:
    """Cheap integrity probe: frame + CRC check without unpickling.

    Used by retention policies that must know which stored blobs are
    still restorable *before* deciding what to evict — a full decode per
    snapshot per trim would be wasteful and would execute pickle on
    possibly-hostile bytes.  Legacy unframed blobs (no magic) return
    ``True`` when non-empty: they carry no CRC, so there is nothing to
    falsify and :func:`state_dict_from_bytes` remains the arbiter.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return False
    data = bytes(data)
    if len(data) >= 4 and data[:4] == MAGIC:
        if len(data) < _HEADER.size:
            return False
        _, version, crc, length = _HEADER.unpack_from(data)
        if version != FORMAT_VERSION:
            return False
        payload = data[_HEADER.size:]
        return len(payload) == length and zlib.crc32(payload) == crc
    return len(data) > 0


def state_dict_from_bytes(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`state_dict_to_bytes`, with integrity verification.

    Raises :class:`CheckpointCorruptError` when the blob is truncated, has
    a flipped bit (CRC mismatch), carries an unknown wire version, or the
    payload fails to decode.  Legacy unframed blobs (raw pickle, written
    before the framed format) are still accepted, but without the CRC
    guarantee.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) >= 4 and data[:4] == MAGIC:
        if len(data) < _HEADER.size:
            raise CheckpointCorruptError(
                f"truncated checkpoint: {len(data)} bytes is shorter than the "
                f"{_HEADER.size}-byte header"
            )
        _, version, crc, length = _HEADER.unpack_from(data)
        if version != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"unsupported checkpoint wire format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        payload = data[_HEADER.size:]
        if len(payload) != length:
            raise CheckpointCorruptError(
                f"truncated checkpoint: header promises {length} payload bytes, "
                f"found {len(payload)}"
            )
        actual_crc = zlib.crc32(payload)
        if actual_crc != crc:
            raise CheckpointCorruptError(
                f"checkpoint payload failed CRC32 verification "
                f"(stored {crc:#010x}, computed {actual_crc:#010x}): "
                "the bytes were corrupted after writing"
            )
    else:
        payload = data  # legacy unframed blob: best-effort decode below
    try:
        state = pickle.loads(payload)
    except Exception as err:  # truncated/garbled pickle streams raise many types
        raise CheckpointCorruptError(
            f"checkpoint payload failed to decode: {err}"
        ) from err
    if not isinstance(state, dict):
        raise CheckpointCorruptError(
            f"checkpoint payload decoded to {type(state).__name__}, expected dict"
        )
    return state


def flatten_state_dict(state: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts into dotted keys (``opt.momentum.conv1.weight``).

    Leaves (arrays, scalars, tuples) are kept as-is.  Useful for diffing two
    checkpoints and for the fingerprint helpers.
    """
    flat: Dict[str, Any] = {}
    for key, value in state.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_state_dict(value, name))
        else:
            flat[name] = value
    return flat


def unflatten_state_dict(flat: Mapping[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`flatten_state_dict` (best effort; keys split on dots)."""
    nested: Dict[str, Any] = {}
    for dotted, value in flat.items():
        parts = dotted.split(".")
        node = nested
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise ValueError(f"key conflict while unflattening at {dotted!r}")
        node[parts[-1]] = value
    return nested


def deep_equal(a: Any, b: Any) -> bool:
    """Structural equality that treats NumPy arrays bitwise.

    ``np.array_equal`` would call float equality (NaN != NaN); checkpoints
    must instead compare raw bytes, since optimizer states can legitimately
    hold NaN/Inf sentinels and bitwise identity is the contract.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()
        )
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        return set(a) == set(b) and all(deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(deep_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


def sizeof_state(state: Any) -> int:
    """Approximate in-memory footprint (bytes) of a nested state.

    The Fig. 10/11 benchmarks use this to report how small EST contexts are
    compared to full model replicas — the quantitative basis of the paper's
    "lightweight context switching" claim.
    """
    if isinstance(state, np.ndarray):
        return int(state.nbytes)
    if isinstance(state, Mapping):
        return sum(sizeof_state(v) for v in state.values())
    if isinstance(state, (list, tuple)):
        return sum(sizeof_state(v) for v in state)
    if isinstance(state, bytes):
        return len(state)
    if isinstance(state, (int, float, bool)) or state is None:
        return 8
    if isinstance(state, str):
        return len(state)
    return len(pickle.dumps(state))
