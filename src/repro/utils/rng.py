"""Random-number stream management.

The paper (§3.3, "D0: static determinism") observes that the training stack
draws randomness from *three* distinct sources — the Python standard library
(``random``), NumPy, and the DL framework itself — and that every one of
them must be seeded at the start of training and have its state recorded in
the EST contexts / extra states of the on-demand checkpoint, or elasticity
silently perturbs data augmentation, dropout masks, and shuffling.

:class:`RNGBundle` packages the three streams together with save/restore of
the *complete* generator state (not just the seed), which is what lets an
EasyScaleThread resume mid-epoch on a different physical worker and draw the
exact same random numbers it would have drawn had the resources never
changed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np


class SeedError(ValueError):
    """Raised for invalid seed values (negative, non-integer, too large)."""


_MAX_SEED = 2**63 - 1


def _check_seed(seed: int) -> int:
    if not isinstance(seed, (int, np.integer)):
        raise SeedError(f"seed must be an integer, got {type(seed).__name__}")
    seed = int(seed)
    if seed < 0 or seed > _MAX_SEED:
        raise SeedError(f"seed must be in [0, 2**63-1], got {seed}")
    return seed


def derive_seed(base_seed: int, *scopes: Any) -> int:
    """Deterministically derive a child seed from a base seed and a scope path.

    EasyScale gives every EST, every data worker, and every framework
    component its own independent stream; all of them are derived from the
    single user-visible job seed via this function so that the derivation is
    (a) stable across runs and platforms and (b) independent of the number of
    physical workers — EST ``i`` gets the same stream whether it lives on
    GPU 0 of 8 or time-slices on the only remaining GPU.

    Scopes may be ints or strings, e.g. ``derive_seed(42, "est", 3)``.
    """
    base_seed = _check_seed(base_seed)
    h = hashlib.sha256()
    h.update(base_seed.to_bytes(8, "little"))
    for scope in scopes:
        h.update(b"\x00")
        h.update(str(scope).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & _MAX_SEED


@dataclass
class _StreamStates:
    python: Any
    numpy: Dict[str, Any]
    framework: Dict[str, Any]


class RNGBundle:
    """The three RNG streams of the DL software stack, with state capture.

    Attributes
    ----------
    python:
        A ``random.Random`` instance standing in for the interpreter-global
        stream (data augmentation in user code commonly uses it).
    numpy:
        A ``numpy.random.Generator`` (PCG64) standing in for NumPy's global
        stream (samplers, numeric augmentation).
    framework:
        A second independent ``numpy.random.Generator`` standing in for the
        framework's RNG (dropout masks, weight init) — the analogue of
        ``torch.Generator``.
    """

    def __init__(self, seed: int) -> None:
        seed = _check_seed(seed)
        self.seed = seed
        self.python = random.Random(derive_seed(seed, "python"))
        self.numpy = np.random.Generator(np.random.PCG64(derive_seed(seed, "numpy")))
        self.framework = np.random.Generator(np.random.PCG64(derive_seed(seed, "framework")))

    # ------------------------------------------------------------------
    # state capture / restore
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Snapshot all three streams.

        The returned dict is plain data (tuples/dicts/ints) so it can be
        embedded in an EST context or checkpoint and serialized stably.
        """
        return {
            "seed": self.seed,
            "python": self.python.getstate(),
            "numpy": self.numpy.bit_generator.state,
            "framework": self.framework.bit_generator.state,
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore all three streams from a snapshot taken by :meth:`get_state`."""
        self.seed = state["seed"]
        self.python.setstate(_as_python_state(state["python"]))
        self.numpy.bit_generator.state = state["numpy"]
        self.framework.bit_generator.state = state["framework"]

    def clone(self) -> "RNGBundle":
        """An independent copy positioned at the same point in all streams."""
        other = RNGBundle(self.seed)
        other.set_state(self.get_state())
        return other

    def spawn(self, *scopes: Any) -> "RNGBundle":
        """Derive an independent child bundle for a sub-component.

        Unlike :meth:`clone`, the child's streams are decorrelated from the
        parent's; the derivation depends only on the parent's *seed* and the
        scope path, never on how far the parent streams have advanced —
        which is what makes the assignment of streams to ESTs independent of
        the execution interleaving.
        """
        return RNGBundle(derive_seed(self.seed, *scopes))

    # ------------------------------------------------------------------
    # convenience draws (used by layers and loaders)
    # ------------------------------------------------------------------
    def uniform(self, shape, low: float = 0.0, high: float = 1.0, dtype=np.float32) -> np.ndarray:
        return self.framework.uniform(low, high, size=shape).astype(dtype)

    def normal(self, shape, mean: float = 0.0, std: float = 1.0, dtype=np.float32) -> np.ndarray:
        return self.framework.normal(mean, std, size=shape).astype(dtype)

    def bernoulli_mask(self, shape, keep_prob: float, dtype=np.float32) -> np.ndarray:
        """Dropout-style keep mask drawn from the framework stream."""
        return (self.framework.random(size=shape) < keep_prob).astype(dtype)

    def permutation(self, n: int) -> np.ndarray:
        """Shuffle order drawn from the numpy stream (sampler behaviour)."""
        return self.numpy.permutation(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RNGBundle(seed={self.seed})"


def _as_python_state(state: Any) -> tuple:
    """Normalize a python-random state that may have round-tripped through
    a serializer that converts tuples to lists."""
    if isinstance(state, tuple):
        return state
    version, internal, gauss = state
    return (version, tuple(internal), gauss)
