"""Structured event logging for the cluster simulator and benchmarks.

The trace and production experiments (Figs. 14–16) report timelines: job
submissions, allocations, scale in/out events, preemptions, completions.
:class:`EventLog` is the single sink that the discrete-event simulator
writes to; the benchmark harnesses then fold the log into the series the
paper plots (allocated GPUs over time, JCT distribution, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """A single timestamped simulator event.

    ``kind`` is a short machine-readable tag (``"job_submit"``,
    ``"scale_out"``, ``"preempt"``, ...), ``payload`` carries the details.
    """

    time: float
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    def as_tuple(self) -> Tuple[float, str, Tuple[Tuple[str, Any], ...]]:
        """Canonical hashable form: ``(time, kind, sorted payload items)``.

        Payload order is normalized so two logically identical events
        compare equal regardless of keyword order at the emit site.
        """
        return (self.time, self.kind, tuple(sorted(self.payload.items())))


class EventLog:
    """Append-only, time-ordered event collection with simple queries.

    An optional ``tracer`` (a :class:`repro.obs.trace.SpanTracer`) mirrors
    every event as an instant marker at its simulation timestamp, so a
    trace-sim run and any span-producing code export one merged timeline.
    """

    def __init__(self, tracer: Optional[Any] = None) -> None:
        self._events: List[Event] = []
        self._tracer = tracer

    def emit(self, time: float, kind: str, **payload: Any) -> Event:
        event = Event(time=time, kind=kind, payload=payload)
        if self._events and time < self._events[-1].time:
            raise ValueError(
                f"event out of order: {kind} at t={time} after t={self._events[-1].time}"
            )
        self._events.append(event)
        if self._tracer is not None:
            self._tracer.instant(kind, ts=time, cat="sched", **payload)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def as_tuples(self) -> List[Tuple[float, str, Tuple[Tuple[str, Any], ...]]]:
        """The whole log in canonical tuple form (exact-equality checks)."""
        return [e.as_tuple() for e in self._events]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical event stream.

        Two logs fingerprint identically iff every event matches in time,
        kind, and payload — the simulator fast-path tests use this to
        assert the heap core reproduces the reference core byte-for-byte.
        """
        import hashlib

        digest = hashlib.sha256()
        for event in self._events:
            digest.update(repr(event.as_tuple()).encode("utf-8"))
        return digest.hexdigest()

    def of_kind(self, *kinds: str) -> List[Event]:
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def between(self, start: float, end: float) -> List[Event]:
        return [e for e in self._events if start <= e.time < end]

    def timeline(
        self,
        value: Callable[[Event], Optional[float]],
        initial: float = 0.0,
    ) -> List[Tuple[float, float]]:
        """Fold events into a step series ``[(time, running_value), ...]``.

        ``value(event)`` returns a delta to apply at that event's time, or
        ``None`` to skip the event.  Used e.g. to turn allocation/release
        events into the "allocated GPUs over time" curve of Fig. 15.
        """
        series: List[Tuple[float, float]] = []
        current = initial
        for event in self._events:
            delta = value(event)
            if delta is None:
                continue
            current += delta
            series.append((event.time, current))
        return series
