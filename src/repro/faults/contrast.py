"""Fig-2-style contrast: the same fault plan vs. elastic baselines.

EasyScale's resilience story is only interesting against the backdrop the
paper paints in Fig. 2: conventional elastic frameworks *also* survive
faults — checkpoint, restart, re-shard — but surviving is not the same as
being **consistent**.  A TorchElastic-style restart rebuilds loaders from
the new world size and rescales the learning rate, so the faulted run
optimizes a different trajectory than the fault-free one.

This module runs the four-way experiment for one :class:`FaultPlan`:

=====================  ==========================================
EasyScale, fault-free  reference parameter fingerprint
EasyScale, faulted     :class:`ResilienceController` recovery
baseline, fault-free   single segment at the initial world size
baseline, faulted      world size drops at each capacity event
=====================  ==========================================

and reports whether each system's faulted fingerprint matches its own
fault-free reference.  The expected outcome — EasyScale bitwise-equal,
baseline divergent whenever the plan removes capacity — is asserted by
``tests/faults/test_contrast.py`` and rendered by ``repro faults replay
--contrast``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.engine import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.data.datasets import Dataset
from repro.elastic.base import ElasticBaselineTrainer, ScalingStrategy, TrainSegment
from repro.elastic.torchelastic import TorchElasticScaling
from repro.faults.controller import ResilienceController, ResilienceStats
from repro.faults.schedule import CAPACITY_KINDS, FaultPlan
from repro.hw.gpu import GPUType, gpu_type
from repro.models.registry import WorkloadSpec
from repro.utils.fingerprint import fingerprint_state_dict


def segments_from_plan(
    plan: FaultPlan,
    initial_world: int,
    total_epochs: int,
    horizon_steps: int,
) -> List[TrainSegment]:
    """Translate a fault plan into a baseline's world-size schedule.

    Baselines think in (world size, epochs) segments, not steps: each
    capacity-removing event becomes a restart boundary at the epoch
    proportional to its step position, after which the world shrinks by
    the event's cost (never below one worker).  Non-capacity events are
    invisible to the baseline — a slowdown or corrupted checkpoint does
    not change its hyper-parameters.
    """
    if initial_world < 1:
        raise ValueError("initial_world must be positive")
    if total_epochs < 1:
        raise ValueError("total_epochs must be positive")
    if horizon_steps < 1:
        raise ValueError("horizon_steps must be positive")
    # epoch boundary (0..total_epochs) for each capacity event, in order
    cuts: List[tuple] = []
    for event in plan.step_events:
        if event.kind not in CAPACITY_KINDS:
            continue
        cost = int(event.magnitude) if event.kind == "node_preempt" else 1
        epoch = round((event.at_step / horizon_steps) * total_epochs)
        cuts.append((min(max(epoch, 0), total_epochs), cost))

    segments: List[TrainSegment] = []
    world = initial_world
    start = 0
    for epoch, cost in cuts:
        if epoch > start:
            segments.append(TrainSegment(world_size=world, epochs=epoch - start))
            start = epoch
        world = max(1, world - cost)
    if start < total_epochs or not segments:
        segments.append(
            TrainSegment(world_size=world, epochs=max(total_epochs - start, 1))
        )
    return segments


def _baseline_fingerprint(
    spec: WorkloadSpec,
    dataset: Dataset,
    segments: Sequence[TrainSegment],
    strategy: ScalingStrategy,
    seed: int,
    base_lr: float,
    base_batch: int,
) -> tuple:
    trainer = ElasticBaselineTrainer(
        spec, dataset, strategy, base_lr=base_lr, base_batch=base_batch, seed=seed
    )
    losses = trainer.run_schedule(segments)
    digest = fingerprint_state_dict(
        {name: p.data for name, p in trainer.model.named_parameters()}
    )
    return digest, losses, list(trainer.lr_history)


def _engine_fingerprint(engine: EasyScaleEngine) -> str:
    return fingerprint_state_dict(
        {name: p.data for name, p in engine.model.named_parameters()}
    )


@dataclass
class ContrastResult:
    """Outcome of the four-way consistency experiment."""

    plan_seed: int
    total_steps: int
    easyscale_reference: str
    easyscale_faulted: str
    baseline_reference: str
    baseline_faulted: str
    baseline_name: str
    baseline_segments: List[TrainSegment] = field(default_factory=list)
    baseline_lr_reference: List[float] = field(default_factory=list)
    baseline_lr_faulted: List[float] = field(default_factory=list)
    resilience: Optional[ResilienceStats] = None

    @property
    def easyscale_consistent(self) -> bool:
        return self.easyscale_faulted == self.easyscale_reference

    @property
    def baseline_consistent(self) -> bool:
        return self.baseline_faulted == self.baseline_reference

    def to_dict(self) -> Dict[str, object]:
        return {
            "plan_seed": self.plan_seed,
            "total_steps": self.total_steps,
            "easyscale_consistent": self.easyscale_consistent,
            "baseline_consistent": self.baseline_consistent,
            "baseline": self.baseline_name,
            "fingerprints": {
                "easyscale_reference": self.easyscale_reference,
                "easyscale_faulted": self.easyscale_faulted,
                "baseline_reference": self.baseline_reference,
                "baseline_faulted": self.baseline_faulted,
            },
            "resilience": self.resilience.to_dict() if self.resilience else None,
        }

    def describe(self) -> str:
        def verdict(consistent: bool) -> str:
            return "BITWISE-IDENTICAL" if consistent else "DIVERGED"

        lines = [
            f"consistency contrast (plan seed {self.plan_seed}, "
            f"{self.total_steps} steps)",
            f"  easyscale : {verdict(self.easyscale_consistent)}  "
            f"{self.easyscale_faulted[:16]} vs {self.easyscale_reference[:16]}",
            f"  {self.baseline_name:<10}: {verdict(self.baseline_consistent)}  "
            f"{self.baseline_faulted[:16]} vs {self.baseline_reference[:16]}",
        ]
        worlds = "->".join(str(s.world_size) for s in self.baseline_segments)
        lines.append(f"  baseline world-size schedule: {worlds}")
        if self.resilience is not None and self.resilience.incidents:
            lines.append(
                f"  easyscale recoveries: {self.resilience.recoveries} "
                f"(lost {self.resilience.lost_steps} step(s), "
                f"mean MTTR {self.resilience.mean_mttr_s:.1f}s)"
            )
        return "\n".join(lines)


def run_contrast(
    spec: WorkloadSpec,
    dataset: Dataset,
    config: EasyScaleJobConfig,
    optimizer_factory: Callable,
    gpus: Sequence[Union[str, GPUType]],
    plan: FaultPlan,
    total_steps: int,
    baseline_epochs: int = 2,
    strategy: Optional[ScalingStrategy] = None,
    base_lr: float = 0.05,
) -> ContrastResult:
    """Run the four-way experiment for one plan on one GPU pool."""
    if total_steps < 1:
        raise ValueError("total_steps must be positive")
    pool: List[GPUType] = [
        g if isinstance(g, GPUType) else gpu_type(str(g).upper()) for g in gpus
    ]
    if not pool:
        raise ValueError("need at least one GPU")
    strategy = strategy or TorchElasticScaling()

    # EasyScale reference: same config, no faults
    reference = EasyScaleEngine(
        spec,
        dataset,
        config,
        optimizer_factory,
        WorkerAssignment.balanced(pool[: config.num_ests], config.num_ests),
    )
    for _ in range(total_steps):
        reference.run_global_step()

    # EasyScale under the plan
    controller = ResilienceController(
        spec, dataset, config, optimizer_factory, pool, plan
    )
    stats = controller.run(total_steps)

    # baseline, fault-free vs. the plan's world-size schedule
    faulted_segments = segments_from_plan(
        plan, len(pool), baseline_epochs, total_steps
    )
    free_segments = [TrainSegment(world_size=len(pool), epochs=baseline_epochs)]
    base_ref, _, lr_ref = _baseline_fingerprint(
        spec, dataset, free_segments, strategy, config.seed, base_lr, config.batch_size
    )
    base_fault, _, lr_fault = _baseline_fingerprint(
        spec, dataset, faulted_segments, strategy, config.seed, base_lr, config.batch_size
    )

    return ContrastResult(
        plan_seed=plan.seed,
        total_steps=total_steps,
        easyscale_reference=_engine_fingerprint(reference),
        easyscale_faulted=_engine_fingerprint(controller.engine),
        baseline_reference=base_ref,
        baseline_faulted=base_fault,
        baseline_name=strategy.name,
        baseline_segments=faulted_segments,
        baseline_lr_reference=lr_ref,
        baseline_lr_faulted=lr_fault,
        resilience=stats,
    )
