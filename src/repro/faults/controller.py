"""Resilience controller: detect → checkpoint → replan → restore.

The controller is the supervision loop the paper's AIMaster implies but
never spells out (§4): it drives an :class:`EasyScaleEngine` through a
:class:`~repro.faults.schedule.FaultPlan` and keeps the job's bitwise
guarantee through every failure.  Its state machine:

::

    RUNNING ──graceful notice──▶ CHECKPOINT (on-demand, current step)
       │                              │
       │ abrupt fault                 ▼
       ▼                         REPLAN (IntraJobScheduler on survivors)
    DETECT ──▶ FALLBACK               │
       (latest valid periodic         ▼
        snapshot; corrupt copies  RESTORE (from_checkpoint, bounded
        skipped with backoff)      retry/backoff) ──▶ RUNNING

Accounting is explicit, because the paper's JCT claims hinge on it: the
controller's simulated clock decomposes exactly into ``compute_s`` (the
engine's own step time, including re-executed steps) plus ``downtime_s``
(restart delays, injected delays, corruption-retry backoff).  Per
incident it records the **lost steps** (fault step minus restore step)
and the **MTTR** — the simulated seconds from the fault until the job
has re-reached and completed the step it was on when the fault hit.

Recovery preserves bitwise identity by construction: every restore path
goes through checkpoint bytes that round-trip exactly, and re-executed
steps replay the same RNG streams, batch order, and reduction schedule.
The property-based chaos tests assert the end-to-end consequence: *any*
plan yields a final model bitwise-identical to the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import obs
from repro.core.checkpoint import Checkpoint, CheckpointCorruptError
from repro.core.engine import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.data.datasets import Dataset
from repro.faults.injector import (
    FaultInjector,
    FaultSignal,
    NodePreemptSignal,
    WorkerCrashSignal,
)
from repro.faults.manager import CheckpointManager
from repro.faults.schedule import FaultEvent, FaultPlan
from repro.hw.gpu import GPUType, gpu_type
from repro.hw.timing import static_capability
from repro.models.registry import WorkloadSpec
from repro.obs import flightrec
from repro.sched.companion import CompanionModule
from repro.sched.intra import IntraJobScheduler


class RecoveryFailedError(RuntimeError):
    """No restorable snapshot survived within the retry budget."""


@dataclass
class RecoveryIncident:
    """One fault and the recovery that answered it."""

    kind: str
    fault_step: int
    restore_step: int
    retries: int
    downtime_s: float
    clock_at_fault: float
    #: simulated seconds from fault to re-completing the fault step
    mttr_s: Optional[float] = None

    @property
    def lost_steps(self) -> int:
        return max(0, self.fault_step - self.restore_step)


@dataclass
class ResilienceStats:
    """Lifetime accounting of a controller run."""

    faults_injected: int = 0
    recoveries: int = 0
    downtime_s: float = 0.0
    incidents: List[RecoveryIncident] = field(default_factory=list)

    @property
    def lost_steps(self) -> int:
        return sum(i.lost_steps for i in self.incidents)

    @property
    def mttr_values(self) -> List[float]:
        return [i.mttr_s for i in self.incidents if i.mttr_s is not None]

    @property
    def mean_mttr_s(self) -> float:
        values = self.mttr_values
        return sum(values) / len(values) if values else 0.0

    @property
    def max_mttr_s(self) -> float:
        return max(self.mttr_values, default=0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "faults_injected": self.faults_injected,
            "recoveries": self.recoveries,
            "lost_steps": self.lost_steps,
            "downtime_s": self.downtime_s,
            "mean_mttr_s": self.mean_mttr_s,
            "max_mttr_s": self.max_mttr_s,
            "incidents": [
                {
                    "kind": i.kind,
                    "fault_step": i.fault_step,
                    "restore_step": i.restore_step,
                    "lost_steps": i.lost_steps,
                    "retries": i.retries,
                    "downtime_s": i.downtime_s,
                    "mttr_s": i.mttr_s,
                }
                for i in self.incidents
            ],
        }

    def describe(self) -> str:
        lines = [
            f"{self.faults_injected} fault(s) injected, "
            f"{self.recoveries} recovery(ies), "
            f"{self.lost_steps} step(s) re-executed, "
            f"{self.downtime_s:.1f}s downtime"
        ]
        if self.mttr_values:
            lines.append(
                f"MTTR: mean {self.mean_mttr_s:.1f}s  max {self.max_mttr_s:.1f}s"
            )
        for i in self.incidents:
            mttr = f"{i.mttr_s:.1f}s" if i.mttr_s is not None else "open"
            lines.append(
                f"  {i.kind:<18} at step {i.fault_step:>4} -> restored step "
                f"{i.restore_step:>4} (lost {i.lost_steps}, retries {i.retries}, "
                f"mttr {mttr})"
            )
        return "\n".join(lines)


class ResilienceController:
    """Supervise one EasyScale job through a fault plan.

    The controller owns the GPU pool, a :class:`CheckpointManager` for
    periodic snapshots, an :class:`IntraJobScheduler` for replanning on
    survivors, and the engine itself (rebuilt on every recovery, like the
    restarted processes of the real system).

    When an audit trail is active (``obs.configure(audit=True)``), it
    must be created with ``audit_rewind=True`` — recovered runs re-record
    the steps they re-execute.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        dataset: Dataset,
        config: EasyScaleJobConfig,
        optimizer_factory: Callable,
        gpus: Sequence[Union[str, GPUType]],
        plan: FaultPlan,
        snapshot_interval: int = 4,
        retention: int = 4,
        snapshot_dir: Optional[str] = None,
        restart_delay_s: float = 15.0,
        backoff_s: float = 5.0,
        max_retries: int = 3,
        transform=None,
        scheduler_factory=None,
        telemetry=None,
        profiler=None,
        backend=None,
    ) -> None:
        if not gpus:
            raise ValueError("controller needs at least one GPU")
        if restart_delay_s < 0 or backoff_s < 0:
            raise ValueError("delays must be non-negative")
        if max_retries < 1:
            raise ValueError("max_retries must be positive")
        self.spec = spec
        self.dataset = dataset
        self.config = config
        self.optimizer_factory = optimizer_factory
        self.transform = transform
        self.scheduler_factory = scheduler_factory
        self.telemetry = telemetry
        self.profiler = profiler
        # resolve once so every engine rebuild (recovery, cold restart)
        # reuses the same backend object — a process pool must survive
        # restarts; the controller never closes it (its creator does)
        from repro.exec import resolve_backend

        self.backend = resolve_backend(backend)
        self.pool: List[GPUType] = [
            g if isinstance(g, GPUType) else gpu_type(str(g).upper()) for g in gpus
        ]
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.manager = CheckpointManager(
            interval=snapshot_interval, retention=retention, directory=snapshot_dir
        )
        self.restart_delay_s = restart_delay_s
        self.backoff_s = backoff_s
        self.max_retries = max_retries
        self.stats = ResilienceStats()
        #: engine compute seconds, including re-executed steps
        self.compute_s = 0.0
        #: per-step losses (rewound and overwritten on recovery)
        self.losses: List[List[float]] = []
        self._pending_delay = 0.0
        self._open_incidents: List[RecoveryIncident] = []

        trail = obs.audit_trail()
        if trail is not None and not getattr(trail, "allow_rewind", False):
            raise ValueError(
                "the active audit trail forbids rewinds; configure it with "
                "obs.configure(..., audit_rewind=True) before attaching a "
                "ResilienceController (recoveries re-record re-executed steps)"
            )

        self.scheduler = IntraJobScheduler(
            job_id="resilient-job",
            companion=CompanionModule(
                max_p=config.num_ests,
                capability=static_capability(spec, config.determinism.kernel_policy),
            ),
        )
        self.engine = EasyScaleEngine(
            spec,
            dataset,
            config,
            optimizer_factory,
            self._plan_assignment(),
            transform=transform,
            scheduler_factory=scheduler_factory,
            telemetry=telemetry,
            profiler=profiler,
            fault_injector=self.injector,
            backend=self.backend,
        )
        self.manager.take(self.engine)  # step-0 snapshot: always restorable

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Simulated job clock: compute plus recovery downtime, exactly."""
        return self.compute_s + self.stats.downtime_s

    def _owned(self) -> Dict[str, int]:
        owned: Dict[str, int] = {}
        for gpu in self.pool:
            key = gpu.name.lower()
            owned[key] = owned.get(key, 0) + 1
        return owned

    def _plan_assignment(self) -> WorkerAssignment:
        """EST placement on the current pool via the intra-job scheduler."""
        assignment = self.scheduler.on_decision(self._owned())
        if assignment is not None:
            return assignment
        # no feasible scored plan (tiny pools, unknown types): fall back to
        # a balanced split over at most num_ests survivors
        usable = self.pool[: self.config.num_ests]
        return WorkerAssignment.balanced(usable, self.config.num_ests)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, total_steps: int) -> ResilienceStats:
        """Train to ``total_steps`` global steps, surviving the plan."""
        if total_steps < 0:
            raise ValueError("total_steps must be non-negative")
        while self.engine.global_step < total_steps:
            step = self.engine.global_step
            self._on_boundary(step)
            before = self.engine.sim_time
            try:
                losses = self.engine.run_global_step()
            except FaultSignal as signal:
                self._handle_abrupt(signal)
                continue
            self.compute_s += self.engine.sim_time - before
            del self.losses[step:]
            self.losses.append(losses)
            self._close_incidents()
            self.manager.maybe_take(self.engine)
        return self.stats

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def _on_boundary(self, step: int) -> None:
        """Step-boundary hook: consume due graceful plan events.

        Subclasses (the membership controller) extend this to apply
        their own boundary-negotiated transitions before the fault
        plan's graceful events fire.
        """
        for event in self.injector.boundary_events(step):
            self._handle_graceful(event)

    def _note_fault(self, event: FaultEvent) -> None:
        self.stats.faults_injected += 1
        flightrec.record(
            "resilience.detect",
            fault=event.kind,
            step=self.engine.global_step,
            magnitude=event.magnitude,
        )
        if obs.is_enabled():
            obs.instant(
                "fault.injected",
                cat="faults",
                kind=event.kind,
                step=self.engine.global_step,
                magnitude=event.magnitude,
            )
            obs.metrics().counter("faults_injected_total", kind=event.kind).inc()

    def _handle_graceful(self, event: FaultEvent) -> None:
        self._note_fault(event)
        if event.kind == "slowdown":
            victim = event.target_worker(len(self.engine.workers))
            self.engine.workers[victim].slowdown = float(event.magnitude)
        elif event.kind == "restart_delay":
            self._pending_delay += float(event.magnitude)
        elif event.kind == "checkpoint_corrupt":
            self.manager.corrupt_latest()
        elif event.kind == "gpu_revoke":
            self._shrink_pool(event, count=1)
            # graceful: the failing side is still reachable, so the
            # on-demand checkpoint carries the *current* step — no loss
            ckpt = self.engine.checkpoint()
            self._recover(event, ckpt, restore_step=self.engine.global_step, retries=0)
        else:  # pragma: no cover - plan validation forbids this
            raise AssertionError(f"unexpected graceful fault {event.kind}")

    def _handle_abrupt(self, signal: FaultSignal) -> None:
        event = signal.event
        self._note_fault(event)
        if isinstance(signal, NodePreemptSignal):
            self._shrink_pool(event, count=int(event.magnitude))
        elif not isinstance(signal, WorkerCrashSignal):  # pragma: no cover
            raise AssertionError(f"unexpected fault signal {type(signal).__name__}")
        ckpt, retries, backoff = self._fallback_checkpoint()
        self.stats.downtime_s += backoff
        restore_step = int(ckpt.extra["global_step"]) if ckpt is not None else 0
        self._recover(event, ckpt, restore_step=restore_step, retries=retries)

    def _shrink_pool(self, event: FaultEvent, count: int) -> None:
        """Remove ``count`` GPUs (never the last one) from the pool."""
        count = max(1, count)
        preferred = event.target_gtype()
        for _ in range(count):
            if len(self.pool) <= 1:
                break  # a job always keeps one survivor to resume on
            idx = len(self.pool) - 1
            if preferred is not None:
                for i in range(len(self.pool) - 1, -1, -1):
                    if self.pool[i].name.lower() == preferred:
                        idx = i
                        break
            self.pool.pop(idx)

    def _fallback_checkpoint(self):
        """Newest valid periodic snapshot, with bounded retry/backoff.

        Each failed decode (CRC mismatch, truncation, schema damage) costs
        one retry and an exponentially growing backoff delay, modeling the
        re-fetch from a slower/older storage tier.  Running out of
        snapshots is not fatal: engine construction is deterministic in
        (config, seed), so the job-submission state itself is always a
        valid restore point (``None`` → cold restart, all steps lost).
        Only exhausting the retry budget while corrupt snapshots remain
        raises :class:`RecoveryFailedError`.
        """
        fault_step = self.engine.global_step
        retries = 0
        backoff = 0.0
        while True:
            candidates = self.manager.candidates(at_or_before=fault_step)
            if not candidates:
                return None, retries, backoff
            if retries >= self.max_retries:
                raise RecoveryFailedError(
                    f"no restorable snapshot at or before step {fault_step} "
                    f"within {self.max_retries} retries "
                    f"({self.manager.corrupted_detected} corrupt snapshot(s) seen)"
                )
            try:
                return self.manager.decode(candidates[0]), retries, backoff
            except CheckpointCorruptError:
                retries += 1
                backoff += self.backoff_s * (2 ** (retries - 1))

    def _recover(
        self,
        event: FaultEvent,
        ckpt: Optional[Checkpoint],
        restore_step: int,
        retries: int,
    ) -> None:
        fault_step = self.engine.global_step
        delay = self.restart_delay_s + self._pending_delay
        self._pending_delay = 0.0
        self.stats.downtime_s += delay
        incident = RecoveryIncident(
            kind=event.kind,
            fault_step=fault_step,
            restore_step=restore_step,
            retries=retries,
            downtime_s=delay,
            clock_at_fault=self.clock - delay,
        )
        # the failed engine is abandoned here: any RNG/BN write-back the
        # backend deferred for its steps must never reach the rebuilt
        # engine's state.  A checkpoint restore discards on its own, but
        # the cold-restart path below never restores — drop it explicitly.
        self.backend.discard_pending()
        assignment = self._plan_assignment()
        flightrec.record(
            "resilience.replan",
            step=fault_step,
            fault=event.kind,
            gpus=[g.name for g in assignment.gpus],
            dialects=[g.dialect for g in assignment.gpus],
        )
        if ckpt is not None:
            self.engine = EasyScaleEngine.from_checkpoint(
                self.spec,
                self.dataset,
                ckpt,
                self.optimizer_factory,
                assignment,
                transform=self.transform,
                scheduler_factory=self.scheduler_factory,
                config=self.config,
                telemetry=self.telemetry,
                profiler=self.profiler,
                fault_injector=self.injector,
                backend=self.backend,
            )
        else:
            # cold restart: every snapshot is gone, so the whole run to
            # this point is lost — worth a postmortem even though the job
            # itself survives (deterministic construction reproduces the
            # job-submission state bit for bit)
            try:
                flightrec.dump(
                    "cold_restart",
                    crash={
                        "step": fault_step,
                        "kind": event.kind,
                        "restore_step": 0,
                        "retries": retries,
                    },
                )
            except OSError:
                pass
            self.engine = EasyScaleEngine(
                self.spec,
                self.dataset,
                self.config,
                self.optimizer_factory,
                assignment,
                transform=self.transform,
                scheduler_factory=self.scheduler_factory,
                telemetry=self.telemetry,
                profiler=self.profiler,
                fault_injector=self.injector,
                backend=self.backend,
            )
            self.manager.take(self.engine)  # re-seed the snapshot chain
        flightrec.record(
            "resilience.restore",
            fault=event.kind,
            fault_step=fault_step,
            restore_step=restore_step,
            retries=retries,
            downtime_s=delay,
        )
        self.stats.recoveries += 1
        self.stats.incidents.append(incident)
        self._open_incidents.append(incident)
        if obs.is_enabled():
            obs.instant(
                "fault.recovered",
                cat="faults",
                kind=event.kind,
                fault_step=fault_step,
                restore_step=restore_step,
                gpus=[g.name for g in assignment.gpus],
            )
            registry = obs.metrics()
            registry.counter("recoveries_total").inc()
            registry.counter("recovery_lost_steps_total").inc(incident.lost_steps)
            registry.gauge("recovery_downtime_seconds_total").set(self.stats.downtime_s)

    def _close_incidents(self) -> None:
        """An incident closes once the job completes its fault step again."""
        still_open: List[RecoveryIncident] = []
        for incident in self._open_incidents:
            if self.engine.global_step > incident.fault_step:
                incident.mttr_s = self.clock - incident.clock_at_fault
                if obs.is_enabled():
                    obs.metrics().histogram("recovery_mttr_seconds").observe(
                        incident.mttr_s
                    )
            else:
                still_open.append(incident)
        self._open_incidents = still_open
