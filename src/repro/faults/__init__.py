"""repro.faults: deterministic fault injection and bitwise-safe recovery.

The subsystem has four layers, composing bottom-up:

- :mod:`repro.faults.schedule` — seeded, JSON-round-trippable
  :class:`FaultPlan`\\ s of timed :class:`FaultEvent`\\ s;
- :mod:`repro.faults.injector` — :class:`FaultInjector` hooks firing plan
  events inside the live engine/workers (and :class:`SimFaultInjector`
  for the cluster simulator's sim-time domain);
- :mod:`repro.faults.manager` — :class:`CheckpointManager` keeping
  CRC-verified periodic snapshots with retention;
- :mod:`repro.faults.controller` — :class:`ResilienceController` driving
  detect → checkpoint → replan → restore with MTTR accounting.

:mod:`repro.faults.contrast` runs the Fig-2-style experiment contrasting
EasyScale's bitwise recovery against elastic baselines under the same
plans.
"""

from repro.faults.contrast import ContrastResult, run_contrast, segments_from_plan
from repro.faults.controller import (
    RecoveryFailedError,
    RecoveryIncident,
    ResilienceController,
    ResilienceStats,
)
from repro.faults.injector import (
    FaultInjector,
    FaultSignal,
    NodePreemptSignal,
    SimFaultInjector,
    WorkerCrashSignal,
)
from repro.faults.manager import CheckpointManager, Snapshot
from repro.faults.schedule import (
    ABRUPT_KINDS,
    CAPACITY_KINDS,
    FAULT_KINDS,
    GRACEFUL_KINDS,
    PLAN_FORMAT_VERSION,
    FaultEvent,
    FaultPlan,
    random_plan,
    random_sim_plan,
)

__all__ = [
    "ABRUPT_KINDS",
    "CAPACITY_KINDS",
    "FAULT_KINDS",
    "GRACEFUL_KINDS",
    "PLAN_FORMAT_VERSION",
    "CheckpointManager",
    "ContrastResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSignal",
    "NodePreemptSignal",
    "RecoveryFailedError",
    "RecoveryIncident",
    "ResilienceController",
    "ResilienceStats",
    "SimFaultInjector",
    "Snapshot",
    "WorkerCrashSignal",
    "random_plan",
    "random_sim_plan",
    "run_contrast",
    "segments_from_plan",
]
