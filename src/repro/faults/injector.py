"""Fault injection hooks for the engine, workers, and simulator.

The injector is the bridge between a declarative
:class:`~repro.faults.schedule.FaultPlan` and the live system.  It fires
each event exactly once, at a deterministic point:

- **engine hook** — :meth:`FaultInjector.on_step_boundary` is called by
  :meth:`EasyScaleEngine._run_global_step` before any batch is loaded; a
  due ``node_preempt`` raises :class:`NodePreemptSignal` there.
- **worker hook** — :meth:`FaultInjector.on_local_step` is called by
  :class:`~repro.core.worker.EasyScaleWorker` at the start of every EST
  local step; a due ``worker_crash`` raises :class:`WorkerCrashSignal`
  *mid-step*, after sibling ESTs may already have mutated shared state —
  exactly the situation where only a checkpoint-based restore can keep
  the bitwise guarantee.
- **controller events** — graceful kinds (``gpu_revoke``, ``slowdown``,
  ``checkpoint_corrupt``, ``restart_delay``) are pulled by the
  :class:`~repro.faults.controller.ResilienceController` at each step
  boundary via :meth:`boundary_events`.

Signals deliberately do **not** derive from ``Exception`` subclasses the
training stack catches anywhere — they propagate through the engine to
whoever supervises it, like a process death would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.faults.schedule import GRACEFUL_KINDS, FaultEvent, FaultPlan
from repro.obs import flightrec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core<->faults cycle
    from repro.core.engine import EasyScaleEngine


class FaultSignal(Exception):
    """Base class for injected failures surfacing out of the engine."""

    def __init__(self, event: FaultEvent, detail: str = "") -> None:
        self.event = event
        where = (
            f"step {event.at_step}" if event.at_step is not None
            else f"t={event.at_time}"
        )
        super().__init__(f"injected {event.kind} at {where}{detail}")


class WorkerCrashSignal(FaultSignal):
    """A worker process died mid-step; its in-memory state is gone."""

    def __init__(self, event: FaultEvent, worker_id: int, vrank: int) -> None:
        self.worker_id = worker_id
        self.vrank = vrank
        super().__init__(event, detail=f" (worker {worker_id}, during EST {vrank})")


class NodePreemptSignal(FaultSignal):
    """A node was reclaimed; several GPUs vanish at once."""


class FaultInjector:
    """Fire a plan's step-triggered events into a live engine, exactly once.

    The injector carries no numerical state and never touches the model,
    RNG, or loader — attaching one to a fault-free plan is a bitwise
    no-op.  It survives engine rebuilds (``from_checkpoint`` passes it
    through), and because fired events stay fired, a fault is not
    re-raised when the recovered engine re-executes the same step.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._events: List[FaultEvent] = list(plan.step_events)
        self._fired: set = set()
        self._current_step: Optional[int] = None
        self._num_workers: int = 1

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget fired state (reuse the injector for a fresh run)."""
        self._fired.clear()
        self._current_step = None
        self._num_workers = 1

    @property
    def fired_count(self) -> int:
        return len(self._fired)

    @property
    def exhausted(self) -> bool:
        return len(self._fired) == len(self._events)

    def _due(self, step: int, kinds) -> Iterator[Tuple[int, FaultEvent]]:
        for idx, event in enumerate(self._events):
            if idx in self._fired or event.at_step != step:
                continue
            if event.kind in kinds:
                yield idx, event

    # ------------------------------------------------------------------
    # hooks called by the engine / worker
    # ------------------------------------------------------------------
    def on_step_boundary(self, engine: "EasyScaleEngine") -> None:
        """Called at the top of every global step; may raise a signal."""
        self._current_step = engine.global_step
        self._num_workers = engine.assignment.num_workers
        for idx, event in self._due(engine.global_step, {"node_preempt"}):
            self._fired.add(idx)
            flightrec.record(
                "fault.detect", fault=event.kind, step=engine.global_step
            )
            raise NodePreemptSignal(event)

    def on_local_step(self, worker_id: int, vrank: int) -> None:
        """Called by each worker before every EST local step."""
        if self._current_step is None:
            return
        for idx, event in self._due(self._current_step, {"worker_crash"}):
            if event.target_worker(self._num_workers) == worker_id:
                self._fired.add(idx)
                flightrec.record(
                    "fault.detect",
                    fault=event.kind,
                    step=self._current_step,
                    worker=worker_id,
                    vrank=vrank,
                )
                raise WorkerCrashSignal(event, worker_id=worker_id, vrank=vrank)

    # ------------------------------------------------------------------
    # controller-driven (graceful) events
    # ------------------------------------------------------------------
    def boundary_events(self, step: int) -> List[FaultEvent]:
        """Consume the graceful events due at this step boundary."""
        due: List[FaultEvent] = []
        for idx, event in self._due(step, GRACEFUL_KINDS):
            self._fired.add(idx)
            flightrec.record(
                "fault.graceful",
                fault=event.kind,
                step=step,
                target=event.target,
                magnitude=event.magnitude,
            )
            due.append(event)
        return due

    def pending_events(self) -> List[FaultEvent]:
        """Events not yet fired (diagnostics / completeness checks)."""
        return [e for i, e in enumerate(self._events) if i not in self._fired]


class SimFaultInjector:
    """Time-triggered counterpart for the cluster simulator.

    The simulator treats each event's ``at_time`` as a decision point:
    :meth:`next_time` feeds the event loop's candidate times, and
    :meth:`due` pops every event whose time has arrived.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._events: List[FaultEvent] = sorted(
            plan.time_events, key=lambda e: e.trigger
        )
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._events)

    def next_time(self, after: float) -> Optional[float]:
        """The earliest un-fired event time strictly after ``after``."""
        for event in self._events[self._cursor:]:
            if event.at_time is not None and event.at_time > after:
                return float(event.at_time)
        return None

    def due(self, now: float) -> List[FaultEvent]:
        """Pop every event with ``at_time <= now`` (fired exactly once)."""
        fired: List[FaultEvent] = []
        while self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.at_time is None or event.at_time > now:
                break
            fired.append(event)
            self._cursor += 1
        return fired
