"""Periodic checkpoint manager: retention, integrity, corruption fallback.

On-demand checkpoints cover the *graceful* path (the scheduler announces
a scale event, the engine snapshots at the next step boundary).  Crashes
and preemptions give no warning, so the resilience controller also keeps
**periodic** snapshots: every ``interval`` global steps, the engine state
is serialized to the hardened wire format (CRC32 + version framing from
:mod:`repro.utils.serialization`) and retained newest-first up to
``retention`` entries.

Snapshots are stored as *bytes*, not live objects — that is the point:
restore must survive the round trip a real preemption forces, and the
``checkpoint_corrupt`` fault can flip a bit in the stored blob to prove
the CRC layer catches it and the controller falls back to an older copy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.checkpoint import Checkpoint, CheckpointCorruptError
from repro.utils.serialization import verify_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import EasyScaleEngine


@dataclass
class Snapshot:
    """One retained periodic checkpoint."""

    step: int
    data: bytes
    #: path on disk when the manager persists (None = memory only)
    path: Optional[str] = None
    #: set once a restore attempt failed integrity verification
    corrupt: bool = False

    @property
    def size_bytes(self) -> int:
        return len(self.data)


class CheckpointManager:
    """Keep the last ``retention`` periodic snapshots of an engine.

    ``directory=None`` retains blobs in memory (the common test/simulation
    mode); with a directory, every snapshot is also written atomically via
    :meth:`Checkpoint.save` semantics so it survives process death.
    """

    def __init__(
        self,
        interval: int = 5,
        retention: int = 3,
        directory: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("snapshot interval must be positive")
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.interval = interval
        self.retention = retention
        self.directory = os.fspath(directory) if directory is not None else None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
        self.snapshots: List[Snapshot] = []
        #: lifetime counters (observability)
        self.taken = 0
        self.corrupted_detected = 0

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def take(self, engine: "EasyScaleEngine") -> Snapshot:
        """Snapshot the engine now (always allowed at a step boundary)."""
        data = engine.checkpoint().to_bytes()
        step = engine.global_step
        # re-snapshotting the same step (e.g. after a recovery rewound to
        # it) replaces the stale copy instead of duplicating the step
        self.snapshots = [s for s in self.snapshots if s.step != step]
        snapshot = Snapshot(step=step, data=data)
        if self.directory is not None:
            snapshot.path = os.path.join(self.directory, f"step-{step:08d}.ckpt")
            tmp = snapshot.path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, snapshot.path)
        self.snapshots.append(snapshot)
        self.snapshots.sort(key=lambda s: s.step)
        self.taken += 1
        self._trim()
        return snapshot

    def maybe_take(self, engine: "EasyScaleEngine") -> Optional[Snapshot]:
        """Take a snapshot when the engine sits on an interval boundary."""
        if engine.global_step % self.interval == 0:
            return self.take(engine)
        return None

    def _trim(self) -> None:
        while len(self.snapshots) > self.retention:
            victim = self._eviction_victim()
            self.snapshots.remove(victim)
            if victim.path is not None and os.path.exists(victim.path):
                os.unlink(victim.path)

    def _eviction_victim(self) -> Snapshot:
        """Choose what retention drops: oldest *invalid* snapshot first.

        Age-only eviction had a fatal interplay with corruption: when the
        ``checkpoint_corrupt`` fault damages the newest blobs, the oldest
        snapshot can be the **last CRC-valid restore point** — evicting it
        leaves only garbage and turns the next crash into a cold restart
        (or a :class:`RecoveryFailedError`).  Integrity is probed with the
        cheap frame/CRC check (:func:`repro.utils.serialization.verify_bytes`),
        so known-corrupt and silently-bit-flipped blobs are reclaimed
        before any valid one; with all snapshots valid this degrades to
        the original drop-the-oldest behaviour.
        """
        for snapshot in self.snapshots:  # sorted oldest-first by step
            if snapshot.corrupt or not verify_bytes(snapshot.data):
                return snapshot
        return self.snapshots[0]

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def candidates(self, at_or_before: Optional[int] = None) -> List[Snapshot]:
        """Restore candidates newest-first, excluding known-corrupt copies."""
        pool = [
            s
            for s in self.snapshots
            if not s.corrupt and (at_or_before is None or s.step <= at_or_before)
        ]
        return sorted(pool, key=lambda s: -s.step)

    def decode(self, snapshot: Snapshot) -> Checkpoint:
        """Decode a snapshot, marking it corrupt when verification fails."""
        try:
            ckpt = Checkpoint.from_bytes(snapshot.data)
        except CheckpointCorruptError:
            snapshot.corrupt = True
            self.corrupted_detected += 1
            raise
        if ckpt.extra.get("global_step") != snapshot.step:
            snapshot.corrupt = True
            self.corrupted_detected += 1
            raise CheckpointCorruptError(
                f"snapshot labeled step {snapshot.step} decodes to step "
                f"{ckpt.extra.get('global_step')}"
            )
        return ckpt

    def latest(self) -> Optional[Snapshot]:
        good = self.candidates()
        return good[0] if good else None

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------
    def corrupt_latest(self, bit: int = 7) -> Optional[Snapshot]:
        """Flip one payload bit in the newest snapshot (the
        ``checkpoint_corrupt`` fault).  Deterministic: always the same bit
        of the byte at 2/3 of the blob (inside the pickled payload, past
        the header, so the CRC — not the frame parser — must catch it)."""
        target = self.latest()
        if target is None:
            return None
        blob = bytearray(target.data)
        pos = (len(blob) * 2) // 3
        blob[pos] ^= 1 << (bit % 8)
        target.data = bytes(blob)
        if target.path is not None:
            with open(target.path, "wb") as fh:
                fh.write(target.data)
        return target

    def describe(self) -> str:
        lines = [
            f"checkpoint manager: every {self.interval} steps, "
            f"retain {self.retention} ({self.taken} taken, "
            f"{self.corrupted_detected} corruption(s) detected)"
        ]
        for snapshot in self.snapshots:
            flag = "  CORRUPT" if snapshot.corrupt else ""
            lines.append(
                f"  step {snapshot.step:>6}  {snapshot.size_bytes:>8} B{flag}"
            )
        return "\n".join(lines)
