"""Declarative, seeded fault plans: failure as a replayable input.

EasyScale's headline claim (§3.2, §4) is that a job can lose workers at
*any* moment — crash, preemption, scale-in — and resume on a different
allocation with a bitwise-identical model.  Exercising that claim needs
failures that are themselves **deterministic**: a :class:`FaultPlan` is a
JSON-round-trippable schedule of timed :class:`FaultEvent`\\ s, generated
from a seed, so any chaotic run can be replayed exactly (``repro faults
replay``) and any divergence bisected with the audit trail.

Two trigger domains share one event type:

- ``at_step`` — global-step boundaries of a live
  :class:`~repro.core.engine.EasyScaleEngine` (the injector fires them
  through the engine/worker hooks);
- ``at_time`` — simulated seconds inside the
  :class:`~repro.sched.simulator.ClusterSimulator` (decision points).

Event kinds:

========================  =====================================================
``worker_crash``          a worker process dies mid-step; in-memory state is
                          unreachable, recovery falls back to the last snapshot
``gpu_revoke``            graceful scale-in notice: on-demand checkpoint, then
                          one GPU leaves the pool (zero lost steps)
``node_preempt``          abrupt removal of ``magnitude`` GPUs (serving spike);
                          state unreachable, snapshot fallback
``slowdown``              a worker degrades by ``magnitude``× (modeled time
                          only — numerics stay bitwise)
``checkpoint_corrupt``    bit-flip the newest periodic snapshot (the CRC layer
                          must detect it; recovery retries on an older one)
``restart_delay``         the next recovery takes ``magnitude`` extra seconds
========================  =====================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

PLAN_FORMAT_VERSION = 1

#: All recognized fault kinds.
FAULT_KINDS = (
    "worker_crash",
    "gpu_revoke",
    "node_preempt",
    "slowdown",
    "checkpoint_corrupt",
    "restart_delay",
)

#: Kinds that strike without warning: the running state is unreachable and
#: recovery must fall back to the last periodic snapshot.
ABRUPT_KINDS = frozenset({"worker_crash", "node_preempt"})

#: Kinds that announce themselves at a step boundary: the controller gets
#: to take an on-demand checkpoint first (zero lost steps).
GRACEFUL_KINDS = frozenset(set(FAULT_KINDS) - ABRUPT_KINDS)

#: Kinds that remove GPUs from the job's pool.
CAPACITY_KINDS = frozenset({"gpu_revoke", "node_preempt"})


def validate_event_kinds(raw_events, known_kinds, source: str = "plan") -> None:
    """Eagerly validate the ``kind`` of every raw (pre-dataclass) event.

    Shared by :meth:`FaultPlan.from_json` and
    :meth:`repro.membership.plan.MembershipPlan.from_json` so both plan
    formats reject an unknown kind at parse time with a path-and-index
    message (``<source>: events[3]: unknown kind 'gpu_revoek'``) instead
    of a bare dataclass error — or, worse, only at trigger time.
    """
    known = tuple(known_kinds)
    for index, raw in enumerate(raw_events):
        if not isinstance(raw, dict):
            raise ValueError(
                f"{source}: events[{index}]: must be a JSON object, "
                f"got {type(raw).__name__}"
            )
        kind = raw.get("kind")
        if kind not in known:
            raise ValueError(
                f"{source}: events[{index}]: unknown kind {kind!r}; "
                f"expected one of {known}"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    Exactly one of ``at_step`` / ``at_time`` must be set.  ``target``
    addresses the victim: ``"worker:<i>"`` (engine worker index, taken
    modulo the live worker count), a GPU type name (``"t4"``) for
    revocations, or ``"job:<id>"`` in the simulator; ``None`` lets the
    injector pick deterministically.  ``magnitude`` is kind-specific: the
    slowdown factor, the number of preempted GPUs, or the delay seconds.
    """

    kind: str
    at_step: Optional[int] = None
    at_time: Optional[float] = None
    target: Optional[str] = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if (self.at_step is None) == (self.at_time is None):
            raise ValueError(
                f"{self.kind}: exactly one of at_step/at_time must be set "
                f"(got at_step={self.at_step}, at_time={self.at_time})"
            )
        if self.at_step is not None and self.at_step < 0:
            raise ValueError(f"{self.kind}: at_step must be non-negative")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"{self.kind}: at_time must be non-negative")
        if self.magnitude <= 0:
            raise ValueError(f"{self.kind}: magnitude must be positive")
        if self.kind == "slowdown" and self.magnitude < 1.0:
            raise ValueError("slowdown magnitude is a factor >= 1")

    # ------------------------------------------------------------------
    @property
    def trigger(self) -> float:
        """Sort key within a plan (step index or sim seconds)."""
        return float(self.at_step if self.at_step is not None else self.at_time)

    def target_worker(self, num_workers: int) -> int:
        """Resolve the victim worker index for a live allocation.

        Accepts ``"worker:<i>"`` or a bare integer string; ``None`` maps to
        worker 0.  The index is taken modulo ``num_workers`` so a plan
        authored for one allocation stays valid (and deterministic) after
        the job has been rescaled.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        raw = 0
        if self.target is not None:
            text = self.target.split(":", 1)[-1]
            try:
                raw = int(text)
            except ValueError:
                raise ValueError(
                    f"{self.kind}: target {self.target!r} is not a worker index"
                ) from None
        return raw % num_workers

    def target_job(self) -> Optional[str]:
        """The explicit victim job id (``"job:<id>"``), if any."""
        if self.target is not None and self.target.startswith("job:"):
            return self.target.split(":", 1)[1]
        return None

    def target_gtype(self) -> Optional[str]:
        """The explicit victim GPU type (lower-case), if any."""
        if self.target is None:
            return None
        if self.target.startswith(("worker:", "job:")):
            return None
        return self.target.lower()

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {"kind": self.kind, "magnitude": self.magnitude}
        if self.at_step is not None:
            state["at_step"] = self.at_step
        if self.at_time is not None:
            state["at_time"] = self.at_time
        if self.target is not None:
            state["target"] = self.target
        return state

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=str(state["kind"]),
            at_step=int(state["at_step"]) if state.get("at_step") is not None else None,
            at_time=float(state["at_time"]) if state.get("at_time") is not None else None,
            target=str(state["target"]) if state.get("target") is not None else None,
            magnitude=float(state.get("magnitude", 1.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...]
    seed: int = 0
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        triggers = [e.trigger for e in self.events]
        if triggers != sorted(triggers):
            raise ValueError("fault plan events must be ordered by trigger")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    @property
    def step_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.at_step is not None)

    @property
    def time_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.at_time is not None)

    def capacity_cost(self) -> int:
        """Total GPUs the plan removes from the pool (revokes + preempts)."""
        cost = 0
        for event in self.events:
            if event.kind == "gpu_revoke":
                cost += 1
            elif event.kind == "node_preempt":
                cost += int(event.magnitude)
        return cost

    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}, {len(self.events)} events)"]
        if self.note:
            lines.append(f"  note: {self.note}")
        for event in self.events:
            where = (
                f"step {event.at_step}" if event.at_step is not None
                else f"t={event.at_time:.1f}s"
            )
            extra = f" target={event.target}" if event.target else ""
            lines.append(
                f"  {where:>12}  {event.kind:<18} magnitude={event.magnitude:g}{extra}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "version": PLAN_FORMAT_VERSION,
                "seed": self.seed,
                "note": self.note,
                "events": [e.to_state() for e in self.events],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "fault plan") -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"malformed fault plan JSON: {err}") from err
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        version = payload.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(f"unsupported fault plan version {version}")
        if "events" not in payload:
            raise ValueError("fault plan is missing the 'events' list")
        events = payload["events"]
        if not isinstance(events, list):
            raise ValueError("fault plan 'events' must be a list")
        validate_event_kinds(events, FAULT_KINDS, source=source)
        return cls(
            events=tuple(FaultEvent.from_state(e) for e in events),
            seed=int(payload.get("seed", 0)),
            note=str(payload.get("note", "")),
        )

    def save(self, path) -> None:
        import os

        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        import os

        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read(), source=os.fspath(path))


# ----------------------------------------------------------------------
# seeded generation
# ----------------------------------------------------------------------
def random_plan(
    seed: int,
    horizon_steps: int,
    num_gpus: int,
    max_events: int = 4,
    kinds: Sequence[str] = FAULT_KINDS,
    note: str = "",
) -> FaultPlan:
    """Generate a step-triggered plan that a job on ``num_gpus`` survives.

    Deterministic in ``seed``.  Capacity-removing events (revokes,
    preempts) are bounded so at least one GPU always survives; events land
    on steps ``1..horizon_steps-1`` (step 0 is left alone so every run has
    an uncorrupted initial snapshot).
    """
    if horizon_steps < 2:
        raise ValueError("horizon must span at least 2 steps")
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    if max_events < 1:
        raise ValueError("max_events must be positive")
    bad = set(kinds) - set(FAULT_KINDS)
    if bad:
        raise ValueError(f"unknown fault kinds: {sorted(bad)}")
    rng = random.Random(seed)
    budget = num_gpus - 1  # GPUs we may remove while keeping the job alive
    events: List[FaultEvent] = []
    num_events = rng.randint(1, max_events)
    for _ in range(num_events):
        kind = rng.choice(list(kinds))
        if kind in CAPACITY_KINDS and budget <= 0:
            kind = "worker_crash"  # deterministic downgrade: pool exhausted
        step = rng.randint(1, horizon_steps - 1)
        target: Optional[str] = None
        magnitude = 1.0
        if kind == "worker_crash":
            target = f"worker:{rng.randint(0, max(num_gpus - 1, 0))}"
        elif kind == "gpu_revoke":
            budget -= 1
        elif kind == "node_preempt":
            take = rng.randint(1, min(2, budget))
            budget -= take
            magnitude = float(take)
        elif kind == "slowdown":
            target = f"worker:{rng.randint(0, max(num_gpus - 1, 0))}"
            magnitude = round(rng.uniform(1.5, 3.0), 2)
        elif kind == "restart_delay":
            magnitude = round(rng.uniform(5.0, 60.0), 1)
        events.append(
            FaultEvent(kind=kind, at_step=step, target=target, magnitude=magnitude)
        )
    events.sort(key=lambda e: (e.trigger, e.kind))
    return FaultPlan(events=tuple(events), seed=seed, note=note)


def random_sim_plan(
    seed: int,
    horizon_s: float,
    max_events: int = 6,
    kinds: Sequence[str] = FAULT_KINDS,
    note: str = "",
) -> FaultPlan:
    """Generate a time-triggered plan for the cluster simulator."""
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for _ in range(rng.randint(1, max(max_events, 1))):
        kind = rng.choice(list(kinds))
        at_time = round(rng.uniform(0.05, 0.95) * horizon_s, 1)
        magnitude = 1.0
        if kind == "node_preempt":
            magnitude = float(rng.randint(1, 4))
        elif kind == "slowdown":
            magnitude = round(rng.uniform(1.5, 3.0), 2)
        elif kind == "restart_delay":
            magnitude = round(rng.uniform(10.0, 120.0), 1)
        events.append(FaultEvent(kind=kind, at_time=at_time, magnitude=magnitude))
    events.sort(key=lambda e: (e.trigger, e.kind))
    return FaultPlan(events=tuple(events), seed=seed, note=note)
