"""All-reduce algorithms with faithful float32 association.

NCCL's ring all-reduce reduce-scatters a flat buffer: the buffer is split
into ``world_size`` chunks, and chunk ``c`` is accumulated around the ring
starting from a different rank.  Two consequences the paper leans on:

1. For a *fixed* world size and buffer layout the result is deterministic
   (so plain DDP satisfies D0);
2. Changing the world size — or re-laying-out the buffer (bucket rebuild)
   — changes which partial sums associate, flipping low-order float32 bits
   (so elasticity breaks determinism unless D1 pins both).

We reproduce this exactly: the accumulation below is elementwise float32
in the same chunk/rank order a ring would produce.  EasyScale's ElasticDDP
calls the same function over **virtual-rank** gradient sets, so its result
is bitwise what DDP-with-nEST-GPUs would compute, on any physical layout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro import obs


def _check_inputs(grads: Sequence[np.ndarray]) -> List[np.ndarray]:
    if not grads:
        raise ValueError("allreduce needs at least one rank")
    first = grads[0]
    out = []
    for g in grads:
        g = np.asarray(g, dtype=np.float32).reshape(-1)
        if g.shape != np.asarray(first).reshape(-1).shape:
            raise ValueError("all ranks must contribute equally-shaped flat buffers")
        out.append(g)
    return out


def ring_allreduce_sum(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Ring reduce-scatter association over a flat float32 buffer.

    Chunk ``c`` (of ``world`` chunks) accumulates in rank order
    ``c+1, c+2, ..., c`` starting from rank ``c+1``'s value — matching the
    data movement of a ring: each rank forwards its partial sum to the next.
    """
    flats = _check_inputs(grads)
    world = len(flats)
    n = flats[0].size
    out = np.empty(n, dtype=np.float32)
    # chunk boundaries: world near-equal chunks (like NCCL)
    bounds = np.linspace(0, n, world + 1).astype(np.int64)
    for c in range(world):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        if lo == hi:
            continue
        acc = flats[(c + 1) % world][lo:hi].copy()
        for step in range(2, world + 1):
            rank = (c + step) % world
            acc = acc + flats[rank][lo:hi]
        out[lo:hi] = acc
    return out


def tree_allreduce_sum(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Binary-tree pairwise association (NCCL tree algorithm)."""
    flats = _check_inputs(grads)
    level = flats
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0].copy()


def sequential_allreduce_sum(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Strict rank-order left fold (the simplest canonical association)."""
    flats = _check_inputs(grads)
    acc = flats[0].copy()
    for g in flats[1:]:
        acc = acc + g
    return acc


ALGORITHMS = {
    "ring": ring_allreduce_sum,
    "tree": tree_allreduce_sum,
    "sequential": sequential_allreduce_sum,
}


def allreduce_mean(grads: Sequence[np.ndarray], algorithm: str = "ring") -> np.ndarray:
    """Sum with the chosen association, then divide by world size (DDP avg)."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown allreduce algorithm {algorithm!r}")
    with obs.span(
        "comm.allreduce",
        cat="comm",
        algorithm=algorithm,
        world=len(grads),
        elems=int(np.asarray(grads[0]).size) if len(grads) else 0,
    ):
        total = ALGORITHMS[algorithm](grads)
        result = total / np.float32(len(grads))
    if obs.is_enabled():
        obs.metrics().counter("comm_allreduce_total", algorithm=algorithm).inc()
    return result
