"""All-reduce algorithms with faithful float32 association.

NCCL's ring all-reduce reduce-scatters a flat buffer: the buffer is split
into ``world_size`` chunks, and chunk ``c`` is accumulated around the ring
starting from a different rank.  Two consequences the paper leans on:

1. For a *fixed* world size and buffer layout the result is deterministic
   (so plain DDP satisfies D0);
2. Changing the world size — or re-laying-out the buffer (bucket rebuild)
   — changes which partial sums associate, flipping low-order float32 bits
   (so elasticity breaks determinism unless D1 pins both).

We reproduce this exactly: the accumulation below is elementwise float32
in the same chunk/rank order a ring would produce.  EasyScale's ElasticDDP
calls the same function over **virtual-rank** gradient sets, so its result
is bitwise what DDP-with-nEST-GPUs would compute, on any physical layout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro import obs


def _check_inputs(grads: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Validate and flatten per-rank contributions.

    Guarantees, relied on by every ``*_allreduce_sum`` and by
    :func:`allreduce_mean`:

    - every rank contributes the same number of float32 elements — ragged
      inputs fail here with a clear per-rank error instead of surfacing as
      a downstream broadcasting surprise;
    - contributions are finite — a NaN/inf gradient is a training bug the
      reduction must not silently average into every replica;
    - the *result* of the reduction never shares memory with any input
      (the flats returned here may alias caller arrays for zero-copy
      reads, so the algorithms below always accumulate into fresh
      buffers; tests pin this with ``np.shares_memory``).
    """
    if not grads:
        raise ValueError("allreduce needs at least one rank")
    out: List[np.ndarray] = []
    expected: int | None = None
    for rank, g in enumerate(grads):
        try:
            flat = np.asarray(g, dtype=np.float32).reshape(-1)
        except (ValueError, TypeError) as err:
            raise ValueError(
                f"rank {rank} contribution is not a rectangular numeric "
                f"array: {err}"
            ) from err
        if expected is None:
            expected = flat.size
        elif flat.size != expected:
            raise ValueError(
                f"ragged allreduce input: rank {rank} contributes "
                f"{flat.size} elements, rank 0 contributes {expected}"
            )
        if not np.isfinite(flat).all():
            raise ValueError(
                f"rank {rank} contributes non-finite values (NaN/inf) to "
                f"the all-reduce; refusing to propagate them to every replica"
            )
        out.append(flat)
    return out


def ring_allreduce_sum(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Ring reduce-scatter association over a flat float32 buffer.

    Chunk ``c`` (of ``world`` chunks) accumulates in rank order
    ``c+1, c+2, ..., c`` starting from rank ``c+1``'s value — matching the
    data movement of a ring: each rank forwards its partial sum to the next.
    """
    flats = _check_inputs(grads)
    world = len(flats)
    n = flats[0].size
    out = np.empty(n, dtype=np.float32)
    # chunk boundaries: world near-equal chunks (like NCCL)
    bounds = np.linspace(0, n, world + 1).astype(np.int64)
    for c in range(world):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        if lo == hi:
            continue
        acc = flats[(c + 1) % world][lo:hi].copy()
        for step in range(2, world + 1):
            rank = (c + step) % world
            acc = acc + flats[rank][lo:hi]
        out[lo:hi] = acc
    return out


def tree_allreduce_sum(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Binary-tree pairwise association (NCCL tree algorithm)."""
    flats = _check_inputs(grads)
    level = flats
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0].copy()


def sequential_allreduce_sum(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Strict rank-order left fold (the simplest canonical association)."""
    flats = _check_inputs(grads)
    acc = flats[0].copy()
    for g in flats[1:]:
        acc = acc + g
    return acc


ALGORITHMS = {
    "ring": ring_allreduce_sum,
    "tree": tree_allreduce_sum,
    "sequential": sequential_allreduce_sum,
}


def allreduce_mean(grads: Sequence[np.ndarray], algorithm: str = "ring") -> np.ndarray:
    """Sum with the chosen association, then divide by world size (DDP avg)."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown allreduce algorithm {algorithm!r}")
    with obs.span(
        "comm.allreduce",
        cat="comm",
        algorithm=algorithm,
        world=len(grads),
        elems=int(np.asarray(grads[0]).size) if len(grads) else 0,
    ):
        total = ALGORITHMS[algorithm](grads)
        result = total / np.float32(len(grads))
    if obs.is_enabled():
        obs.metrics().counter("comm_allreduce_total", algorithm=algorithm).inc()
    return result
