"""Gradient bucketing (PyTorch DDP semantics) and its D1 fix.

DDP gathers gradients into fixed-capacity buckets for fewer, larger
all-reduces.  The mapping of parameters to buckets starts as the *reverse
registration (≈ reverse topological) order* and is **rebuilt at the end of
the first mini-batch** according to the order gradients actually became
ready during backward (§3.3, "communication mechanism").

Under elasticity the workers restart, channels are rebuilt, and the bucket
layout can end up different — changing flat-buffer element positions, and
with them the ring association, and with *that* the model bits.  D1's fix:
store the bucket index mapping in the checkpoint, reinstate it on restore,
and disable reconstruction.  Both the broken and the fixed path are
implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Hashable identity of one bucket layout (used as a cache key).
LayoutKey = Tuple[Tuple[str, ...], ...]


@dataclass
class BucketAssignment:
    """Ordered buckets of parameter names, with flatten/unflatten."""

    buckets: List[List[str]]

    def __post_init__(self) -> None:
        seen = set()
        for bucket in self.buckets:
            for name in bucket:
                if name in seen:
                    raise ValueError(f"parameter {name!r} appears in multiple buckets")
                seen.add(name)
        if not seen:
            raise ValueError("bucket assignment is empty")

    @property
    def all_names(self) -> List[str]:
        return [name for bucket in self.buckets for name in bucket]

    def layout_key(self) -> LayoutKey:
        """Hashable identity of this layout (flat-buffer cache key)."""
        return tuple(tuple(bucket) for bucket in self.buckets)

    def bucket_elems(self, bucket_idx: int, sizes: Mapping[str, int]) -> int:
        return sum(int(sizes[name]) for name in self.buckets[bucket_idx])

    def flatten_bucket(
        self, bucket_idx: int, grads: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Concatenate one bucket's gradients into a flat float32 buffer."""
        parts = [np.asarray(grads[name], dtype=np.float32).reshape(-1) for name in self.buckets[bucket_idx]]
        return np.concatenate(parts)

    def flatten_bucket_into(
        self, bucket_idx: int, grads: Mapping[str, np.ndarray], out: np.ndarray
    ) -> np.ndarray:
        """Flatten one bucket into a caller-provided float32 buffer.

        Writes the same bytes :meth:`flatten_bucket` would produce, but
        without allocating — the hot path when a
        :class:`FlatBufferCache` supplies a persistent staging buffer.
        """
        offset = 0
        for name in self.buckets[bucket_idx]:
            part = np.asarray(grads[name], dtype=np.float32).reshape(-1)
            end = offset + part.size
            if end > out.size:
                raise ValueError(
                    f"bucket {bucket_idx} needs more than the {out.size} "
                    f"elements of the supplied buffer"
                )
            out[offset:end] = part
            offset = end
        if offset != out.size:
            raise ValueError(
                f"bucket {bucket_idx} flat size mismatch: {offset} vs {out.size}"
            )
        return out

    def unflatten_bucket(
        self,
        bucket_idx: int,
        flat: np.ndarray,
        shapes: Mapping[str, Tuple[int, ...]],
    ) -> Dict[str, np.ndarray]:
        """Split a flat bucket buffer back into per-parameter arrays.

        Every returned array **owns its memory** — it never aliases
        ``flat``.  (Returning views was a latent corruption bug: a caller
        mutating one unflattened gradient silently rewrote its
        bucket-mates through the shared flat buffer.)
        """
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for name in self.buckets[bucket_idx]:
            size = int(np.prod(shapes[name]))
            out[name] = flat[offset : offset + size].copy().reshape(shapes[name])
            offset += size
        if offset != flat.size:
            raise ValueError(f"bucket {bucket_idx} flat size mismatch: {offset} vs {flat.size}")
        return out

    def to_state(self) -> List[List[str]]:
        """Serializable form, recorded in D1 checkpoints."""
        return [list(bucket) for bucket in self.buckets]

    @classmethod
    def from_state(cls, state: Sequence[Sequence[str]]) -> "BucketAssignment":
        return cls([list(bucket) for bucket in state])


class FlatBufferCache:
    """Reusable flat float32 staging buffers, keyed by bucket layout.

    Gradient synchronization flattens every bucket for every virtual rank
    on every step; allocating (and concatenating into) fresh buffers each
    time is pure churn, because the layout — and therefore every buffer
    size — is pinned between reconstructions.  The cache hands out one
    persistent buffer per ``(layout, bucket, slot)``; when the layout
    changes (the one-time DDP arrival-order rebuild, or a D0 restore),
    the stale entries are dropped wholesale.

    Buffers are *reused, not shared*: callers must fully overwrite a
    buffer before reading it back, and must never hold one across a
    layout change.  Consumers that need an owning result (e.g.
    :meth:`BucketAssignment.unflatten_bucket`) copy out of it.
    """

    def __init__(self) -> None:
        self._layout: LayoutKey | None = None
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        #: lifetime counters (observability / tests)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        self._layout = None
        self._buffers.clear()

    def buffer(
        self, layout: LayoutKey, bucket_idx: int, slot: int, size: int
    ) -> np.ndarray:
        """A float32 buffer of ``size`` elems for (bucket, slot) under ``layout``.

        ``slot`` distinguishes concurrent users of the same bucket (one
        per virtual rank).  Contents are unspecified on a miss; on a hit
        they are whatever the caller last wrote.
        """
        if size <= 0:
            raise ValueError("buffer size must be positive")
        if layout != self._layout:
            # layout changed: every cached size/offset is suspect
            self._buffers.clear()
            self._layout = layout
        key = (bucket_idx, slot)
        buf = self._buffers.get(key)
        if buf is None or buf.size != size:
            buf = np.empty(size, dtype=np.float32)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf


def build_initial_buckets(
    param_order: Sequence[str],
    param_sizes: Mapping[str, int],
    capacity_elems: int = 2048,
) -> BucketAssignment:
    """Initial DDP mapping: reverse registration order, capacity-capped.

    PyTorch's default capacity is 25 MB; ``capacity_elems`` plays that role
    at mini-model scale so models still produce several buckets.
    """
    if capacity_elems <= 0:
        raise ValueError("capacity must be positive")
    buckets: List[List[str]] = []
    current: List[str] = []
    used = 0
    for name in reversed(list(param_order)):
        size = param_sizes[name]
        if current and used + size > capacity_elems:
            buckets.append(current)
            current = []
            used = 0
        current.append(name)
        used += size
    if current:
        buckets.append(current)
    return BucketAssignment(buckets)


def rebuild_from_arrival(
    arrival_order: Sequence[str],
    param_sizes: Mapping[str, int],
    capacity_elems: int = 2048,
) -> BucketAssignment:
    """Post-first-iteration rebuild by gradient readiness order."""
    expected = set(param_sizes)
    got = list(arrival_order)
    seen: set = set()
    for name in got:
        # reject duplicates here, where the cause is visible — letting one
        # through surfaces later as BucketAssignment's "appears in multiple
        # buckets", far from the arrival sink that produced it
        if name in seen:
            raise ValueError(f"arrival order records {name!r} more than once")
        seen.add(name)
    if seen != expected:
        missing = expected - seen
        if missing:
            raise ValueError(
                f"arrival order missing parameters: {sorted(missing)[:5]}"
            )
        unknown = seen - expected
        raise ValueError(f"arrival order has unknown parameters: {sorted(unknown)[:5]}")
    buckets: List[List[str]] = []
    current: List[str] = []
    used = 0
    for name in got:
        size = param_sizes[name]
        if current and used + size > capacity_elems:
            buckets.append(current)
            current = []
            used = 0
        current.append(name)
        used += size
    if current:
        buckets.append(current)
    return BucketAssignment(buckets)
