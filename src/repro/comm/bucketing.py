"""Gradient bucketing (PyTorch DDP semantics) and its D1 fix.

DDP gathers gradients into fixed-capacity buckets for fewer, larger
all-reduces.  The mapping of parameters to buckets starts as the *reverse
registration (≈ reverse topological) order* and is **rebuilt at the end of
the first mini-batch** according to the order gradients actually became
ready during backward (§3.3, "communication mechanism").

Under elasticity the workers restart, channels are rebuilt, and the bucket
layout can end up different — changing flat-buffer element positions, and
with them the ring association, and with *that* the model bits.  D1's fix:
store the bucket index mapping in the checkpoint, reinstate it on restore,
and disable reconstruction.  Both the broken and the fixed path are
implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


@dataclass
class BucketAssignment:
    """Ordered buckets of parameter names, with flatten/unflatten."""

    buckets: List[List[str]]

    def __post_init__(self) -> None:
        seen = set()
        for bucket in self.buckets:
            for name in bucket:
                if name in seen:
                    raise ValueError(f"parameter {name!r} appears in multiple buckets")
                seen.add(name)
        if not seen:
            raise ValueError("bucket assignment is empty")

    @property
    def all_names(self) -> List[str]:
        return [name for bucket in self.buckets for name in bucket]

    def flatten_bucket(
        self, bucket_idx: int, grads: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Concatenate one bucket's gradients into a flat float32 buffer."""
        parts = [np.asarray(grads[name], dtype=np.float32).reshape(-1) for name in self.buckets[bucket_idx]]
        return np.concatenate(parts)

    def unflatten_bucket(
        self,
        bucket_idx: int,
        flat: np.ndarray,
        shapes: Mapping[str, Tuple[int, ...]],
    ) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for name in self.buckets[bucket_idx]:
            size = int(np.prod(shapes[name]))
            out[name] = flat[offset : offset + size].reshape(shapes[name])
            offset += size
        if offset != flat.size:
            raise ValueError(f"bucket {bucket_idx} flat size mismatch: {offset} vs {flat.size}")
        return out

    def to_state(self) -> List[List[str]]:
        """Serializable form, recorded in D1 checkpoints."""
        return [list(bucket) for bucket in self.buckets]

    @classmethod
    def from_state(cls, state: Sequence[Sequence[str]]) -> "BucketAssignment":
        return cls([list(bucket) for bucket in state])


def build_initial_buckets(
    param_order: Sequence[str],
    param_sizes: Mapping[str, int],
    capacity_elems: int = 2048,
) -> BucketAssignment:
    """Initial DDP mapping: reverse registration order, capacity-capped.

    PyTorch's default capacity is 25 MB; ``capacity_elems`` plays that role
    at mini-model scale so models still produce several buckets.
    """
    if capacity_elems <= 0:
        raise ValueError("capacity must be positive")
    buckets: List[List[str]] = []
    current: List[str] = []
    used = 0
    for name in reversed(list(param_order)):
        size = param_sizes[name]
        if current and used + size > capacity_elems:
            buckets.append(current)
            current = []
            used = 0
        current.append(name)
        used += size
    if current:
        buckets.append(current)
    return BucketAssignment(buckets)


def rebuild_from_arrival(
    arrival_order: Sequence[str],
    param_sizes: Mapping[str, int],
    capacity_elems: int = 2048,
) -> BucketAssignment:
    """Post-first-iteration rebuild by gradient readiness order."""
    expected = set(param_sizes)
    got = list(arrival_order)
    if set(got) != expected:
        missing = expected - set(got)
        raise ValueError(f"arrival order missing parameters: {sorted(missing)[:5]}")
    buckets: List[List[str]] = []
    current: List[str] = []
    used = 0
    for name in got:
        size = param_sizes[name]
        if current and used + size > capacity_elems:
            buckets.append(current)
            current = []
            used = 0
        current.append(name)
        used += size
    if current:
        buckets.append(current)
    return BucketAssignment(buckets)
