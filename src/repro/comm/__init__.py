"""Simulated collective communication: allreduce algorithms + bucketing."""

from repro.comm.allreduce import (
    ALGORITHMS,
    allreduce_mean,
    ring_allreduce_sum,
    sequential_allreduce_sum,
    tree_allreduce_sum,
)
from repro.comm.bucketing import (
    BucketAssignment,
    FlatBufferCache,
    build_initial_buckets,
    rebuild_from_arrival,
)

__all__ = [
    "ALGORITHMS",
    "allreduce_mean",
    "ring_allreduce_sum",
    "tree_allreduce_sum",
    "sequential_allreduce_sum",
    "BucketAssignment",
    "FlatBufferCache",
    "build_initial_buckets",
    "rebuild_from_arrival",
]
