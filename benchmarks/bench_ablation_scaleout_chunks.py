"""Ablation — scale-out proposal chunk sizes.

Design choice under study: the intra-job scheduler explores incremental
homogeneous chunks.  Because EST allocation is quantized (Eq. 1a's integer
constraint), throughput-vs-GPUs has plateaus: for a 16-EST job holding 8
GPUs at 2 ESTs each, +4 GPUs adds only over-provisioning waste while +8
doubles throughput.  Small-chunk-only proposal sets get stuck under the
plateau; including larger chunks escapes it.

Regenerates: average JCT on the standard trace for three chunk menus, and
the direct plateau demonstration from the Eq. 1 model.
"""

from repro.hw import microbench_cluster
from repro.sched import ClusterSimulator, CompanionModule, EasyScalePolicy, generate_trace
from repro.sched.intra import IntraJobScheduler

from benchmarks.conftest import print_header, print_table

from benchmarks.bench_fig14_trace import TRACE

CHUNK_MENUS = {
    "tiny (1)": (1,),
    "small (1,2,4)": (1, 2, 4),
    "full (1,2,4,8,16)": (1, 2, 4, 8, 16),
}


class ChunkedPolicy(EasyScalePolicy):
    """EasyScale-homo with a configurable proposal chunk menu."""

    def __init__(self, chunks):
        super().__init__(heterogeneous=False)
        self.chunks = tuple(chunks)
        self.name = f"easyscale-chunks-{'-'.join(map(str, chunks))}"

    def on_job_arrival(self, sim, runtime):
        super().on_job_arrival(sim, runtime)
        runtime.agent.scaleout_chunks = self.chunks


def plateau_demo():
    """Eq. 1 directly: throughput of a 16-EST job at 8/12/16 V100s."""
    companion = CompanionModule(max_p=16, capability={"v100": 9.0})
    out = {}
    for gpus in (8, 12, 16):
        best = companion.best_plan({"v100": gpus})
        out[gpus] = best.throughput if best else 0.0
    return out


def run_experiment():
    jobs = generate_trace(**TRACE)
    jcts = {}
    for label, chunks in CHUNK_MENUS.items():
        result = ClusterSimulator(microbench_cluster(), jobs, ChunkedPolicy(chunks)).run()
        jcts[label] = (result.average_jct, result.makespan)
    return jcts, plateau_demo()


def test_ablation_scaleout_chunks(run_once):
    jcts, plateau = run_once(run_experiment)

    print_header("Ablation: scale-out proposal chunk sizes (trace JCT)")
    print_table(
        ["chunk menu", "avg JCT (s)", "makespan (s)"],
        [[label, f"{jct:.0f}", f"{mk:.0f}"] for label, (jct, mk) in jcts.items()],
        fmt="18",
    )
    print("\nEq. 1 plateau for a 16-EST job (V100 C=9):")
    for gpus, tp in plateau.items():
        print(f"  {gpus:2d} GPUs -> estimated throughput {tp:.1f} mb/s")

    # the plateau exists: 12 GPUs buy nothing over 8; 16 double it
    assert plateau[12] <= plateau[8] + 1e-9
    assert plateau[16] > 1.8 * plateau[8]
    # the full chunk menu should not be worse than the tiny menu
    assert jcts["full (1,2,4,8,16)"][0] <= jcts["tiny (1)"][0] * 1.05
