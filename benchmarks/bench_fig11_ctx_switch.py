"""Figure 11 — The cost of lightweight EST context switching.

Paper: running one EST per GPU with context switching enabled vs disabled
costs at most 1.9% (Electra) because only determinism-critical state (RNG
streams, gradient staging) is saved — never model parameters.  Related
(§5.1.2 text): sharing data workers cuts first-mini-batch latency by 67.1%
on average by launching 4 instead of 32 loader processes.

Regenerates: the normalized per-iteration time with/without context
switching for all eight workloads, the measured byte size of a real EST
context (vs. the model replica it avoids copying), and the data-worker
sharing latency win.
"""

from repro.core.est import EasyScaleThread
from repro.data.dataloader import LoaderTiming
from repro.hw import V100, context_switch_time, minibatch_time
from repro.models import TABLE1, get_workload
from repro.utils.rng import RNGBundle
from repro.utils.serialization import sizeof_state

from benchmarks.conftest import print_header, print_table

DATA_WORKERS_PER_TRAINER = 4
NUM_ESTS = 8


def run_experiment():
    rows = []
    for name in TABLE1:
        spec = get_workload(name)
        base = minibatch_time(spec, V100)
        with_switch = base + context_switch_time(spec, V100)
        est = EasyScaleThread(0, 0)
        est.rng.normal((100,))  # a realistically-advanced stream
        context_bytes = sizeof_state(est.save_context().to_state())
        model = spec.build_model(RNGBundle(0))
        mini_replica_bytes = sizeof_state(model.state_dict())
        rows.append(
            {
                "model": name,
                "overhead": with_switch / base - 1.0,
                "context_bytes": context_bytes,
                "mini_replica_bytes": mini_replica_bytes,
                # the full-size network the mini model stands in for
                "real_replica_bytes": spec.params_gb * 1e9,
            }
        )

    timing = LoaderTiming()
    naive_workers = DATA_WORKERS_PER_TRAINER * NUM_ESTS
    shared_latency = timing.first_batch_latency(DATA_WORKERS_PER_TRAINER, batch_size=8)
    naive_latency = timing.first_batch_latency(naive_workers, batch_size=8)
    sharing = {
        "naive_workers": naive_workers,
        "shared_workers": DATA_WORKERS_PER_TRAINER,
        "reduction": 1.0 - shared_latency / naive_latency,
    }
    return rows, sharing


def test_fig11_context_switch_overhead(run_once):
    rows, sharing = run_once(run_experiment)

    print_header("Figure 11: context-switching overhead per mini-batch")
    print_table(
        ["model", "overhead %", "EST context B", "mini replica B", "real replica GB"],
        [
            [
                r["model"],
                f"{100 * r['overhead']:.2f}",
                r["context_bytes"],
                r["mini_replica_bytes"],
                f"{r['real_replica_bytes'] / 1e9:.3f}",
            ]
            for r in rows
        ],
        fmt="15",
    )
    print(
        f"\ndata-worker sharing ({NUM_ESTS} ESTs x {DATA_WORKERS_PER_TRAINER} workers):"
        f" {sharing['naive_workers']} -> {sharing['shared_workers']} workers,"
        f" first-batch latency -{100 * sharing['reduction']:.1f}%"
        f"  (paper: -67.1% average)"
    )

    overheads = {r["model"]: r["overhead"] for r in rows}
    assert max(overheads.values()) <= 0.019 + 1e-9  # paper's worst case, Electra
    assert max(overheads, key=overheads.get) == "electra"
    for r in rows:
        # the context (a few KB of RNG state) is orders of magnitude
        # smaller than the full-size replica it avoids copying — that
        # asymmetry is why switching is cheap at production scale
        assert r["context_bytes"] < 100_000
        assert r["context_bytes"] < 1e-3 * r["real_replica_bytes"]
    assert sharing["reduction"] > 0.6
