"""Figure 10 — GPU memory and throughput: EasyScale vs worker packing.

Paper: running k workers on one 32 GB V100 via Gandiva-style worker
packing multiplies CUDA contexts, model replicas, and activations — memory
grows linearly and OOMs after 8 workers (ResNet50, bs=32) or 2 workers
(ShuffleNetV2, bs=512).  Packing's aggregate throughput creeps up to
~1.11x from concurrent kernels.  EasyScale's memory stays flat at any EST
count and its throughput is flat (slightly below packing's peak).

Regenerates: the memory curves and normalized-throughput bars for both
models, worker counts 1..16, with OOM points marked.
"""

import math

from repro.hw import (
    V100,
    easyscale_aggregate_throughput,
    easyscale_memory_gb,
    max_packed_workers,
    packing_aggregate_throughput,
    packing_memory_gb,
)
from repro.models import get_workload

from benchmarks.conftest import print_header, print_table

CASES = [("resnet50", 32), ("shufflenetv2", 512)]
WORKER_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16]


def run_experiment():
    results = {}
    for name, batch in CASES:
        spec = get_workload(name)
        base = packing_aggregate_throughput(spec, V100, 1)
        rows = []
        for k in WORKER_COUNTS:
            packing_mem = packing_memory_gb(spec, k, batch)
            packing_oom = packing_mem > V100.memory_gb
            rows.append(
                {
                    "workers": k,
                    "packing_mem": packing_mem,
                    "packing_oom": packing_oom,
                    "packing_tp": (
                        packing_aggregate_throughput(spec, V100, k) / base
                        if not packing_oom
                        else float("nan")
                    ),
                    "easyscale_mem": easyscale_memory_gb(spec, k, batch),
                    "easyscale_tp": easyscale_aggregate_throughput(spec, V100, k)
                    / base
                    * 1.0,
                }
            )
        results[name] = {
            "rows": rows,
            "max_packed": max_packed_workers(spec, V100, batch),
        }
    return results


def test_fig10_packing_vs_easyscale(run_once):
    results = run_once(run_experiment)

    for (name, batch), data in zip(CASES, results.values()):
        print_header(f"Figure 10 ({name}, bs={batch}) on a 32 GB V100")
        print_table(
            ["workers", "pack mem GB", "pack tp", "ES mem GB", "ES tp"],
            [
                [
                    r["workers"],
                    "OOM" if r["packing_oom"] else f"{r['packing_mem']:.1f}",
                    "-" if r["packing_oom"] else f"{r['packing_tp']:.3f}",
                    f"{r['easyscale_mem']:.1f}",
                    f"{r['easyscale_tp']:.3f}",
                ]
                for r in data["rows"]
            ],
        )
        print(f"packing OOMs beyond {data['max_packed']} workers")

    resnet = results["resnet50"]
    shuffle = results["shufflenetv2"]
    # paper's OOM points
    assert resnet["max_packed"] == 8
    assert shuffle["max_packed"] == 2
    for data in results.values():
        rows = data["rows"]
        # EasyScale memory flat (within 15%), never OOM
        mems = [r["easyscale_mem"] for r in rows]
        assert max(mems) < V100.memory_gb
        assert (max(mems) - min(mems)) / min(mems) < 0.15
        # packing throughput peaks at <= 1.11x of one worker
        peaks = [r["packing_tp"] for r in rows if not r["packing_oom"]]
        assert max(peaks) <= 1.11 + 1e-9
        # EasyScale throughput flat within a few percent
        es = [r["easyscale_tp"] for r in rows]
        assert max(es) - min(es) < 0.05
