"""Ablation — EST count (maxP) and the EST-allocation quantum.

Design choice under study: the user fixes nEST at model-designing time;
the scheduler then lives with its integrality.  This ablation maps the
consequences across nEST for a fixed heterogeneous GPU pool:

- Eq. 1 waste as a function of nEST (divisibility vs the pool's
  capability profile decides how clean the best plan can be);
- per-global-step time as ESTs pack onto a single GPU (linear in local
  ESTs: the time-slicing cost model);
- checkpoint size growth (one small context per EST).
"""

import numpy as np

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import V100, easyscale_step_time
from repro.models import get_workload
from repro.optim import SGD
from repro.sched import CompanionModule, estimated_throughput, waste
from repro.utils.serialization import sizeof_state

from benchmarks.conftest import print_header, print_table

POOL = {"v100": 2, "p100": 2, "t4": 2}
EST_COUNTS = [2, 4, 6, 8, 12, 16]


def run_experiment():
    spec = get_workload("resnet50")
    dataset = spec.build_dataset(64, seed=2)
    rows = []
    for num_ests in EST_COUNTS:
        companion = CompanionModule(max_p=num_ests, capability=dict(spec.throughput))
        best = companion.best_plan(POOL)
        plan_waste = waste(best.plan, companion.capability) if best else float("nan")
        step_time = easyscale_step_time(spec, V100, num_ests)

        config = EasyScaleJobConfig(num_ests=num_ests, seed=1, batch_size=4)
        engine = EasyScaleEngine(
            spec,
            dataset,
            config,
            lambda m: SGD(m.named_parameters(), lr=0.05),
            WorkerAssignment.balanced([V100], num_ests),
        )
        engine.train_steps(1)
        ckpt = engine.checkpoint()
        context_bytes = sizeof_state(ckpt.est_contexts)
        rows.append(
            {
                "num_ests": num_ests,
                "best_tp": best.throughput if best else 0.0,
                "waste": plan_waste,
                "gpus_used": best.plan.total_gpus if best else 0,
                "single_gpu_step_s": step_time,
                "contexts_kb": context_bytes / 1024,
            }
        )
    return rows


def test_ablation_est_count(run_once):
    rows = run_once(run_experiment)

    print_header("Ablation: EST count vs plan quality / step time / checkpoint size")
    print_table(
        ["nEST", "best plan tp", "waste", "GPUs", "1-GPU step (s)", "EST contexts (KB)"],
        [
            [
                r["num_ests"],
                f"{r['best_tp']:.2f}",
                f"{r['waste']:.2f}",
                r["gpus_used"],
                f"{r['single_gpu_step_s']:.3f}",
                f"{r['contexts_kb']:.1f}",
            ]
            for r in rows
        ],
        fmt="14",
    )

    by_est = {r["num_ests"]: r for r in rows}
    # step time on one GPU is ~linear in the local EST count
    ratio = by_est[16]["single_gpu_step_s"] / by_est[2]["single_gpu_step_s"]
    assert 7.0 < ratio < 9.0
    # checkpoint context cost is linear and tiny
    assert by_est[16]["contexts_kb"] < 8 * by_est[2]["contexts_kb"] + 1
    assert by_est[16]["contexts_kb"] < 100
    # more ESTs raise the achievable throughput overall, but NOT
    # monotonically — EST integrality makes some counts divide the pool's
    # capability profile better than others (e.g. 6 ESTs beat 8 here).
    # That non-monotonicity is the quantum effect this ablation documents.
    tps = [r["best_tp"] for r in rows]
    assert tps[-1] > tps[0]
    assert all(b >= a * 0.9 for a, b in zip(tps, tps[1:]))  # dips stay small
