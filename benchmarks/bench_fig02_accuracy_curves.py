"""Figure 2 — Non-deterministic accuracy curves of ResNet18 on CIFAR10.

Paper: training ResNet18/CIFAR10 with TorchElastic (linear LR scaling) and
Pollux (adaptive batch/LR) on 1/2/4/8 GPUs yields visibly different
validation-accuracy curves, while the hyper-parameters and seeds are held
fixed; the spread reaches several percent (up to 5.8% for Pollux at epoch
10).  DDP on a fixed GPU count is exactly reproducible.

Regenerates: per-epoch validation accuracy for DDP-4GPU and TE/Pollux at
1/2/8 GPUs; reports the cross-world accuracy spread per framework.
"""

import numpy as np

from repro.data.datasets import build_dataset, train_eval_split
from repro.ddp import DDPTrainer, ddp_homo_config, evaluate_classification
from repro.elastic import ElasticBaselineTrainer, PolluxScaling, TorchElasticScaling, TrainSegment
from repro.models import get_workload
from repro.optim import SGD

from benchmarks.conftest import print_header, series_line, smoke_scale

SEED = 5
EPOCHS = smoke_scale(6, 3)
TRAIN_N = 192
EVAL_N = 160
BATCH = 8


def run_experiment():
    spec = get_workload("resnet18")
    full = build_dataset("cifar10-like", TRAIN_N + EVAL_N, seed=SEED, noise_scale=1.3)
    train_set, eval_set = train_eval_split(full, TRAIN_N)

    curves = {}

    # DDP on fixed 4 GPUs (two runs: bitwise reproducible)
    for run in ("a", "b"):
        trainer = DDPTrainer(
            spec,
            train_set,
            ddp_homo_config(4, seed=SEED, batch_size=BATCH),
            lambda m: SGD(m.named_parameters(), lr=0.05, momentum=0.9),
        )
        accs = []
        for epoch in range(EPOCHS):
            trainer.train_epoch(epoch)
            accs.append(evaluate_classification(trainer.model, eval_set)[0])
        curves[f"DDP-4GPU(run {run})"] = accs

    # elastic baselines at different fixed world sizes
    for label, strategy in (("TE", TorchElasticScaling()), ("Pollux", PolluxScaling())):
        for world in (1, 2, 8):
            trainer = ElasticBaselineTrainer(
                spec, train_set, strategy, base_lr=0.05, base_batch=BATCH, seed=SEED
            )
            accs = []
            for _ in range(EPOCHS):
                trainer.run_schedule([TrainSegment(world, 1)])
                accs.append(evaluate_classification(trainer.model, eval_set)[0])
            curves[f"{label}-{world}GPU"] = accs

    # EasyScale under *actual* elasticity: 4 ESTs scaling 4->1->2 GPUs at
    # epoch boundaries — the curve the whole system exists to produce
    from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
    from repro.hw import V100

    config = EasyScaleJobConfig(num_ests=4, seed=SEED, batch_size=BATCH)
    engine = EasyScaleEngine(
        spec,
        train_set,
        config,
        lambda m: SGD(m.named_parameters(), lr=0.05, momentum=0.9),
        WorkerAssignment.balanced([V100] * 4, 4),
    )
    gpu_schedule = [4, 1, 2, 4, 1, 2][:EPOCHS]
    accs = []
    for epoch, gpus in enumerate(gpu_schedule):
        if epoch > 0:
            engine = engine.reconfigure(WorkerAssignment.balanced([V100] * gpus, 4))
        engine.train_steps(engine.steps_per_epoch)
        accs.append(evaluate_classification(engine.model, eval_set)[0])
    curves["EasyScale-elastic"] = accs
    return curves


def spread(curves, prefix):
    rows = np.array([v for k, v in curves.items() if k.startswith(prefix)])
    return float((rows.max(axis=0) - rows.min(axis=0)).max())


def test_fig02_accuracy_curves(run_once):
    curves = run_once(run_experiment)

    print_header("Figure 2: validation accuracy vs epoch (ResNet18-mini)")
    for label, accs in curves.items():
        series_line(label, accs, fmt="{:7.3f}")

    ddp_spread = spread(curves, "DDP-4GPU")
    te_spread = spread(curves, "TE-")
    pollux_spread = spread(curves, "Pollux-")
    easyscale_gap = float(
        np.max(
            np.abs(
                np.array(curves["EasyScale-elastic"])
                - np.array(curves["DDP-4GPU(run a)"])
            )
        )
    )
    print(f"\nmax cross-run accuracy spread:")
    print(f"  DDP fixed resources : {ddp_spread:.4f}  (paper: exactly 0, reproducible)")
    print(f"  TorchElastic 1/2/8  : {te_spread:.4f}  (paper: several %)")
    print(f"  Pollux 1/2/8        : {pollux_spread:.4f}  (paper: up to 5.8% at epoch 10)")
    print(f"  EasyScale 4->1->2 GPUs vs DDP-4GPU: {easyscale_gap:.4f}  (EasyScale's point: 0)")

    assert ddp_spread == 0.0, "fixed-resource DDP must be exactly reproducible"
    assert te_spread > 0.01, "TorchElastic should show visible accuracy spread"
    assert pollux_spread > 0.01, "Pollux should show visible accuracy spread"
    assert easyscale_gap == 0.0, "EasyScale under elasticity must track DDP exactly"
