"""Ablation — gradient-bucket capacity.

Design choice under study: the bucket capacity (PyTorch's 25 MB knob,
element-denominated here) trades fewer, larger collectives against
pipeline overlap.  Two things must hold for EasyScale:

1. D1's elastic bitwise guarantee holds at *every* capacity — the mapping
   is recorded, whatever it is;
2. different capacities give bitwise-*different* models (capacity changes
   the flat-buffer layout and hence the ring association), so capacity is
   part of the determinism-relevant configuration and must be preserved in
   checkpoints — which is why the engine records it in checkpoint meta.

Regenerates: per-capacity bucket counts, the elastic-consistency verdict,
and the cross-capacity divergence matrix.
"""

import numpy as np

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import V100
from repro.models import get_workload
from repro.optim import SGD
from repro.utils.fingerprint import fingerprint_state_dict

from benchmarks.conftest import print_header, print_table

CAPACITIES = [256, 1024, 4096]
SEED = 5


def sgd(model):
    return SGD(model.named_parameters(), lr=0.05, momentum=0.9)


def run_experiment():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(192, seed=9)
    rows = []
    digests = {}
    for capacity in CAPACITIES:
        config = EasyScaleJobConfig(
            num_ests=4, seed=SEED, batch_size=8, bucket_capacity_elems=capacity
        )
        # continuous run on 4 GPUs
        straight = EasyScaleEngine(
            spec, dataset, config, sgd, WorkerAssignment.balanced([V100] * 4, 4)
        )
        num_buckets = len(straight.elastic_ddp.buckets.buckets)
        straight.train_steps(6)
        # elastic run: 4 -> 1 -> 3 GPUs
        elastic = EasyScaleEngine(
            spec, dataset, config, sgd, WorkerAssignment.balanced([V100] * 4, 4)
        )
        elastic.train_steps(2)
        elastic = elastic.reconfigure(WorkerAssignment.balanced([V100], 4))
        elastic.train_steps(2)
        elastic = elastic.reconfigure(WorkerAssignment.balanced([V100] * 3, 4))
        elastic.train_steps(2)

        straight_digest = fingerprint_state_dict(straight.model.state_dict())
        elastic_digest = fingerprint_state_dict(elastic.model.state_dict())
        digests[capacity] = straight_digest
        rows.append(
            {
                "capacity": capacity,
                "buckets": num_buckets,
                "elastic_bitwise": straight_digest == elastic_digest,
            }
        )
    return rows, digests


def test_ablation_bucket_capacity(run_once):
    rows, digests = run_once(run_experiment)

    print_header("Ablation: gradient-bucket capacity (resnet18, 4 ESTs)")
    print_table(
        ["capacity (elems)", "buckets", "elastic run bitwise == straight run"],
        [[r["capacity"], r["buckets"], r["elastic_bitwise"]] for r in rows],
        fmt="20",
    )
    unique = len(set(digests.values()))
    print(f"\ndistinct final models across capacities: {unique}/{len(CAPACITIES)}")
    print("capacity changes the flat-buffer layout -> the bits; D1 holds at any capacity")

    # more capacity -> fewer buckets
    buckets = [r["buckets"] for r in rows]
    assert buckets == sorted(buckets, reverse=True)
    assert buckets[0] > buckets[-1]
    # D1 survives elasticity at every capacity
    assert all(r["elastic_bitwise"] for r in rows)
    # but capacities are not interchangeable: the bits differ
    assert unique > 1
