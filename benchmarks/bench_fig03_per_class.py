"""Figure 3 — Non-deterministic per-class accuracy of ResNet18 on CIFAR10.

Paper (epoch 100): across 1/2/4/8-GPU runs, TorchElastic's overall
accuracy varies by 0.6% but its *per-class* accuracy varies by up to 7.4%
(3.9% average); Pollux varies by 2.8% overall and up to 17.3% per class
(7.4% average).  Per-class drift is what breaks production models whose
SLAs are per-category.

Regenerates: the per-class accuracy matrix (world size x class) for both
elastic baselines, plus the per-class and overall variance rows.
"""

import numpy as np

from repro.data.datasets import build_dataset, train_eval_split
from repro.ddp import evaluate_classification
from repro.elastic import ElasticBaselineTrainer, PolluxScaling, TorchElasticScaling, TrainSegment
from repro.models import get_workload

from benchmarks.conftest import print_header, print_table, smoke_scale

SEED = 5
EPOCHS = smoke_scale(6, 2)
TRAIN_N = 192
EVAL_N = 160
BATCH = 8
CLASSES = 10
WORLDS = (1, 2, 4, 8)


def run_experiment():
    spec = get_workload("resnet18")
    full = build_dataset("cifar10-like", TRAIN_N + EVAL_N, seed=SEED, noise_scale=1.3)
    train_set, eval_set = train_eval_split(full, TRAIN_N)

    results = {}
    for label, strategy in (("TE", TorchElasticScaling()), ("Pollux", PolluxScaling())):
        per_world = {}
        for world in WORLDS:
            trainer = ElasticBaselineTrainer(
                spec, train_set, strategy, base_lr=0.05, base_batch=BATCH, seed=SEED
            )
            trainer.run_schedule([TrainSegment(world, EPOCHS)])
            overall, per_class = evaluate_classification(
                trainer.model, eval_set, num_classes=CLASSES
            )
            per_world[world] = (overall, per_class)
        results[label] = per_world

    # EasyScale: the same job (4 ESTs) run at each physical GPU count —
    # per-class accuracy is *identical* across worlds, the paper's fix
    from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
    from repro.hw import V100
    from repro.optim import SGD

    per_world = {}
    for world in (1, 2, 4):
        config = EasyScaleJobConfig(num_ests=4, seed=SEED, batch_size=BATCH)
        engine = EasyScaleEngine(
            spec,
            train_set,
            config,
            lambda m: SGD(m.named_parameters(), lr=0.05, momentum=0.9),
            WorkerAssignment.balanced([V100] * world, 4),
        )
        engine.train_steps(engine.steps_per_epoch * EPOCHS)
        per_world[world] = evaluate_classification(
            engine.model, eval_set, num_classes=CLASSES
        )
    results["EasyScale"] = per_world
    return results


def test_fig03_per_class_accuracy(run_once):
    results = run_once(run_experiment)

    for label, per_world in results.items():
        print_header(f"Figure 3 ({label}): per-class accuracy at epoch {EPOCHS}")
        headers = ["GPUs"] + [f"C{c}" for c in range(CLASSES)] + ["Total"]
        rows = []
        worlds = sorted(per_world)
        for world in worlds:
            overall, per_class = per_world[world]
            rows.append([f"{world}GPU"] + [f"{v:.2f}" for v in per_class] + [f"{overall:.3f}"])
        matrix = np.array([per_world[w][1] for w in worlds])
        spread = matrix.max(axis=0) - matrix.min(axis=0)
        overall_spread = max(per_world[w][0] for w in worlds) - min(
            per_world[w][0] for w in worlds
        )
        rows.append(["spread"] + [f"{v:.2f}" for v in spread] + [f"{overall_spread:.3f}"])
        print_table(headers, rows, fmt="6")
        print(
            f"\n{label}: overall spread {overall_spread:.3f}, per-class spread "
            f"max {spread.max():.3f} / mean {spread.mean():.3f}"
            f"  (paper: TE 0.006 / 0.074 / 0.039; Pollux 0.028 / 0.173 / 0.074; "
            f"EasyScale exactly 0)"
        )

    # shape: per-class spread exceeds overall spread for both baselines,
    # and EasyScale's spread is exactly zero across worlds
    for label, per_world in results.items():
        worlds = sorted(per_world)
        matrix = np.array([per_world[w][1] for w in worlds])
        spread = matrix.max(axis=0) - matrix.min(axis=0)
        overall_spread = max(per_world[w][0] for w in worlds) - min(
            per_world[w][0] for w in worlds
        )
        if label == "EasyScale":
            assert spread.max() == 0.0, "EasyScale per-class accuracy must not drift"
            assert overall_spread == 0.0
            continue
        assert spread.max() > 0.02, f"{label}: expected visible per-class drift"
        assert spread.max() >= overall_spread, (
            f"{label}: per-class variance should dominate overall variance"
        )
