"""Scheduler fast path — cold vs warm companion plan-search cost.

The §3.4 proposal loop queries the companion database once per
(GPU type × scale-out chunk) per scheduling round; at Fig-8 scale
(3 GPU types, maxP=16, 16 GPUs available per type) the seed brute-force
enumerator expands ~17^3 count vectors per query.  The fast path memoizes
results under the normalized availability vector, dominance-prunes top-K
searches, and answers scale-out hypotheticals incrementally
(``best_plan_delta``), so steady-state rounds — capability table
unchanged — cost dict lookups.

Regenerates: planning cost for one full scheduling round across >= 8 jobs
under three regimes — seed brute force (``enumerate_plans_reference``),
cold fast path (empty caches, pruning only), warm fast path (caches hot).
Asserts the warm round is >= 5x cheaper than the cold one and that every
fast-path answer equals the brute-force oracle's.
"""

import time

from repro.obs.metrics import Histogram, time_into
from repro.sched.companion import CompanionModule

from benchmarks.conftest import (
    print_header,
    print_table,
    record_trajectory,
    smoke_scale,
)

NUM_JOBS = 8
MAX_P = smoke_scale(16, 6)
PER_TYPE = smoke_scale(16, 6)
CHUNKS = smoke_scale((1, 2, 4, 8, 16), (1, 2, 4))
TYPES = ("v100", "p100", "t4")
BASE_CAP = {"v100": 9.0, "p100": 4.0, "t4": 3.0}


def _job_caps(i):
    # distinct capability tables per job (different models bias the
    # per-type rates differently), so no cross-job sharing is possible
    scale = 1.0 + 0.07 * i
    return {t: c * scale for t, c in BASE_CAP.items()}


def _job_owned(i):
    owned = {
        "v100": (i % 4) + 1,
        "p100": (2 * i) % 5,
        "t4": (3 * i) % 4,
    }
    return {t: n for t, n in owned.items() if n > 0}


def _companions():
    return [
        CompanionModule(
            max_p=MAX_P,
            capability=_job_caps(i),
            max_gpus_per_type=PER_TYPE,
        )
        for i in range(NUM_JOBS)
    ]


def _round_queries(i):
    """One scheduling round's query stream for job ``i`` (Role-1 + Role-2)."""
    owned = _job_owned(i)
    free = {t: PER_TYPE for t in TYPES}
    deltas = [
        (owned, gtype, chunk)
        for gtype in TYPES
        for chunk in CHUNKS
        if chunk <= free[gtype]
    ]
    return owned, deltas


def _fastpath_round(companions):
    answers = []
    for i, comp in enumerate(companions):
        owned, deltas = _round_queries(i)
        answers.append(comp.best_plans(owned, top_k=3))
        for owned_, gtype, chunk in deltas:
            answers.append(comp.best_plan_delta(owned_, gtype, chunk))
    return answers


def _reference_round(companions):
    answers = []
    for i, comp in enumerate(companions):
        owned, deltas = _round_queries(i)
        answers.append(comp.enumerate_plans_reference(owned)[:3])
        for owned_, gtype, chunk in deltas:
            hypo = dict(owned_)
            hypo[gtype] = hypo.get(gtype, 0) + chunk
            ranked = comp.enumerate_plans_reference(hypo)
            answers.append(ranked[0] if ranked else None)
    return answers


def run_experiment():
    timings = Histogram(buckets=(0.001, 0.01, 0.1, 1.0, 10.0, 60.0))

    reference_companions = _companions()
    with time_into(timings):
        oracle = _reference_round(reference_companions)
    t_reference = timings.sum

    companions = _companions()
    start = time.perf_counter()
    cold = _fastpath_round(companions)
    t_cold = time.perf_counter() - start

    start = time.perf_counter()
    warm = _fastpath_round(companions)
    t_warm = time.perf_counter() - start

    return {
        "reference": t_reference,
        "cold": t_cold,
        "warm": t_warm,
        "oracle": oracle,
        "cold_answers": cold,
        "warm_answers": warm,
        "companions": companions,
    }


def test_sched_fastpath_cold_vs_warm(run_once):
    r = run_once(run_experiment)

    # bitwise contract: every fast-path answer (cold and warm) equals the
    # brute-force oracle's, element by element
    assert r["cold_answers"] == r["oracle"]
    assert r["warm_answers"] == r["oracle"]

    pruned = sum(c.vectors_pruned for c in r["companions"])
    scored = sum(c.vectors_scored for c in r["companions"])
    hits = misses = 0
    for comp in r["companions"]:
        for stats in comp.cache_stats().values():
            hits += stats["hits"]
            misses += stats["misses"]

    print_header(
        f"Scheduler fast path: {NUM_JOBS} jobs, maxP={MAX_P}, "
        f"{PER_TYPE}x{len(TYPES)} GPUs free"
    )
    print_table(
        ["regime", "round cost (s)", "vs reference"],
        [
            ["reference (brute)", f"{r['reference']:.4f}", "x1.0"],
            ["fast path cold", f"{r['cold']:.4f}", f"x{r['reference'] / r['cold']:.1f}"],
            ["fast path warm", f"{r['warm']:.4f}", f"x{r['reference'] / r['warm']:.1f}"],
        ],
        fmt="18",
    )
    print(
        f"\nwarm/cold speedup x{r['cold'] / r['warm']:.1f}   "
        f"cache {hits} hit(s) / {misses} miss(es)   "
        f"vectors scored {scored}, pruned {pruned}"
    )

    assert pruned > 0, "dominance bound never fired"
    assert hits > 0, "warm round never hit the cache"
    # acceptance bar: a warm scheduling round costs >= 5x less than a cold
    # one (in practice it is orders of magnitude: dict lookups vs search)
    assert r["warm"] * 5 <= r["cold"]

    record_trajectory(
        "sched", "fastpath_round",
        {"jobs": NUM_JOBS, "max_p": MAX_P, "per_type": PER_TYPE},
        {"reference_s": [r["reference"]], "cold_s": [r["cold"]],
         "warm_s": [r["warm"]]},
    )
