"""Figure 4 — Train loss of ResNet50 with different hyper-parameter gamma.

Paper: with PyTorch DDP on a fixed 4 GPUs, the effect of the LR-decay
factor gamma (0.1 / 0.3 / 0.5 applied after 20 epochs) on the loss curve
is clearly legible.  With Pollux running the three gammas on 1/2/4 GPUs
respectively, the curves oscillate and the gamma trend is buried —
elastic non-determinism invalidates hyper-parameter reasoning.

Regenerates: per-epoch train loss for both setups; quantifies trend
legibility as the consistency of the post-decay loss ordering.
"""

import numpy as np

from repro.data.datasets import build_dataset, train_eval_split
from repro.elastic import ElasticBaselineTrainer, PolluxScaling, TrainSegment
from repro.elastic.base import ScalingStrategy
from repro.models import get_workload

from benchmarks.conftest import print_header, series_line, smoke_scale

SEED = 7
EPOCHS = 8
DECAY_EPOCH = 3  # scaled-down stand-in for the paper's epoch-20 decay
TRAIN_N = smoke_scale(160, 120)
BATCH = 8
GAMMAS = (0.1, 0.3, 0.5)


class FixedScaling(ScalingStrategy):
    """DDP stand-in: hyper-parameters never react to the world size."""

    name = "fixed"

    def configure(self, world_size, base_lr, base_batch, feedback):
        return base_lr, base_batch


def run_experiment():
    spec = get_workload("resnet50")
    full = build_dataset("imagenet-like", TRAIN_N + 32, seed=SEED, noise_scale=1.0)
    train_set, _ = train_eval_split(full, TRAIN_N)

    curves = {}
    # DDP: fixed 4 GPUs for every gamma
    for gamma in GAMMAS:
        trainer = ElasticBaselineTrainer(
            spec, train_set, FixedScaling(), base_lr=0.08, base_batch=BATCH,
            seed=SEED, gamma=gamma, lr_step_epochs=DECAY_EPOCH,
        )
        losses = trainer.run_schedule([TrainSegment(4, EPOCHS)])
        curves[f"DDP-4GPU-{gamma}"] = losses
    # Pollux: gamma 0.1/0.3/0.5 on 1/2/4 GPUs respectively
    for gamma, world in zip(GAMMAS, (1, 2, 4)):
        trainer = ElasticBaselineTrainer(
            spec, train_set, PolluxScaling(), base_lr=0.08, base_batch=BATCH,
            seed=SEED, gamma=gamma, lr_step_epochs=DECAY_EPOCH,
        )
        losses = trainer.run_schedule([TrainSegment(world, EPOCHS)])
        curves[f"Pollux-{world}GPU-{gamma}"] = losses
    return curves


def trend_consistency(curves, prefix):
    """Fraction of post-decay epochs whose gamma->loss ordering matches the
    expected monotone trend (smaller gamma => smaller LR => smoother/lower
    late loss ordering consistent across epochs)."""
    keys = [k for k in curves if k.startswith(prefix)]
    keys.sort(key=lambda k: float(k.rsplit("-", 1)[1]))
    matrix = np.array([curves[k] for k in keys])  # (gammas, epochs)
    post = matrix[:, DECAY_EPOCH:]
    orders = [tuple(np.argsort(post[:, e])) for e in range(post.shape[1])]
    most_common = max(set(orders), key=orders.count)
    return orders.count(most_common) / len(orders)


def oscillation(curves, prefix):
    """Total count of loss *upticks* after the first epoch — the
    "unexpected oscillations" the paper describes for Pollux."""
    keys = [k for k in curves if k.startswith(prefix)]
    total = 0
    for key in keys:
        losses = np.array(curves[key])
        total += int((np.diff(losses[1:]) > 0).sum())
    return total


def test_fig04_gamma_effect(run_once):
    curves = run_once(run_experiment)

    print_header("Figure 4: train loss vs epoch under gamma in {0.1, 0.3, 0.5}")
    for label, losses in curves.items():
        series_line(label, losses, fmt="{:7.4f}")

    ddp = trend_consistency(curves, "DDP")
    pollux = trend_consistency(curves, "Pollux")
    ddp_osc = oscillation(curves, "DDP")
    pollux_osc = oscillation(curves, "Pollux")
    print(f"\npost-decay gamma-ordering consistency (1.0 = perfectly legible):")
    print(f"  DDP fixed 4 GPUs : {ddp:.2f}   loss upticks: {ddp_osc}")
    print(f"  Pollux 1/2/4 GPUs: {pollux:.2f}   loss upticks: {pollux_osc}")
    print("paper: DDP shows a clear trend; Pollux oscillates with no clear trend")

    assert ddp >= pollux, "fixed-resource training must be at least as legible"
    assert ddp >= 0.6, "DDP gamma trend should be mostly stable"
    assert pollux_osc > ddp_osc, "Pollux curves should oscillate more than DDP's"
