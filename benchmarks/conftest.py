"""Shared helpers for the figure/table regeneration benchmarks.

Every ``bench_figXX`` module regenerates one figure or table from the
paper's evaluation section: it runs the experiment through the public API,
prints the same rows/series the paper reports (shape, not absolute
numbers), and asserts the qualitative claims (who wins, where the
crossovers are).  ``pytest benchmarks/ --benchmark-only`` runs them all.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Sequence

import pytest

#: ``REPRO_BENCH_SMOKE=1`` shrinks every regenerator to a fast smoke run:
#: same experiment, same qualitative assertions, reduced epochs/steps/jobs.
#: ``tests/test_bench_smoke.py`` (marker ``bench_smoke``) drives the whole
#: suite this way as a tier-2 target.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def smoke_scale(full, reduced):
    """Pick a knob value: the paper-scale one, or the smoke-run one."""
    return reduced if SMOKE else full


def record_trajectory(area, bench, params, metric_samples, directions=None):
    """Append wall-clock samples to the area's ``BENCH_<area>.json``.

    Opt-in via ``REPRO_BENCH_RECORD=1``: figure regenerators time real
    work anyway, so a recorded run feeds the same regression trajectories
    as ``repro bench run`` (``repro bench gate`` then enforces them).
    ``smoke`` is folded into the params — the comparator keys series by
    (bench, params), so smoke timings never gate against full-scale ones.
    Returns the appended record, or ``None`` when recording is off.
    """
    if os.environ.get("REPRO_BENCH_RECORD") != "1":
        return None
    from repro.obs.bench import record_samples

    return record_samples(
        area, bench, {**dict(params), "smoke": SMOKE}, metric_samples,
        directions=directions,
    )


def print_header(title: str) -> None:
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}")


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]], fmt: str = "10") -> None:
    widths = [max(len(str(h)), int(fmt)) for h in headers]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4g}".rjust(width))
            else:
                cells.append(str(value).rjust(width))
        print("  ".join(cells))


def series_line(label: str, values: Sequence[float], fmt: str = "{:8.4f}") -> None:
    print(f"{label:24s} " + " ".join(fmt.format(v) for v in values))


@pytest.fixture(scope="session", autouse=True)
def repro_trace():
    """Opt-in span tracing for benchmark runs.

    ``REPRO_TRACE=1 pytest benchmarks/ ...`` records every instrumented
    phase (engine steps, bucket reduces, simulator events) and, at session
    end, writes a Chrome ``trace_event`` JSON alongside the pytest-benchmark
    JSON results — ``REPRO_TRACE_PATH`` overrides the default output path.
    """
    if os.environ.get("REPRO_TRACE") != "1":
        yield
        return
    from repro import obs

    obs.configure(enabled=True, ring_size=1 << 20)
    try:
        yield
    finally:
        path = os.environ.get("REPRO_TRACE_PATH", "benchmarks_trace.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(obs.tracer().to_chrome_trace(), fh, default=str)
        obs.reset()
        print(f"\n[repro] benchmark span trace written to {path}")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark accounting.

    The regenerators are deterministic simulations, not micro-kernels, so a
    single round is both sufficient and honest.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
