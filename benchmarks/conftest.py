"""Shared helpers for the figure/table regeneration benchmarks.

Every ``bench_figXX`` module regenerates one figure or table from the
paper's evaluation section: it runs the experiment through the public API,
prints the same rows/series the paper reports (shape, not absolute
numbers), and asserts the qualitative claims (who wins, where the
crossovers are).  ``pytest benchmarks/ --benchmark-only`` runs them all.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import pytest


def print_header(title: str) -> None:
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}")


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]], fmt: str = "10") -> None:
    widths = [max(len(str(h)), int(fmt)) for h in headers]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4g}".rjust(width))
            else:
                cells.append(str(value).rjust(width))
        print("  ".join(cells))


def series_line(label: str, values: Sequence[float], fmt: str = "{:8.4f}") -> None:
    print(f"{label:24s} " + " ".join(fmt.format(v) for v in values))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark accounting.

    The regenerators are deterministic simulations, not micro-kernels, so a
    single round is both sufficient and honest.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
