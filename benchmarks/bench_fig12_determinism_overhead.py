"""Figure 12 — The overhead of ensuring accuracy-consistency.

Paper: per-iteration time normalized to stock PyTorch, for each workload
on V100 / P100 / T4.  D1 (elastic determinism) costs <1% everywhere.
D1+D2 (hardware-agnostic kernels) also costs ~1% for the GEMM/attention
models (NeuMF, Bert, Electra, SwinTransformer) but ~236% on average for
the conv models (ShuffleNetV2, ResNet50, VGG19, YOLOv3), whose vendor
convolution kernels D2 must disable.

Regenerates: the normalized-time table from the calibrated timing model,
plus a *measured* wall-clock comparison of the real vendor vs. agnostic
GEMM kernels on this machine, confirming the slowdown is genuine and not
just a model constant.
"""

import time

import numpy as np

from repro.hw import P100, T4, V100, minibatch_time
from repro.models import TABLE1, get_workload
from repro.tensor import kernels
from repro.tensor.kernels import D0_POLICY, D2_POLICY

from benchmarks.conftest import print_header, print_table, record_trajectory

GPUS = (V100, P100, T4)
CONV_MODELS = {"shufflenetv2", "resnet50", "vgg19", "yolov3"}


def model_table():
    rows = []
    for name in TABLE1:
        spec = get_workload(name)
        row = {"model": name}
        for gpu in GPUS:
            base = 1.0 / spec.throughput[gpu.name.lower()]
            row[f"{gpu.name}_d1"] = minibatch_time(spec, gpu, D0_POLICY) / base
            row[f"{gpu.name}_d1d2"] = minibatch_time(spec, gpu, D2_POLICY) / base
        rows.append(row)
    return rows


def measure_kernel_slowdown(size=192, repeats=5):
    """Wall-clock the real NumPy kernels: vendor dialect vs D2 agnostic.

    Returns ``(slowdown_ratio, vendor_seconds, agnostic_seconds)`` —
    min-of-repeats timings of a 20-matmul loop per policy.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(size, size)).astype(np.float32)
    b = rng.normal(size=(size, size)).astype(np.float32)

    def clock(policy):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(20):
                kernels.matmul(a, b, dialect="p100", policy=policy)
            best = min(best, time.perf_counter() - start)
        return best

    vendor = clock(D0_POLICY)
    agnostic = clock(D2_POLICY)
    return agnostic / vendor, vendor, agnostic


def run_experiment():
    return model_table(), measure_kernel_slowdown()


def test_fig12_determinism_overhead(run_once):
    rows, (measured_slowdown, vendor_s, agnostic_s) = run_once(run_experiment)

    print_header("Figure 12: per-iteration time normalized to stock PyTorch")
    print_table(
        ["model"]
        + [f"{g.name} {lvl}" for g in GPUS for lvl in ("D1", "D1+D2")],
        [
            [r["model"]]
            + [f"{r[f'{g.name}_{k}']:.3f}" for g in GPUS for k in ("d1", "d1d2")]
            for r in rows
        ],
        fmt="11",
    )

    conv_overhead = np.mean(
        [r["V100_d1d2"] - 1.0 for r in rows if r["model"] in CONV_MODELS]
    )
    light_overhead = np.mean(
        [r["V100_d1d2"] - 1.0 for r in rows if r["model"] not in CONV_MODELS]
    )
    print(f"\nD1+D2 mean overhead: conv models +{100 * conv_overhead:.0f}% "
          f"(paper: +236%), others +{100 * light_overhead:.1f}% (paper: <1%)")
    print(f"measured agnostic-vs-vendor GEMM slowdown on this host: "
          f"x{measured_slowdown:.2f} (the D2 cost is a real kernel property)")

    for r in rows:
        for gpu in GPUS:
            assert r[f"{gpu.name}_d1"] < 1.01, "D1 must stay under 1%"
            if r["model"] in CONV_MODELS:
                assert r[f"{gpu.name}_d1d2"] > 2.0
            else:
                assert r[f"{gpu.name}_d1d2"] < 1.02
    # min-of-5 repeats makes this robust to background load; the observed
    # ratio is ~2x, so 1.1 leaves wide margin while still proving the cost
    assert measured_slowdown > 1.1, "agnostic split-K GEMM should be measurably slower"

    record_trajectory(
        "determinism", "fig12_kernel_overhead", {"size": 192},
        {"vendor_s": [vendor_s], "agnostic_s": [agnostic_s]},
    )
