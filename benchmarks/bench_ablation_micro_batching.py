"""Ablation — gradient accumulation (micro-batching) extension.

Extension feature beyond the paper: each EST may split its mini-batch into
k micro-batches, shrinking live activation memory by k at the cost of k
sequential forward/backward passes.  The ablation documents the contract:

- memory: the activation term of the worker footprint divides by k —
  batch sizes that OOM at k=1 fit at k=2 (ShuffleNetV2/bs1024 on a 16 GB
  P100 is the paper-adjacent example);
- consistency: EasyScale(k) remains bitwise identical to DDP(k) under
  elasticity — the guarantee composes with accumulation;
- semantics: k is *not* free for BatchNorm models (per-micro-batch
  statistics), which is why it must be part of the checkpointed job
  configuration rather than a runtime knob.
"""

import numpy as np

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.ddp import DDPConfig, DDPTrainer
from repro.hw import P100, V100
from repro.models import get_workload
from repro.optim import SGD
from repro.utils.fingerprint import fingerprint_state_dict, max_abs_diff

from benchmarks.conftest import print_header, print_table

SEED = 5
MICROS = [1, 2, 4, 8]


def sgd(model):
    return SGD(model.named_parameters(), lr=0.05, momentum=0.9)


def memory_table():
    spec = get_workload("shufflenetv2")
    rows = []
    for k in MICROS:
        mem = 0.75 + spec.worker_memory_gb(1024, micro_batches=k)  # + CUDA ctx
        rows.append(
            {
                "micro": k,
                "mem_gb": mem,
                "fits_p100": mem <= P100.memory_gb,
            }
        )
    return rows


def consistency_check():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(128, seed=3)
    ddp = DDPTrainer(
        spec, dataset, DDPConfig(world_size=2, seed=SEED, batch_size=8, micro_batches=4), sgd
    )
    ddp.train_steps(4)
    config = EasyScaleJobConfig(num_ests=2, seed=SEED, batch_size=8, micro_batches=4)
    engine = EasyScaleEngine(
        spec, dataset, config, sgd, WorkerAssignment.balanced([V100] * 2, 2)
    )
    engine.train_steps(2)
    engine = engine.reconfigure(WorkerAssignment.balanced([V100], 2))
    engine.train_steps(2)
    return fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
        ddp.model.state_dict()
    )


def bn_semantics_gap():
    spec = get_workload("resnet18")  # BN model
    neumf = get_workload("neumf")  # norm-free model
    gaps = {}
    for name, wl in (("resnet18 (BN)", spec), ("neumf (no BN)", neumf)):
        dataset = wl.build_dataset(256, seed=3)

        def run(micro):
            trainer = DDPTrainer(
                wl,
                dataset,
                DDPConfig(world_size=2, seed=SEED, batch_size=8, micro_batches=micro),
                sgd,
            )
            trainer.train_steps(3)
            return trainer.model.state_dict()

        gaps[name] = max_abs_diff(run(1), run(4))
    return gaps


def run_experiment():
    return memory_table(), consistency_check(), bn_semantics_gap()


def test_ablation_micro_batching(run_once):
    mem_rows, bitwise_ok, gaps = run_once(run_experiment)

    print_header("Ablation: gradient accumulation (ShuffleNetV2, bs=1024)")
    print_table(
        ["micro-batches", "worker mem (GB)", "fits 16 GB P100"],
        [[r["micro"], f"{r['mem_gb']:.1f}", r["fits_p100"]] for r in mem_rows],
        fmt="16",
    )
    print(f"\nEasyScale(k=4) elastic == DDP(k=4): {bitwise_ok}")
    print("max |param gap| between k=1 and k=4 after 3 steps:")
    for name, gap in gaps.items():
        print(f"  {name:16s} {gap:.2e}")
    print("(BN models: real semantic change; norm-free: association-only)")

    by_micro = {r["micro"]: r for r in mem_rows}
    assert not by_micro[1]["fits_p100"]  # bs1024 OOMs a P100 without accumulation
    assert by_micro[2]["fits_p100"]  # and fits with it
    assert bitwise_ok
    assert gaps["resnet18 (BN)"] > 1e-3
    assert gaps["neumf (no BN)"] < 1e-6
