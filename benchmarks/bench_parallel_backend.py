"""Parallel execution backend — per-step cost, serial vs process pool.

The §4 bitwise serial/parallel contract is proven by the tier-1 suite;
this regenerator times what the contract *costs*: the same global steps
of a ResNet-18 job driven once through :class:`SerialBackend` and once
through :class:`ProcessPoolBackend` (two sticky single-child slots), and
confirms the two backends still agree on every loss along the way.

On multi-core hosts the pool amortizes its state-shipping overhead and
approaches the ideal speedup (``tests/exec/test_parallel_speedup.py``
pins that bar under ``-m parallel``); on a single core it measures pure
overhead — both are exactly what the ``BENCH_parallel.json`` trajectory
should track, keyed by this machine's fingerprint.
"""

import time

from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.hw import gpu_type
from repro.models import get_workload
from repro.optim import SGD

from benchmarks.conftest import print_header, print_table, record_trajectory, smoke_scale

STEPS = smoke_scale(4, 2)
ESTS = 4
POOL = ["V100", "V100"]


def _engine(spec, dataset, backend):
    config = EasyScaleJobConfig(
        num_ests=ESTS, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    assignment = WorkerAssignment.balanced([gpu_type(n) for n in POOL], ESTS)
    return EasyScaleEngine(
        spec, dataset, config,
        lambda model: SGD(model.named_parameters(), lr=0.05, momentum=0.9),
        assignment, backend=backend,
    )


def run_experiment():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)

    serial = _engine(spec, dataset, SerialBackend())
    start = time.perf_counter()
    serial_losses = serial.train_steps(STEPS)
    serial_s = (time.perf_counter() - start) / STEPS

    with ProcessPoolBackend(max_workers=len(POOL)) as backend:
        pooled = _engine(spec, dataset, backend)
        # first step pays child start-up + replica builds; time it apart
        # from steady state but keep its loss for the contract check
        start = time.perf_counter()
        warmup_losses = pooled.train_steps(1)
        warmup_s = time.perf_counter() - start
        start = time.perf_counter()
        pool_losses = warmup_losses + pooled.train_steps(STEPS - 1)
        pool_s = (time.perf_counter() - start) / max(STEPS - 1, 1)
    return serial_s, pool_s, warmup_s, serial_losses, pool_losses


def test_parallel_backend_step_cost(run_once):
    serial_s, pool_s, warmup_s, serial_losses, pool_losses = run_once(run_experiment)

    # the contract half: identical training trajectories, step by step
    assert pool_losses == serial_losses

    print_header(f"Execution backends: {STEPS} steps, {len(POOL)} workers, {ESTS} ESTs")
    print_table(
        ["backend", "s/step", "vs serial"],
        [
            ["serial", f"{serial_s:.4f}", "x1.00"],
            ["process pool", f"{pool_s:.4f}", f"x{serial_s / pool_s:.2f}"],
        ],
        fmt="14",
    )
    print(f"\npool warm-up (first step, incl. replica builds): {warmup_s:.4f}s")

    record_trajectory(
        "parallel", "backend_step",
        {"workers": len(POOL), "ests": ESTS, "steps": STEPS},
        {"serial_step_s": [serial_s], "pool_step_s": [pool_s]},
    )
