"""Parallel execution backend — per-step cost, serial vs process pool.

The §4 bitwise serial/parallel contract is proven by the tier-1 suite;
this regenerator times what the contract *costs*: the same global steps
of a ResNet-18 job driven once through :class:`SerialBackend` and once
through :class:`ProcessPoolBackend` per transport — ``pickle`` (state
dicts and flat gradients through the pool's result pipe) and ``shm``
(zero-copy shared-memory slabs) — and confirms all backends still agree
on every loss along the way.

On multi-core hosts the pool amortizes its state-shipping overhead and
approaches the ideal speedup (``tests/exec/test_parallel_speedup.py``
pins that bar under ``-m parallel``); on a single core it measures pure
overhead — both are exactly what the ``BENCH_parallel.json`` trajectory
should track, keyed by this machine's fingerprint.

The Table-1 mini models carry only tens of kilobytes of state, so a
second *transport-stress* experiment drives a wide two-layer MLP
(~13 MB of parameters) through both pool transports: per step the pickle
path serializes the state once per worker plus one flat gradient set per
EST (~75 MB through the result pipe), while the shm path replaces all of
it with slab memcpys.  That byte-bound regime is where the transport
choice shows up in wall-clock even on one core.
"""

import time

import numpy as np

from repro import nn
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.hw import gpu_type
from repro.models import get_workload
from repro.models.registry import WorkloadSpec
from repro.nn.loss import cross_entropy
from repro.optim import SGD
from repro.tensor.tensor import Tensor

from benchmarks.conftest import print_header, print_table, record_trajectory, smoke_scale

STEPS = smoke_scale(4, 2)
STRESS_STEPS = smoke_scale(3, 2)
ESTS = 4
POOL = ["V100", "V100"]


class _WideMLP(nn.Module):
    """Two dense layers sized so transport bytes dwarf the compute."""

    def __init__(self, in_dim, hidden, classes, rng):
        super().__init__()
        self.fc1 = nn.Linear(in_dim, hidden, rng.spawn("fc1"))
        self.act = nn.ReLU()
        self.fc2 = nn.Linear(hidden, classes, rng.spawn("fc2"))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x.reshape(x.shape[0], -1))))


def _build_wide(rng):
    return _WideMLP(768, 4096, 10, rng)


def _wide_loss(model, x, y):
    return cross_entropy(model(Tensor(x)), y.astype(np.int64))


STRESS_SPEC = WorkloadSpec(
    name="bench-transport-stress",
    builder=_build_wide,
    dataset_name="cifar10-like",
    dataset_kwargs={"shape": (3, 16, 16), "num_classes": 10},
    batch_size=8,
    forward_loss=_wide_loss,
    params_gb=0.1,
    act_gb_per_sample=0.001,
    throughput={"v100": 100.0, "p100": 45.0, "t4": 33.0},
    conv_heavy=False,
)


def _engine(spec, dataset, backend):
    config = EasyScaleJobConfig(
        num_ests=ESTS, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    assignment = WorkerAssignment.balanced([gpu_type(n) for n in POOL], ESTS)
    return EasyScaleEngine(
        spec, dataset, config,
        lambda model: SGD(model.named_parameters(), lr=0.05, momentum=0.9),
        assignment, backend=backend,
    )


def _run_pool(spec, dataset, transport, steps):
    with ProcessPoolBackend(max_workers=len(POOL), transport=transport) as backend:
        pooled = _engine(spec, dataset, backend)
        # first step pays child start-up + replica builds; time it apart
        # from steady state but keep its loss for the contract check
        start = time.perf_counter()
        warmup_losses = pooled.train_steps(1)
        warmup_s = time.perf_counter() - start
        start = time.perf_counter()
        losses = warmup_losses + pooled.train_steps(steps - 1)
        step_s = (time.perf_counter() - start) / max(steps - 1, 1)
    return step_s, warmup_s, losses


def run_experiment():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)

    serial = _engine(spec, dataset, SerialBackend())
    start = time.perf_counter()
    serial_losses = serial.train_steps(STEPS)
    serial_s = (time.perf_counter() - start) / STEPS

    pickle_s, pickle_warmup_s, pickle_losses = _run_pool(spec, dataset, "pickle", STEPS)
    shm_s, shm_warmup_s, shm_losses = _run_pool(spec, dataset, "shm", STEPS)
    return (
        serial_s, pickle_s, shm_s, pickle_warmup_s, shm_warmup_s,
        serial_losses, pickle_losses, shm_losses,
    )


def run_stress_experiment():
    dataset = STRESS_SPEC.build_dataset(64, seed=7)
    pickle_s, _, pickle_losses = _run_pool(STRESS_SPEC, dataset, "pickle", STRESS_STEPS)
    shm_s, _, shm_losses = _run_pool(STRESS_SPEC, dataset, "shm", STRESS_STEPS)
    return pickle_s, shm_s, pickle_losses, shm_losses


def test_parallel_backend_step_cost(run_once):
    (
        serial_s, pickle_s, shm_s, pickle_warmup_s, shm_warmup_s,
        serial_losses, pickle_losses, shm_losses,
    ) = run_once(run_experiment)

    # the contract half: identical training trajectories, step by step,
    # regardless of how bytes cross the process boundary
    assert pickle_losses == serial_losses
    assert shm_losses == serial_losses

    print_header(f"Execution backends: {STEPS} steps, {len(POOL)} workers, {ESTS} ESTs")
    print_table(
        ["backend", "s/step", "vs serial", "vs pickle"],
        [
            ["serial", f"{serial_s:.4f}", "x1.00", "-"],
            ["pool (pickle)", f"{pickle_s:.4f}", f"x{serial_s / pickle_s:.2f}", "x1.00"],
            ["pool (shm)", f"{shm_s:.4f}", f"x{serial_s / shm_s:.2f}",
             f"x{pickle_s / shm_s:.2f}"],
        ],
        fmt="14",
    )
    print(
        f"\npool warm-up (first step, incl. replica builds): "
        f"pickle {pickle_warmup_s:.4f}s, shm {shm_warmup_s:.4f}s"
    )

    record_trajectory(
        "parallel", "backend_step",
        {"workers": len(POOL), "ests": ESTS, "steps": STEPS},
        {
            "serial_step_s": [serial_s],
            # pool_step_s keeps tracking the product default (shm) so the
            # trajectory stays continuous across the transport switch
            "pool_step_s": [shm_s],
            "pool_pickle_step_s": [pickle_s],
            "pool_shm_step_s": [shm_s],
        },
    )


def test_transport_stress_step_cost(run_once):
    pickle_s, shm_s, pickle_losses, shm_losses = run_once(run_stress_experiment)

    # same trajectory through either transport — the stress model's
    # gradients cross the boundary bitwise-intact both ways
    assert shm_losses == pickle_losses

    print_header(
        f"Transport stress (~13 MB state): {STRESS_STEPS} steps, "
        f"{len(POOL)} workers, {ESTS} ESTs"
    )
    print_table(
        ["transport", "s/step", "vs pickle"],
        [
            ["pickle", f"{pickle_s:.4f}", "x1.00"],
            ["shm", f"{shm_s:.4f}", f"x{pickle_s / shm_s:.2f}"],
        ],
        fmt="14",
    )

    record_trajectory(
        "parallel", "transport_stress",
        {"workers": len(POOL), "ests": ESTS, "steps": STRESS_STEPS,
         "state_mb": 13},
        {
            "pool_pickle_step_s": [pickle_s],
            "pool_shm_step_s": [shm_s],
        },
    )
