"""Table 1 — Deep learning workloads in experiments.

Paper: eight models (ShuffleNetV2, ResNet50, VGG19, YOLOv3, NeuMF, Bert,
Electra, SwinTransformer) across image classification, object detection,
recommendation, and question answering, each paired with an open dataset.

Regenerates: the workload table, verifying every model trains end-to-end
through the stack (one real forward/backward each) and reporting its task,
dataset stand-in, parameter count, and simulated V100 throughput.
"""

import numpy as np

from repro.models import TABLE1, get_workload
from repro.nn import use_rng
from repro.tensor import execution_context
from repro.utils.rng import RNGBundle

from benchmarks.conftest import print_header, print_table

TASKS = {
    "shufflenetv2": "Image Classification",
    "resnet50": "Image Classification",
    "vgg19": "Image Classification",
    "yolov3": "Object Detection",
    "neumf": "Recommendation",
    "bert": "Question Answering",
    "electra": "Question Answering",
    "swintransformer": "Image Classification",
}


def run_experiment():
    rows = []
    for name in TABLE1:
        spec = get_workload(name)
        rng = RNGBundle(1)
        model = spec.build_model(rng.spawn("model"))
        dataset = spec.build_dataset(32, seed=2)
        xs, ys = zip(*[dataset[i] for i in range(4)])
        with execution_context("v100"), use_rng(rng.spawn("run")):
            loss = spec.forward_loss(model, np.stack(xs), np.asarray(ys))
            loss.backward()
        rows.append(
            {
                "model": name,
                "task": TASKS[name],
                "dataset": spec.dataset_name,
                "params": model.num_parameters(),
                "loss": loss.item(),
                "v100_mbps": spec.throughput["v100"],
                "conv_heavy": spec.conv_heavy,
            }
        )
    return rows


def test_tab01_workloads(run_once):
    rows = run_once(run_experiment)

    print_header("Table 1: deep learning workloads (scaled-down stand-ins)")
    print_table(
        ["Model", "Task", "Dataset", "Params", "InitLoss", "V100 mb/s", "ConvHeavy"],
        [
            [
                r["model"],
                r["task"],
                r["dataset"],
                r["params"],
                f"{r['loss']:.3f}",
                r["v100_mbps"],
                r["conv_heavy"],
            ]
            for r in rows
        ],
        fmt="16",
    )

    assert len(rows) == 8
    assert all(np.isfinite(r["loss"]) for r in rows)
    assert all(r["params"] > 1000 for r in rows)
    assert {r["task"] for r in rows} == set(TASKS.values())
