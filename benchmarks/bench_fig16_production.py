"""Figure 16 — One-day statistic on a production cluster.

Paper (§5.3): after deploying EasyScale on a 3,000+ GPU serving cluster,
day-over-day comparison shows the GPU allocation ratio up 17.1% and the
average SM utilization up 62.1%; elastic jobs used 459 temporarily idle
GPUs on average, scaled in within seconds when serving spiked (362
preemptions, zero failures), and refilled freed GPUs within 5 minutes.

Regenerates: the two-day alloc%/util% series and the summary statistics.
"""

import numpy as np

from repro.sched import MINUTES_PER_DAY, simulate_colocation

from benchmarks.conftest import print_header, series_line

TOTAL_GPUS = 3000


def run_experiment():
    return simulate_colocation(total_gpus=TOTAL_GPUS, seed=2021, training_demand_gpus=500)


def test_fig16_production_colocation(run_once):
    stats = run_once(run_experiment)

    print_header("Figure 16: production co-location, day 1 (before) vs day 2 (after)")
    hours = stats.total_alloc.reshape(-1, 60).mean(axis=1) / TOTAL_GPUS * 100
    util_hours = stats.utilization.reshape(-1, 60).mean(axis=1) * 100
    series_line("alloc% (day 1)", hours[:24].tolist(), fmt="{:5.0f}")
    series_line("alloc% (day 2)", hours[24:].tolist(), fmt="{:5.0f}")
    series_line("util%  (day 1)", util_hours[:24].tolist(), fmt="{:5.0f}")
    series_line("util%  (day 2)", util_hours[24:].tolist(), fmt="{:5.0f}")

    day1_alloc = stats.alloc_ratio(0, TOTAL_GPUS)
    day2_alloc = stats.alloc_ratio(1, TOTAL_GPUS)
    day1_util = stats.mean_utilization(0)
    day2_util = stats.mean_utilization(1)
    avg_training = float(stats.training_alloc[MINUTES_PER_DAY:].mean())

    print("\nsummary                         measured      paper")
    print(f"  alloc ratio uplift        : {100 * (day2_alloc - day1_alloc):8.1f}%     +17.1%")
    print(f"  SM utilization uplift     : {100 * (day2_util / day1_util - 1):8.1f}%     +62.1%")
    print(f"  avg idle GPUs for training: {avg_training:8.0f}        459")
    print(f"  preemptions / failures    : {stats.preemptions_day2:5d} / {stats.failures_day2}    362 / 0")
    print(f"  scale-in latency          : {stats.scale_in_latency_s:8.0f}s    seconds")
    print(f"  refill latency            : {stats.refill_minutes:8.0f}min   <=5 min")

    assert day2_alloc - day1_alloc > 0.10, "allocation ratio should rise >10 points"
    assert day2_util / day1_util - 1 > 0.40, "utilization should rise >40% relative"
    assert 100 < avg_training < 1500
    assert stats.preemptions_day2 > 0
    assert stats.failures_day2 == 0
    assert stats.scale_in_latency_s < 60
    assert stats.refill_minutes <= 5
