"""Ablation — all-reduce association algorithms.

Design choice under study: EasyScale pins *one* reduction association
(ring over virtual ranks).  Any fixed association would do for D1 — but
different algorithms give bitwise-different results, which is exactly why
the association must be pinned rather than left to the transport.

Regenerates: for each algorithm (ring / tree / sequential), determinism
across repetitions, numeric deviation from the float64 reference, and the
pairwise bitwise-disagreement matrix.
"""

import numpy as np

from repro.comm.allreduce import ALGORITHMS

from benchmarks.conftest import print_header, print_table

WORLD = 6
N = 16384


def run_experiment():
    rng = np.random.default_rng(7)
    grads = [rng.normal(size=N).astype(np.float32) for _ in range(WORLD)]
    reference = np.sum([g.astype(np.float64) for g in grads], axis=0)

    outputs = {}
    rows = []
    for name, fn in ALGORITHMS.items():
        first = fn(grads)
        repeat = fn(grads)
        outputs[name] = first
        rows.append(
            {
                "algorithm": name,
                "deterministic": first.tobytes() == repeat.tobytes(),
                "max_dev_from_f64": float(np.max(np.abs(first - reference))),
                "mean_abs": float(np.mean(np.abs(first))),
            }
        )

    names = sorted(outputs)
    disagreement = {}
    for a in names:
        for b in names:
            if a < b:
                differs = outputs[a].tobytes() != outputs[b].tobytes()
                ulps = float(np.max(np.abs(outputs[a] - outputs[b])))
                disagreement[(a, b)] = (differs, ulps)
    return rows, disagreement


def test_ablation_allreduce_algorithms(run_once):
    rows, disagreement = run_once(run_experiment)

    print_header(f"Ablation: all-reduce association (world={WORLD}, n={N})")
    print_table(
        ["algorithm", "deterministic", "max |dev| vs f64"],
        [[r["algorithm"], r["deterministic"], f"{r['max_dev_from_f64']:.2e}"] for r in rows],
        fmt="14",
    )
    print("\npairwise bitwise disagreement:")
    for (a, b), (differs, gap) in disagreement.items():
        print(f"  {a:12s} vs {b:12s}: {'DIFFER' if differs else 'match '}  max gap {gap:.2e}")

    # every algorithm is individually deterministic...
    assert all(r["deterministic"] for r in rows)
    # ...and numerically sound...
    assert all(r["max_dev_from_f64"] < 1e-2 for r in rows)
    # ...but they disagree bitwise with each other, so the choice must be
    # pinned for D1 to hold
    assert any(differs for differs, _ in disagreement.values())
