"""Figure 1 — Online serving GPU cluster load variation.

Paper: a 2-day allocation statistic of an online model-serving cluster
shows the difference between idle and peak GPU demand reaches ~2,000 GPUs
— the headroom elastic training can harvest.

Regenerates: the two-day serving-demand series and its idle/peak gap.
"""

import numpy as np

from repro.sched import MINUTES_PER_DAY, ServingLoadModel

from benchmarks.conftest import print_header, series_line

TOTAL_GPUS = 3000


def generate_series():
    return ServingLoadModel(total_gpus=TOTAL_GPUS, seed=2021).series(2 * MINUTES_PER_DAY)


def test_fig01_serving_load_variation(run_once):
    series = run_once(generate_series)

    print_header("Figure 1: serving-cluster GPU demand over two days")
    hourly = series.reshape(-1, 60).mean(axis=1)
    series_line("hourly demand (day 1)", hourly[:24].tolist(), fmt="{:6.0f}")
    series_line("hourly demand (day 2)", hourly[24:].tolist(), fmt="{:6.0f}")

    gap = int(series.max() - series.min())
    print(f"\nidle/peak gap: {gap} GPUs (paper: up to ~2,000)")
    print(f"peak demand:   {int(series.max())}/{TOTAL_GPUS} GPUs")
    print(f"idle trough:   {int(series.min())}/{TOTAL_GPUS} GPUs")

    # shape assertions: a large diurnal swing, bounded by the cluster
    assert gap > 1200
    assert series.max() <= TOTAL_GPUS
    assert series.min() >= 0
